//! Offline shim for the subset of the [`rayon`](https://docs.rs/rayon) API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible scoped thread pool instead of the real crate (see
//! `vendor/README.md`). Covered surface:
//!
//! * [`ThreadPoolBuilder::new`] / [`ThreadPoolBuilder::num_threads`] /
//!   [`ThreadPoolBuilder::build`];
//! * [`ThreadPool::scope`] / [`ThreadPool::install`] /
//!   [`ThreadPool::current_num_threads`];
//! * free [`scope`] and [`current_num_threads`] on a lazily-built global pool;
//! * [`slice::ParallelSlice::par_chunks`] with `map(...).collect::<Vec<_>>()`,
//!   re-exported through [`prelude`].
//!
//! Differences from the real crate: jobs are drained from one shared injector
//! queue (workers steal from it directly rather than from per-worker deques),
//! the calling thread blocks instead of helping to steal, and the parallel
//! iterator surface is exactly the `par_chunks → map → collect` chain. None of
//! this affects callers: the workspace's executor merges chunk results in fixed
//! chunk order, so scheduling order is invisible.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod slice;

/// Parallel-iterator traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::ParallelSlice;
}

type Job = Box<dyn FnOnce() + Send>;

/// Shared pool state: the injector queue workers pull jobs from.
struct Injector {
    queue: Mutex<InjectorQueue>,
    ready: Condvar,
}

struct InjectorQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Injector {
    fn push(&self, job: Job) {
        let mut q = self.queue.lock().expect("injector poisoned");
        q.jobs.push_back(job);
        drop(q);
        self.ready.notify_one();
    }

    /// Worker loop: pull and run jobs until shutdown *and* the queue is drained.
    fn work(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("injector poisoned");
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.ready.wait(q).expect("injector poisoned");
                }
            };
            job();
        }
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (shim of
/// `rayon::ThreadPoolBuildError`). The shim's build never actually fails; the
/// type exists so call sites handle the real crate's signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (shim of `rayon::ThreadPoolBuilder`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` (the default) means one per
    /// available hardware thread, like the real crate.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(InjectorQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let inj = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("threadpool-shim-{i}"))
                    .spawn(move || inj.work())
                    .expect("spawn worker")
            })
            .collect();
        Ok(ThreadPool {
            injector,
            workers,
            threads,
        })
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A fixed-size pool of worker threads executing scoped jobs (shim of
/// `rayon::ThreadPool`).
pub struct ThreadPool {
    injector: Arc<Injector>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// The number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with a [`Scope`] whose spawned jobs may borrow from the
    /// enclosing stack frame; returns once `op` *and every spawned job* have
    /// finished. A panic in `op` or in any job is propagated to the caller
    /// (after all jobs have completed, so borrows stay valid).
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        scope_on(&self.injector, op)
    }

    /// Runs `op` with this pool registered as the current pool, so the
    /// [`slice::ParallelSlice`] adaptors inside it run here instead of on the
    /// global pool. The previous registration is restored even if `op`
    /// unwinds, like the real crate.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        /// Restores the previous registration on drop (i.e. also during
        /// unwinding), so a panicking `op` cannot leak this pool into the
        /// thread-local and dangle after the pool is dropped.
        struct Restore(Option<(Arc<Injector>, usize)>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL.with(|cur| cur.replace(self.0.take()));
            }
        }
        let _restore = Restore(
            CURRENT_POOL.with(|cur| cur.replace(Some((Arc::clone(&self.injector), self.threads)))),
        );
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.injector
            .queue
            .lock()
            .expect("injector poisoned")
            .shutdown = true;
        self.injector.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

thread_local! {
    /// The pool [`ThreadPool::install`] registered on this thread, if any.
    static CURRENT_POOL: std::cell::RefCell<Option<(Arc<Injector>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPoolBuilder::new().build().expect("global pool"))
}

/// The current pool's injector and thread count: the installed pool if inside
/// [`ThreadPool::install`], the global pool otherwise.
fn current_injector() -> (Arc<Injector>, usize) {
    CURRENT_POOL.with(|cur| {
        cur.borrow().clone().unwrap_or_else(|| {
            let g = global_pool();
            (Arc::clone(&g.injector), g.threads)
        })
    })
}

/// Runs `op` in a scope on the global pool (shim of `rayon::scope`).
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    global_pool().scope(op)
}

/// Runs a scope whose jobs go to `injector`'s workers. Shared by
/// [`ThreadPool::scope`] and the [`slice`] adaptors (which target the
/// *current* pool).
fn scope_on<'scope, OP, R>(injector: &Arc<Injector>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        injector: Arc::clone(injector),
        pending: Mutex::new(0),
        done: Condvar::new(),
        panic: Mutex::new(None),
        _marker: std::marker::PhantomData,
    };
    // Run `op` inline; spawned jobs execute on the workers. Even if `op`
    // panics we must wait for outstanding jobs before unwinding, or their
    // borrows would dangle.
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.wait_all();
    if let Some(payload) = scope.panic.lock().expect("scope poisoned").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// The number of threads in the current pool (global pool unless inside
/// [`ThreadPool::install`]).
pub fn current_num_threads() -> usize {
    CURRENT_POOL
        .with(|cur| cur.borrow().as_ref().map(|(_, t)| *t))
        .unwrap_or_else(|| global_pool().threads)
}

/// A scope in which jobs borrowing the enclosing stack frame may be spawned
/// (shim of `rayon::Scope`).
pub struct Scope<'scope> {
    injector: Arc<Injector>,
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Invariant over `'scope`, like the real crate.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

/// A `Send` wrapper for the scope pointer smuggled into 'static jobs. Sound
/// because [`ThreadPool::scope`] does not return (or unwind) until every
/// spawned job has run to completion, so the pointee outlives every use.
struct ScopePtr(*const ());
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// Accessor (rather than direct field use) so closures capture the whole
    /// `Send` wrapper under edition-2021 precise capture, not the raw pointer.
    fn get(&self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a job onto the pool. The job may borrow anything that outlives
    /// the `scope` call and may itself spawn further jobs.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.pending.lock().expect("scope poisoned") += 1;
        let ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: `wait_all` keeps the `Scope` (and everything `f` borrows)
            // alive until this job has finished running.
            let scope: &Scope<'scope> = unsafe { &*(ptr.get() as *const Scope<'scope>) };
            let result = catch_unwind(AssertUnwindSafe(|| f(scope)));
            if let Err(payload) = result {
                scope
                    .panic
                    .lock()
                    .expect("scope poisoned")
                    .get_or_insert(payload);
            }
            let mut pending = scope.pending.lock().expect("scope poisoned");
            *pending -= 1;
            if *pending == 0 {
                scope.done.notify_all();
            }
        });
        // SAFETY: the 'scope lifetime is erased to enqueue the job on 'static
        // workers; `wait_all` in `ThreadPool::scope` restores the guarantee that
        // no borrow outlives its referent.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.injector.push(job);
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().expect("scope poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("scope poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_jobs_may_borrow_and_mutate_disjoint_slices() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0u64; 10];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 * 2);
            }
        });
        assert_eq!(data, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawns_complete() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_returns_op_value() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn panics_propagate_after_jobs_finish() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("job panic"));
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked scope.
        assert_eq!(pool.scope(|_| 7), 7);
    }

    #[test]
    fn par_chunks_collects_in_order() {
        let data: Vec<u32> = (0..100).collect();
        let sums: Vec<u32> = data.par_chunks(7).map(|c| c.iter().sum()).collect();
        let expected: Vec<u32> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn par_chunks_respects_installed_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let data: Vec<u32> = (0..32).collect();
        let (inside, n) = pool.install(|| {
            let v: Vec<u32> = data.par_chunks(4).map(|c| c.iter().sum()).collect();
            (v, current_num_threads())
        });
        assert_eq!(n, 3);
        assert_eq!(inside.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn install_restores_current_pool_on_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = current_num_threads();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert!(result.is_err());
        // The panicking install must not leak `pool` into the thread-local.
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn free_scope_uses_global_pool() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert!(current_num_threads() >= 1);
    }
}
