//! The `par_chunks` slice adaptor (shim of `rayon::slice`).
//!
//! Exactly the chain the workspace uses is covered:
//! `data.par_chunks(size).map(f).collect::<Vec<_>>()`. Chunks are processed on
//! the current pool (see [`ThreadPool::install`](crate::ThreadPool::install))
//! and results are collected **in chunk order**, matching the real crate's
//! `IndexedParallelIterator` semantics for this chain.

use crate::{current_injector, Injector, Scope};
use std::sync::Arc;

/// Slice extension providing parallel chunked iteration (shim of
/// `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Splits into contiguous chunks of at most `chunk_size` items (the last
    /// chunk may be shorter), processed in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over contiguous chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps each chunk through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        F: Fn(&'a [T]) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            size: self.size,
            f,
            _r: std::marker::PhantomData,
        }
    }
}

/// The result of [`ParChunks::map`]: a mapped parallel chunk iterator.
pub struct ParMap<'a, T, R, F> {
    slice: &'a [T],
    size: usize,
    f: F,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<'a, T, R, F> ParMap<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Runs the chunks on the current pool and collects the results in chunk
    /// order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let chunk_count = self.slice.len().div_ceil(self.size.max(1));
        let mut results: Vec<Option<R>> = (0..chunk_count).map(|_| None).collect();
        let (injector, _) = current_injector();
        run_chunks(&injector, self.slice, self.size, &self.f, &mut results);
        results
            .into_iter()
            .map(|r| r.expect("every chunk completes"))
            .collect()
    }
}

/// Fans the chunk jobs out over `injector`'s workers via a scope on that pool.
fn run_chunks<'a, T, R, F>(
    injector: &Arc<Injector>,
    slice: &'a [T],
    size: usize,
    f: &F,
    results: &mut [Option<R>],
) where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    crate::scope_on(injector, |s: &Scope<'_>| {
        let mut rest = results;
        for chunk in slice.chunks(size) {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            s.spawn(move |_| *slot = Some(f(chunk)));
        }
    });
}
