//! Offline shim for the subset of the [`proptest`](https://docs.rs/proptest) API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible property-testing harness instead of the real crate
//! (see `vendor/README.md`). Covered surface:
//!
//! * the [`proptest!`] macro, including the `#![proptest_config(..)]` header;
//! * [`Strategy`] for integer `Range`/`RangeInclusive`, tuples, and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`], which report the generated inputs
//!   on failure;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are sampled from a per-test
//! deterministic stream (seeded from the test's module path and case index), and
//! there is **no shrinking** — a failing case reports the exact inputs that
//! failed instead. That is sufficient for this workspace's suites, which mostly
//! quantify over small seeds and sizes.

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; this shim trades a smaller
    /// default for faster `cargo test` while keeping multi-case coverage).
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod test_runner {
    //! The minimal runner machinery behind [`crate::proptest!`].

    /// Error type produced by [`crate::prop_assert!`] failures inside a test body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed-assertion error with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test input stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// A stream keyed on `(test path, case index)`, so every test function
        /// and every case draws independent, reproducible inputs.
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                x: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Shim counterpart of `proptest::strategy::Strategy`: one method, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (((u128::from(rng.next_u64()) << 64
                    | u128::from(rng.next_u64())) % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (((u128::from(rng.next_u64()) << 64
                    | u128::from(rng.next_u64())) % span) as $t)
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) }

pub mod collection {
    //! Collection strategies.

    use super::{test_runner::TestRng, Strategy};

    /// A length range for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`, returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property-based tests (shim of `proptest::proptest!`).
///
/// Supports the subset this workspace uses: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ..) { .. }` items. Each function runs `config.cases` generated
/// cases; a `prop_assert!` failure panics with the failing inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __proptest_result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            __proptest_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting generated inputs
/// on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    left,
                    right,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    pub mod prop {
        //! Namespaced re-exports (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..5, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec((0usize..6, 0usize..6), 0..12)) {
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 6 && b < 6);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("inputs: x = "), "got: {msg}");
    }

    #[test]
    fn deterministic_streams() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::deterministic("t", 1).next_u64();
        assert_ne!(a[0], c);
    }
}
