//! Offline shim for the subset of the [`criterion`](https://docs.rs/criterion)
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible harness instead of the real crate (see
//! `vendor/README.md`). Covered surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`], and
//! [`black_box`].
//!
//! Differences from the real crate: no warm-up phase, no outlier analysis, no
//! HTML reports, and no statistical confidence intervals — each benchmark runs
//! `sample_size` timed samples and prints min/mean/max wall-clock per iteration.
//! When invoked with `--test` (as `cargo test --benches` does) every benchmark
//! runs exactly once, untimed, as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo appends `--bench` when running bench executables under `cargo
        // bench`, and omits it under `cargo test --benches`. Like the real
        // criterion, anything other than a true `cargo bench` invocation (or an
        // explicit `--test`) runs each benchmark once as a smoke test. Name
        // filters are ignored by this shim.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            test_mode: self.test_mode,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {}/{} ... ok (bench smoke)", self.name, id);
        } else if b.samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
        } else {
            let min = b.samples.iter().min().unwrap();
            let max = b.samples.iter().max().unwrap();
            let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
            println!(
                "{}/{}: [{:?} {:?} {:?}] ({} samples)",
                self.name,
                id,
                min,
                mean,
                max,
                b.samples.len(),
            );
        }
        self
    }

    /// Finishes the group (reporting is per-function in this shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (one untimed execution in
    /// `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion { test_mode: false };
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0usize;
        let mut g = c.benchmark_group("shim");
        g.bench_function("once", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1);
    }
}
