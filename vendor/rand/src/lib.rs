//! Offline shim for the subset of the [`rand` 0.9 API](https://docs.rs/rand/0.9)
//! this workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so the
//! workspace vendors a minimal, API-compatible implementation instead of the real
//! crate (see `vendor/README.md`). The surface covered:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator (SplitMix64-seeded
//!   xoshiro256++; **not** the real `StdRng`'s ChaCha12, and not cryptographic);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for the primitive types the workspace draws;
//! * [`Rng::random_range`] over integer `Range`/`RangeInclusive`;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic per seed, which is all the workspace requires: the
//! test suites assert that simulated and direct executions with equal seeds
//! produce identical outputs. Swapping in the real `rand` changes the streams
//! (different generator) but not any correctness property.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator via [`Rng::random`].
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::random(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::random(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::random(self) < p
    }

    /// Fills `dest` with random bytes.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Shim stand-in for `rand::rngs::StdRng`; same trait surface, different (and
    /// non-cryptographic) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(43).random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.random_range(5..=5);
            assert_eq!(y, 5);
            let w: u64 = r.random_range(1..=8);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _: usize = r.random_range(5..5);
    }
}
