//! Property-based cross-crate tests: accounting invariants that must hold for every
//! execution (message totals equal congestion sums; simulations never lose or
//! invent simulated broadcasts; costs compose sanely).

use congest_apsp::algos::bfs::Bfs;
use congest_apsp::algos::bfs_collection::BfsCollection;
use congest_apsp::apsp_core::simulate::{simulate_bcongest_via_ldc, LdcSimOptions};
use congest_apsp::engine::{run_bcongest, RunOptions};
use congest_apsp::graph::{generators, reference, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn direct_run_messages_equal_congestion_sum(seed in 0u64..200, n in 12usize..40) {
        let g = generators::gnp_connected(n, 0.15, seed);
        let run = run_bcongest(
            &Bfs::new(NodeId::new(seed as usize % n)),
            &g,
            None,
            &RunOptions { seed, ..Default::default() },
        ).unwrap();
        let sum: u64 = run.metrics.congestion().iter().sum();
        prop_assert_eq!(run.metrics.messages, sum);
        // BFS: messages = Σ deg over broadcasters = 2m when everyone broadcasts.
        prop_assert!(run.metrics.messages <= 2 * g.m() as u64);
    }

    #[test]
    fn simulation_messages_equal_congestion_sum(seed in 0u64..100) {
        let g = generators::gnp_connected(18, 0.2, seed);
        let sim = simulate_bcongest_via_ldc(
            &Bfs::new(NodeId::new(0)),
            &g,
            None,
            &LdcSimOptions { seed, ..Default::default() },
        ).unwrap();
        let sum: u64 = sim.metrics.congestion().iter().sum();
        prop_assert_eq!(sim.metrics.messages, sum);
        prop_assert!(sim.metrics.messages >= sim.preprocessing.messages);
    }

    #[test]
    fn simulated_broadcast_complexity_matches_direct(seed in 0u64..60) {
        let g = generators::gnp_connected(16, 0.25, seed);
        let algo = BfsCollection::new(g.nodes().collect());
        let direct = run_bcongest(&algo, &g, None, &RunOptions { seed, ..Default::default() })
            .unwrap();
        let sim = simulate_bcongest_via_ldc(
            &algo, &g, None, &LdcSimOptions { seed, ..Default::default() },
        ).unwrap();
        prop_assert_eq!(sim.simulated_broadcasts, direct.metrics.broadcasts);
        prop_assert_eq!(&sim.outputs, &direct.outputs);
    }

    #[test]
    fn bfs_collection_outputs_are_exact_apsp(seed in 0u64..60) {
        let g = generators::gnp_connected(20, 0.18, seed);
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(seed);
        let run = run_bcongest(&algo, &g, None, &RunOptions { seed, ..Default::default() })
            .unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, out) in run.outputs.iter().enumerate() {
            for (s, entry) in out.entries.iter().enumerate() {
                prop_assert_eq!(entry.dist, want[s][v]);
            }
        }
    }

    #[test]
    fn rounds_and_messages_are_monotone_in_depth_limit(seed in 0u64..40) {
        let g = generators::gnp_connected(20, 0.2, seed);
        let short = BfsCollection::new(g.nodes().collect()).with_depth_limit(2);
        let long = BfsCollection::new(g.nodes().collect()).with_depth_limit(8);
        let a = run_bcongest(&short, &g, None, &RunOptions { seed, ..Default::default() })
            .unwrap();
        let b = run_bcongest(&long, &g, None, &RunOptions { seed, ..Default::default() })
            .unwrap();
        prop_assert!(a.metrics.broadcasts <= b.metrics.broadcasts);
        prop_assert!(a.metrics.messages <= b.metrics.messages);
    }
}
