//! Pins the `congest_apsp` facade's public API surface: every documented
//! re-export path must resolve, and the README/lib.rs quickstart path
//! (`generators::gnp_connected` → `weighted_apsp`) must work end-to-end through
//! the facade alone — no direct dependency on the member crates.

use congest_apsp::apsp_core::verify::check_weighted_apsp;
use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::graph::{generators, reference, NodeId, WeightedGraph};

/// The exact quickstart from `src/lib.rs` and the README, kept green.
#[test]
fn documented_quickstart_runs_through_the_facade() {
    let g = generators::gnp_connected(24, 0.2, 7);
    let wg = WeightedGraph::random_weights(&g, 1..=8, 7);
    let result = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
    assert_eq!(result.distances.len(), 24);
    assert!(result.metrics.messages > 0);
    check_weighted_apsp(&wg, &result.distances).expect("quickstart distances must be exact");
}

/// Facade distances agree with the sequential oracle reached through the same
/// facade (`graph::reference`), for several seeds.
#[test]
fn facade_weighted_apsp_matches_reference_dijkstra() {
    for seed in [1, 2, 3] {
        let g = generators::gnp_connected(16, 0.25, seed);
        let wg = WeightedGraph::random_weights(&g, 1..=6, seed);
        let result = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
        for s in g.nodes() {
            let want = reference::dijkstra(&wg, s);
            for v in g.nodes() {
                assert_eq!(
                    result.distances[s.index()][v.index()],
                    want[v.index()],
                    "seed {seed}: dist({s:?}, {v:?})"
                );
            }
        }
    }
}

/// Every aliased module re-export referenced by the crate docs resolves and is
/// usable. A rename or dropped `pub use` in `src/lib.rs` fails this test at
/// compile time.
#[test]
fn all_documented_reexport_paths_resolve() {
    // graph (congest_graph)
    let g: congest_apsp::graph::Graph = generators::path(4);
    let _: Option<congest_apsp::graph::EdgeId> = g.edge_between(NodeId::new(0), NodeId::new(1));

    // engine (congest_engine)
    let run = congest_apsp::engine::run_bcongest(
        &congest_apsp::algos::bfs::Bfs::new(NodeId::new(0)),
        &g,
        None,
        &congest_apsp::engine::RunOptions::default(),
    )
    .unwrap();
    assert_eq!(run.outputs[3].dist, Some(3));

    // decomp (congest_decomp)
    let h = congest_apsp::decomp::Hierarchy::build(&g, 0.5, 1);
    assert!(congest_apsp::decomp::baswana_sen::validate_hierarchy(&g, &h).is_ok());

    // sched (congest_sched)
    let delays = congest_apsp::sched::random_delays(1, 8, 4);
    assert_eq!(delays.len(), 8);
    assert!(delays.iter().all(|&d| d < 4));

    // workloads (congest_workloads)
    let w = congest_apsp::workloads::find("gossip/path").expect("registered workload");
    let outcome = w
        .run(&congest_apsp::engine::ExecutorConfig::sequential())
        .expect("gossip run");
    assert!(outcome.metrics.messages > 0);
    assert!(congest_apsp::workloads::registry().len() >= 10);

    // apsp_core (not aliased: the crate keeps its own name)
    let dist = reference::all_pairs_bfs(&g);
    congest_apsp::apsp_core::verify::check_unweighted_apsp(&g, &dist)
        .expect("oracle output validates against itself");

    // serve (congest_serve): an oracle over the path graph's exact distances.
    let want: Vec<Vec<Option<u64>>> = dist
        .iter()
        .map(|row| row.iter().map(|d| d.map(u64::from)).collect())
        .collect();
    let mut oracle: congest_apsp::serve::DistanceOracle<_> =
        congest_apsp::serve::DistanceOracle::builder(
            congest_apsp::apsp_core::distance::MatrixSource::new(&want),
        )
        .cache_capacity(8)
        .build();
    assert_eq!(
        oracle.lookup(NodeId::new(0), NodeId::new(3)),
        congest_apsp::serve::Distance::Exact(3)
    );
    assert_eq!(oracle.metrics().misses, 1);
}

/// The executor surface is importable from the facade root — the documented
/// `congest_apsp::ExecutorConfig::builder()` path — and the builder agrees
/// with the shorthand constructors it wraps.
#[test]
fn executor_surface_resolves_at_the_facade_root() {
    use congest_apsp::{DeliveryBackend, ExecutorConfig, MessagePlane};

    let built: ExecutorConfig = ExecutorConfig::builder()
        .threads(4)
        .backend(DeliveryBackend::Sharded { shards: 4 })
        .plane(MessagePlane::Flat)
        .build();
    assert_eq!(
        built,
        ExecutorConfig::sharded(4).with_plane(MessagePlane::Flat)
    );
    let _: congest_apsp::ExecutorConfigBuilder = ExecutorConfig::builder();
}
