//! Registry invariants: the contract every `congest_workloads` entry signs up
//! to by existing. One suite, four guarantees —
//!
//! 1. **identity** — names are unique, and the catalogue spans the breadth the
//!    paper claims (≥ 10 algorithms, ≥ 10 entries);
//! 2. **determinism** — `build()` is a pure function of the entry (two builds
//!    are structurally equal);
//! 3. **correctness** — every entry has a working differential oracle;
//! 4. **cost** — sequential metrics stay inside the entry's declared
//!    message/round envelope (where the paper gives a bound, it is enforced,
//!    not just documented);
//! 5. **memory** — every entry declares a bytes-per-message memory envelope
//!    (engine-runner entries get the exact packed codec width `4 × LANES`
//!    auto-filled; composites declare a bound on their charge mix), and the
//!    measured `payload_bytes` average stays within it.

use congest_apsp::engine::ExecutorConfig;
use congest_apsp::workloads::{find, registry, FAMILIES};

#[test]
fn names_are_unique_and_catalogue_is_broad() {
    let reg = registry();
    let mut names: Vec<String> = reg.iter().map(|w| w.name()).collect();
    let total = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate workload names");
    assert!(total >= 10, "registry has only {total} entries");

    let mut algorithms: Vec<&str> = reg.iter().map(|w| w.algorithm()).collect();
    algorithms.sort_unstable();
    algorithms.dedup();
    assert!(
        algorithms.len() >= 10,
        "registry spans only {} algorithms: {algorithms:?}",
        algorithms.len()
    );
}

#[test]
fn family_names_are_unique_per_algorithm_axis() {
    // Global name uniqueness is `algorithm/family`; this pins the finer
    // invariant that no axis registers the same family twice (which global
    // uniqueness alone would also catch) *and* that every scenario axis the
    // fault engine introduced is actually present.
    let reg = registry();
    let mut axes: std::collections::BTreeMap<&str, Vec<String>> = std::collections::BTreeMap::new();
    for w in &reg {
        axes.entry(w.algorithm())
            .or_default()
            .push(w.family().to_string());
    }
    for (algo, families) in &mut axes {
        let total = families.len();
        families.sort();
        families.dedup();
        assert_eq!(families.len(), total, "duplicate family under axis {algo}");
    }
    for axis in [
        "faulty-bfs",
        "faulty-leader",
        "faulty-gossip",
        "faulty-mst",
        "skewed-bfs",
        "skewed-gossip",
        "baswana-sen-spanner",
    ] {
        assert!(axes.contains_key(axis), "missing scenario axis {axis}");
    }
}

#[test]
fn skew_and_scale_generators_are_deterministic_at_two_sizes() {
    use congest_apsp::graph::{generators, reference, NodeId};
    for n in [24, 56] {
        let g = generators::power_law(n, 2, 9);
        assert_eq!(g, generators::power_law(n, 2, 9), "power_law({n}) varies");
        assert!(
            reference::bfs_distances(&g, NodeId::new(0))
                .iter()
                .all(Option::is_some),
            "power_law({n}) is disconnected"
        );
    }
    for (hubs, spokes) in [(4, 6), (6, 8)] {
        let g = generators::hub_and_spoke(hubs, spokes);
        assert_eq!(g, generators::hub_and_spoke(hubs, spokes));
        assert_eq!(g.n(), hubs * (1 + spokes));
        assert!(reference::bfs_distances(&g, NodeId::new(0))
            .iter()
            .all(Option::is_some));
    }
    for n in [64, 256] {
        assert_eq!(
            generators::sparse_connected(n, 8, 5),
            generators::sparse_connected(n, 8, 5),
            "sparse_connected({n}) varies"
        );
    }
}

#[test]
fn builds_are_deterministic() {
    for w in registry() {
        assert_eq!(
            w.build(),
            w.build(),
            "{}: build() is not a pure function",
            w.name()
        );
    }
}

#[test]
fn every_entry_passes_its_oracle() {
    for w in registry() {
        w.oracle()
            .unwrap_or_else(|e| panic!("oracle violation: {e}"));
    }
}

#[test]
fn metrics_stay_inside_declared_envelopes() {
    for w in registry() {
        let run = w
            .run(&ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        w.envelope()
            .check(&run.metrics)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
    }
}

#[test]
fn every_entry_declares_and_meets_its_memory_envelope() {
    for w in registry() {
        let env = w.envelope();
        let bytes = env
            .max_message_bytes
            .unwrap_or_else(|| panic!("{}: no memory envelope declared", w.name()));
        assert!(
            bytes > 0 && bytes <= 64,
            "{}: implausible memory envelope of {bytes} bytes/message",
            w.name()
        );
        let run = w
            .run(&ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        assert!(
            run.metrics.payload_bytes <= bytes * run.metrics.messages,
            "{}: {} payload bytes over {} messages break the {bytes}-byte/message envelope",
            w.name(),
            run.metrics.payload_bytes,
            run.metrics.messages
        );
    }
}

#[test]
fn find_resolves_registered_names() {
    for family in FAMILIES {
        let w = find(&format!("bfs/{family}")).expect("every family has a BFS entry");
        assert_eq!(w.algorithm(), "bfs");
        assert_eq!(w.family(), family);
    }
    assert!(find("no-such-workload/anywhere").is_none());
}

#[test]
fn runs_are_repeatable() {
    // Same entry, same config, two executions: byte-identical outcome (the
    // benches rely on this to time repetitions).
    let w = find("mst/gnp").expect("registered workload");
    let cfg = ExecutorConfig::sequential();
    assert_eq!(w.run(&cfg).unwrap(), w.run(&cfg).unwrap());
}
