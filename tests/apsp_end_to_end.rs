//! End-to-end APSP correctness: Theorem 1.1 (weighted) and Theorem 1.2 (the whole
//! trade-off) against sequential oracles, across graph families.

use congest_apsp::apsp_core::tradeoff::{tradeoff_apsp, Route};
use congest_apsp::apsp_core::verify::{check_unweighted_apsp, check_weighted_apsp};
use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::graph::{generators, WeightedGraph};

#[test]
fn weighted_apsp_across_families() {
    for (i, g) in [
        generators::gnp_connected(18, 0.2, 1),
        generators::grid(4, 4),
        generators::caveman(3, 5),
        generators::barbell(6, 4),
    ]
    .iter()
    .enumerate()
    {
        let wg = WeightedGraph::random_weights(g, 1..=9, i as u64);
        let res = weighted_apsp(
            &wg,
            &WeightedApspConfig {
                seed: 100 + i as u64,
                ..Default::default()
            },
        )
        .expect("weighted APSP");
        check_weighted_apsp(&wg, &res.distances).expect("exact");
    }
}

#[test]
fn weighted_apsp_with_unit_and_zero_weights() {
    let g = generators::gnp_connected(16, 0.25, 2);
    let unit = WeightedGraph::unit(&g);
    let res = weighted_apsp(&unit, &WeightedApspConfig::default()).expect("unit");
    check_weighted_apsp(&unit, &res.distances).expect("unit exact");

    let zeros = WeightedGraph::random_weights(&g, 0..=3, 5);
    let res = weighted_apsp(&zeros, &WeightedApspConfig::default()).expect("zeros");
    check_weighted_apsp(&zeros, &res.distances).expect("zeros exact");
}

#[test]
fn tradeoff_every_route_on_random_graphs() {
    for seed in 0..2u64 {
        let g = generators::gnp_connected(22, 0.2, seed);
        for eps in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let res = tradeoff_apsp(&g, eps, 7 + seed).expect("tradeoff");
            check_unweighted_apsp(&g, &res.dist)
                .unwrap_or_else(|e| panic!("eps {eps}, seed {seed}: {e}"));
        }
    }
}

#[test]
fn tradeoff_on_high_diameter_graphs() {
    // Path/grid stress the landmark machinery (many far pairs).
    for (i, g) in [generators::path(24), generators::grid(6, 4)]
        .iter()
        .enumerate()
    {
        for eps in [0.4, 0.75] {
            let res = tradeoff_apsp(g, eps, 13 + i as u64).expect("tradeoff");
            check_unweighted_apsp(g, &res.dist)
                .unwrap_or_else(|e| panic!("family {i}, eps {eps}: {e}"));
        }
    }
}

#[test]
fn tradeoff_routes_dispatch_correctly() {
    let g = generators::gnp_connected(20, 0.25, 3);
    assert_eq!(
        tradeoff_apsp(&g, 0.0, 1).unwrap().route,
        Route::MessageOptimal
    );
    assert_eq!(
        tradeoff_apsp(&g, 0.3, 1).unwrap().route,
        Route::BatchedPlusLandmarks
    );
    assert_eq!(tradeoff_apsp(&g, 0.9, 1).unwrap().route, Route::StarDirect);
}

#[test]
fn tradeoff_endpoints_show_the_tradeoff_shape() {
    let g = generators::gnp_connected(26, 0.3, 4);
    let msg_optimal = tradeoff_apsp(&g, 0.0, 2).unwrap();
    let round_optimal = tradeoff_apsp(&g, 1.0, 2).unwrap();
    assert!(round_optimal.metrics.rounds < msg_optimal.metrics.rounds);
}
