//! The "Beyond" applications end-to-end: Corollary 2.8 (matching), Corollary 2.9
//! (covers), and the spanner/hierarchy substrate properties, all via the public API.

use congest_apsp::apsp_core::cover::sparse_neighborhood_cover;
use congest_apsp::apsp_core::matching::bipartite_maximum_matching;
use congest_apsp::apsp_core::verify::check_maximum_matching;
use congest_apsp::decomp::baswana_sen::validate_hierarchy;
use congest_apsp::decomp::pruning::{max_proper_subtree, prune};
use congest_apsp::decomp::spanner::measured_stretch;
use congest_apsp::decomp::{Ensemble, Hierarchy};
use congest_apsp::graph::generators;

#[test]
fn matching_is_maximum_across_instances() {
    for seed in 0..3u64 {
        let g = generators::random_bipartite_connected(6, 8, 0.35, seed);
        let res = bipartite_maximum_matching(&g, 30 + seed).expect("matching");
        check_maximum_matching(&g, &res.pairs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn matching_on_structured_bipartite_graphs() {
    for g in [
        generators::cycle(10),
        generators::grid(4, 3),
        generators::binary_tree(10),
        generators::star(9),
    ] {
        let res = bipartite_maximum_matching(&g, 9).expect("matching");
        check_maximum_matching(&g, &res.pairs).expect("maximum");
    }
}

#[test]
fn covers_are_valid_and_message_efficient() {
    let g = generators::gnp_connected(22, 0.2, 5);
    let res = sparse_neighborhood_cover(&g, 2, 2, Some(30), 5).expect("cover");
    let (depth, trees) = res.validate(&g).expect("cover properties");
    assert_eq!(trees, 30);
    // Depth stays Õ(kW): generous constant check.
    let bound = (3.0 * 2.0 * 2.0 * (g.n() as f64).ln() * 3.0) as u32;
    assert!(depth <= bound, "depth {depth} > {bound}");
}

#[test]
fn hierarchy_ensemble_pipeline_holds_properties() {
    let g = generators::gnp_connected(36, 0.15, 6);
    let eps = 0.5;
    let ens = Ensemble::build(&g, eps, 4, 6);
    let bound = (g.n() as f64).powf(1.0 - eps).ceil() as usize;
    for h in &ens.hierarchies {
        validate_hierarchy(&g, h).expect("Theorem 3.3 (pruned)");
        assert!(max_proper_subtree(&g, h) < bound.max(2), "Corollary 3.5");
        let s = measured_stretch(&g, h, 6, 1);
        assert!(s <= (2 * h.kappa - 1) as f64 + 1e-9, "spanner stretch");
    }
}

#[test]
fn hierarchies_work_on_every_family() {
    for (i, g) in [
        generators::path(20),
        generators::star(16),
        generators::complete(16),
        generators::barbell(6, 3),
        generators::sparse_bridge(6, 4),
    ]
    .iter()
    .enumerate()
    {
        for &eps in &[0.34, 0.5, 1.0] {
            let h = Hierarchy::build(g, eps, 70 + i as u64);
            validate_hierarchy(g, &h).unwrap_or_else(|e| panic!("family {i}, eps {eps}: {e}"));
            let p = prune(g, &h);
            validate_hierarchy(g, &p)
                .unwrap_or_else(|e| panic!("pruned family {i}, eps {eps}: {e}"));
        }
    }
}
