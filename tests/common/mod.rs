//! Shared workload catalogue for the executor suites: `parallel_determinism.rs`
//! (thread counts under the chunked backend) and `backend_conformance.rs`
//! (the full Sequential/Chunked/Sharded delivery-backend matrix) run the same
//! algorithms over the same graph families through these helpers, so the two
//! suites cannot drift apart.
//!
//! Each suite uses a subset of what is here, hence the file-level
//! `dead_code` allow.
#![allow(dead_code)]

use congest_apsp::algos::mst::{distributed_mst, MstConfig};
use congest_apsp::apsp_core::mst_tradeoff::mst_tradeoff_with;
use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::engine::{
    run_bcongest, run_congest, BcongestAlgorithm, CongestAlgorithm, DeliveryBackend,
    ExecutorConfig, LocalView, RunOptions,
};
use congest_apsp::graph::{generators, Graph, NodeId, WeightedGraph};

/// Random + pathological families: G(n,p), a path (deep idle-skipping), a star
/// (maximally skewed degrees — chunk/shard loads are wildly unequal), a cycle,
/// and a clustered caveman graph.
pub fn graph_families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp_connected(60, 0.12, 11)),
        ("dense-gnp", generators::gnp_connected(40, 0.5, 12)),
        ("path", generators::path(48)),
        ("star", generators::star(49)),
        ("cycle", generators::cycle(40)),
        ("caveman", generators::caveman(6, 8)),
    ]
}

/// The thread-count matrix of `parallel_determinism.rs`: the chunked backend
/// at 2/4/8 workers, against the sequential baseline.
pub fn thread_matrix() -> Vec<(String, ExecutorConfig)> {
    [2, 4, 8]
        .into_iter()
        .map(|t| {
            (
                format!("chunked/{t}-threads"),
                ExecutorConfig::with_threads(t),
            )
        })
        .collect()
}

/// The delivery-backend matrix of `backend_conformance.rs`: every chunked
/// thread count and every sharded shard count (with matching worker counts),
/// plus a single-threaded sharded layout — all pinned against the sequential
/// baseline.
pub fn backend_matrix() -> Vec<(String, ExecutorConfig)> {
    let mut cfgs = vec![(
        "sequential/explicit".to_string(),
        ExecutorConfig::sequential(),
    )];
    for t in [1usize, 2, 4, 8] {
        cfgs.push((format!("chunked/{t}"), ExecutorConfig::with_threads(t)));
    }
    for s in [1usize, 2, 4, 8] {
        cfgs.push((format!("sharded/{s}"), ExecutorConfig::sharded(s)));
        cfgs.push((
            format!("sharded/{s}-1thread"),
            ExecutorConfig {
                threads: 1,
                backend: DeliveryBackend::Sharded { shards: s },
            },
        ));
    }
    cfgs
}

/// [`RunOptions`] with an explicit seed and executor.
pub fn opts(seed: u64, exec: ExecutorConfig) -> RunOptions {
    RunOptions {
        seed,
        exec,
        ..Default::default()
    }
}

/// Runs a BCONGEST workload sequentially, then under every configuration in
/// `configs`, asserting byte-identical outputs and metrics (rounds, messages,
/// broadcasts, and the full per-edge congestion vector).
pub fn assert_bcongest_matches<A>(
    name: &str,
    algo: &A,
    g: &Graph,
    seed: u64,
    configs: &[(String, ExecutorConfig)],
) where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let base = run_bcongest(algo, g, None, &opts(seed, ExecutorConfig::sequential()))
        .expect("sequential run");
    for (label, cfg) in configs {
        let run = run_bcongest(algo, g, None, &opts(seed, cfg.clone()))
            .unwrap_or_else(|e| panic!("{name}: run under {label} failed: {e}"));
        assert_eq!(base.outputs, run.outputs, "{name}: outputs @ {label}");
        assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
        assert_eq!(
            base.input_words, run.input_words,
            "{name}: input words @ {label}"
        );
        assert_eq!(
            base.output_words, run.output_words,
            "{name}: output words @ {label}"
        );
    }
}

/// [`assert_bcongest_matches`] for point-to-point CONGEST workloads.
pub fn assert_congest_matches<A>(
    name: &str,
    algo: &A,
    g: &Graph,
    seed: u64,
    configs: &[(String, ExecutorConfig)],
) where
    A: CongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let base = run_congest(algo, g, None, &opts(seed, ExecutorConfig::sequential()))
        .expect("sequential run");
    for (label, cfg) in configs {
        let run = run_congest(algo, g, None, &opts(seed, cfg.clone()))
            .unwrap_or_else(|e| panic!("{name}: run under {label} failed: {e}"));
        assert_eq!(base.outputs, run.outputs, "{name}: outputs @ {label}");
        assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
    }
}

/// Differential GHS MST: edges, weight, fragments, phases, and metrics must be
/// identical under every configuration.
pub fn assert_mst_matches(name: &str, wg: &WeightedGraph, configs: &[(String, ExecutorConfig)]) {
    let cfg_for = |exec: ExecutorConfig| MstConfig {
        exec,
        ..Default::default()
    };
    let base = distributed_mst(wg, &cfg_for(ExecutorConfig::sequential())).expect("sequential mst");
    for (label, cfg) in configs {
        let run = distributed_mst(wg, &cfg_for(cfg.clone()))
            .unwrap_or_else(|e| panic!("{name}: mst under {label} failed: {e}"));
        assert_eq!(base.edges, run.edges, "{name}: edges @ {label}");
        assert_eq!(
            base.total_weight, run.total_weight,
            "{name}: weight @ {label}"
        );
        assert_eq!(base.fragment, run.fragment, "{name}: fragments @ {label}");
        assert_eq!(base.phases, run.phases, "{name}: phases @ {label}");
        assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
    }
}

/// Differential k-parameterized MST trade-off: edges, route, and metrics must
/// be identical under every configuration.
pub fn assert_tradeoff_matches(
    name: &str,
    wg: &WeightedGraph,
    k: usize,
    seed: u64,
    configs: &[(String, ExecutorConfig)],
) {
    let base =
        mst_tradeoff_with(wg, k, seed, &ExecutorConfig::sequential()).expect("sequential tradeoff");
    for (label, cfg) in configs {
        let run = mst_tradeoff_with(wg, k, seed, cfg)
            .unwrap_or_else(|e| panic!("{name}: tradeoff under {label} failed: {e}"));
        assert_eq!(base.edges, run.edges, "{name}: edges @ {label}");
        assert_eq!(base.route, run.route, "{name}: route @ {label}");
        assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
    }
}

/// Differential weighted APSP through the Theorem 2.1 simulation: distances,
/// metrics, and the simulated complexity measures must be identical under
/// every configuration.
pub fn assert_weighted_apsp_matches(
    name: &str,
    wg: &WeightedGraph,
    seed: u64,
    configs: &[(String, ExecutorConfig)],
) {
    let apsp_cfg = |exec: ExecutorConfig| WeightedApspConfig {
        seed,
        exec,
        ..Default::default()
    };
    let base = weighted_apsp(wg, &apsp_cfg(ExecutorConfig::sequential())).expect("sequential apsp");
    for (label, cfg) in configs {
        let run = weighted_apsp(wg, &apsp_cfg(cfg.clone()))
            .unwrap_or_else(|e| panic!("{name}: apsp under {label} failed: {e}"));
        assert_eq!(base.distances, run.distances, "{name}: distances @ {label}");
        assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
        assert_eq!(
            base.simulated_broadcasts, run.simulated_broadcasts,
            "{name}: B_A @ {label}"
        );
        assert_eq!(
            base.simulated_rounds, run.simulated_rounds,
            "{name}: T_A @ {label}"
        );
    }
}

/// A point-to-point CONGEST workload for the `run_congest` path: flood each
/// node's ID one hop at a time with per-neighbor messages, outputting a
/// checksum over everything heard (order-sensitive, so inbox-order leaks are
/// caught too).
pub struct GossipOnce;

#[derive(Clone, Debug)]
pub struct GossipState {
    neighbors: Vec<NodeId>,
    pending: bool,
    heard: u64,
}

impl CongestAlgorithm for GossipOnce {
    type State = GossipState;
    type Msg = u32;
    type Output = u64;

    fn name(&self) -> &'static str {
        "gossip-once"
    }
    fn init(&self, view: &LocalView<'_>) -> GossipState {
        GossipState {
            neighbors: view.neighbors().to_vec(),
            pending: true,
            heard: u64::from(view.node().raw()),
        }
    }
    fn sends(&self, s: &GossipState, _round: usize) -> Vec<(NodeId, u32)> {
        if !s.pending {
            return Vec::new();
        }
        s.neighbors
            .iter()
            .map(|&u| (u, (s.heard & 0xffff_ffff) as u32))
            .collect()
    }
    fn on_sent(&self, s: &mut GossipState, _round: usize) {
        s.pending = false;
    }
    fn receive(&self, s: &mut GossipState, round: usize, msgs: &[(NodeId, u32)]) {
        // Deliberately order-sensitive fold: a reordered inbox would change
        // the checksum.
        for &(from, w) in msgs {
            s.heard = s
                .heard
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(from.raw()) ^ u64::from(w) ^ round as u64);
        }
    }
    fn is_done(&self, s: &GossipState) -> bool {
        !s.pending
    }
    fn output(&self, s: &GossipState) -> u64 {
        s.heard
    }
    fn round_bound(&self, n: usize, _m: usize) -> usize {
        n + 2
    }
}
