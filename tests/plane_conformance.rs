//! The message-plane conformance contract, enforced differentially over the
//! **entire workload registry**: for every `congest_workloads` entry, running
//! on the flat zero-copy plane
//! ([`MessagePlane::Flat`](congest_apsp::engine::MessagePlane)) under any
//! delivery backend — `Sequential`, `Chunked` at 1/2/4/8 threads, `Sharded`
//! at 1/2/4/8 shards (with and without worker threads) — produces a
//! [`RunOutcome`](congest_apsp::workloads::RunOutcome) **identical** to the
//! boxed sequential reference. Equality is structural: the canonical output
//! rendering plus rounds, messages, broadcasts, `payload_bytes`, and the full
//! per-edge congestion vector, so a codec that drops a lane, a scatter that
//! reorders an inbox, or a plane-dependent byte charge is a hard failure, not
//! a statistical blip.
//!
//! The matrix is [`plane_matrix`] — every [`backend_matrix`] cell crossed with
//! both planes — so the suite also re-pins the boxed plane while it is at it,
//! and registering a workload (see `congest_workloads::registry`) is what
//! enrols it here.
//!
//! [`backend_matrix`]: congest_apsp::workloads::configs::backend_matrix

use congest_apsp::engine::{ExecutorConfig, MessagePlane};
use congest_apsp::workloads::{configs::plane_matrix, find, registry};

#[test]
fn registry_identical_across_planes_and_backends() {
    let configs = plane_matrix();
    for w in registry() {
        // Build once per workload; every (backend, plane) cell runs the same
        // input against the same boxed-sequential baseline.
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base.output, run.output, "{}: outputs @ {label}", w.name());
            assert_eq!(base.metrics, run.metrics, "{}: metrics @ {label}", w.name());
        }
    }
}

/// The fast tripwire run by name in CI's clippy job: one BCONGEST and one MST
/// workload on the flat plane, sequential and 2 shards, against the boxed
/// baseline. Red here means the flat plane regressed — no need to wait for
/// the full matrix.
#[test]
fn flat_plane_smoke() {
    for name in ["bfs/gnp", "mst/gnp"] {
        let w = find(name).expect("registered workload");
        let base = w
            .run(&ExecutorConfig::sequential())
            .expect("boxed sequential run");
        for cfg in [
            ExecutorConfig::sequential().with_plane(MessagePlane::Flat),
            ExecutorConfig::sharded(2).with_plane(MessagePlane::Flat),
        ] {
            assert_eq!(base, w.run(&cfg).expect("flat run"), "{name}");
        }
    }
}
