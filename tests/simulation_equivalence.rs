//! The strongest correctness statement in the repo: for every payload algorithm,
//! every simulation theorem, and many (graph, seed) pairs, the simulated execution
//! produces outputs **identical** to the direct BCONGEST execution with the same
//! seed — the executable form of Lemmas 2.5, 3.14 and 3.20.

use congest_apsp::algos::apsp_weighted::WeightedApsp;
use congest_apsp::algos::bfs::Bfs;
use congest_apsp::algos::bfs_collection::BfsCollection;
use congest_apsp::algos::matching_bipartite::BipartiteMatching;
use congest_apsp::algos::mis::LubyMis;
use congest_apsp::apsp_core::simulate::{
    simulate_aggregation_general, simulate_aggregation_star, simulate_bcongest_via_ldc,
    AggSimOptions, LdcSimOptions,
};
use congest_apsp::decomp::pruning::prune;
use congest_apsp::decomp::Hierarchy;
use congest_apsp::engine::{run_bcongest, BcongestAlgorithm, RunOptions};
use congest_apsp::graph::{generators, Graph, NodeId, WeightedGraph};

fn direct<A>(algo: &A, g: &Graph, weights: Option<&[u64]>, seed: u64) -> Vec<A::Output>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    run_bcongest(
        algo,
        g,
        weights,
        &RunOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("direct run")
    .outputs
}

fn via_ldc<A>(algo: &A, g: &Graph, weights: Option<&[u64]>, seed: u64) -> Vec<A::Output>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    simulate_bcongest_via_ldc(
        algo,
        g,
        weights,
        &LdcSimOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("ldc simulation")
    .outputs
}

#[test]
fn theorem_2_1_bfs_across_families_and_seeds() {
    for (i, g) in [
        generators::gnp_connected(26, 0.15, 1),
        generators::grid(5, 5),
        generators::caveman(4, 6),
        generators::complete(18),
        generators::path(24),
        generators::star(20),
        generators::barbell(8, 5),
    ]
    .iter()
    .enumerate()
    {
        for seed in [3u64, 17] {
            let algo = Bfs::new(NodeId::new(i % g.n()));
            assert_eq!(
                via_ldc(&algo, g, None, seed),
                direct(&algo, g, None, seed),
                "family {i}, seed {seed}"
            );
        }
    }
}

#[test]
fn theorem_2_1_weighted_apsp_payload() {
    let g = generators::gnp_connected(16, 0.25, 2);
    let wg = WeightedGraph::random_weights(&g, 1..=6, 2);
    let algo = WeightedApsp::new(wg.max_weight());
    for seed in [1u64, 9] {
        assert_eq!(
            via_ldc(&algo, &g, Some(wg.weights()), seed),
            direct(&algo, &g, Some(wg.weights()), seed)
        );
    }
}

#[test]
fn theorem_2_1_randomized_payloads() {
    let g = generators::gnp_connected(20, 0.2, 3);
    for seed in [5u64, 23] {
        assert_eq!(
            via_ldc(&LubyMis, &g, None, seed),
            direct(&LubyMis, &g, None, seed)
        );
    }
    let gb = generators::random_bipartite_connected(6, 7, 0.3, 4);
    assert_eq!(
        via_ldc(&BipartiteMatching, &gb, None, 7),
        direct(&BipartiteMatching, &gb, None, 7)
    );
}

#[test]
fn theorem_3_9_across_epsilon_and_families() {
    for (fi, g) in [
        generators::gnp_connected(22, 0.18, 5),
        generators::grid(5, 4),
        generators::caveman(3, 6),
    ]
    .iter()
    .enumerate()
    {
        for &eps in &[0.34, 0.5, 1.0] {
            let h = prune(g, &Hierarchy::build(g, eps, 40 + fi as u64));
            let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(8);
            let sim = simulate_aggregation_general(
                &algo,
                g,
                None,
                &h,
                &AggSimOptions {
                    seed: 19,
                    ..Default::default()
                },
            )
            .expect("agg simulation");
            assert_eq!(
                sim.outputs,
                direct(&algo, g, None, 19),
                "family {fi}, eps {eps}"
            );
        }
    }
}

#[test]
fn theorem_3_10_across_epsilon() {
    let g = generators::gnp_connected(24, 0.2, 6);
    for &eps in &[0.5, 0.6, 0.8, 1.0] {
        let h = prune(&g, &Hierarchy::build(&g, eps, 50));
        let algo = BfsCollection::new(g.nodes().collect())
            .with_depth_limit(5)
            .with_random_delays(3);
        let sim = simulate_aggregation_star(
            &algo,
            &g,
            None,
            &h,
            &AggSimOptions {
                seed: 29,
                ..Default::default()
            },
        )
        .expect("star simulation");
        assert_eq!(sim.outputs, direct(&algo, &g, None, 29), "eps {eps}");
    }
}

#[test]
fn all_three_simulations_agree_with_each_other() {
    let g = generators::gnp_connected(20, 0.25, 8);
    let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(1);
    let seed = 37;
    let a = via_ldc(&algo, &g, None, seed);
    let h = prune(&g, &Hierarchy::build(&g, 0.5, 60));
    let b = simulate_aggregation_general(
        &algo,
        &g,
        None,
        &h,
        &AggSimOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("agg")
    .outputs;
    let c = simulate_aggregation_star(
        &algo,
        &g,
        None,
        &h,
        &AggSimOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("star")
    .outputs;
    assert_eq!(a, b);
    assert_eq!(b, c);
}
