//! The parallel executor's contract, enforced: for every workload and every
//! graph family, running at 2, 4 and 8 executor threads produces outputs and
//! [`Metrics`] **identical** to the sequential run (`threads = 1`). Metrics
//! equality is structural — rounds, messages, broadcasts, and the full
//! per-edge congestion vector — so any scheduling-order leak in the chunk
//! merge shows up as a hard failure, not a statistical blip.

use congest_apsp::algos::bfs::Bfs;
use congest_apsp::algos::bfs_collection::BfsCollection;
use congest_apsp::algos::leader::LeaderElect;
use congest_apsp::algos::mst::{distributed_mst, MstConfig};
use congest_apsp::apsp_core::mst_tradeoff::mst_tradeoff_with;
use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::engine::{
    run_bcongest, run_congest, BcongestAlgorithm, CongestAlgorithm, ExecutorConfig, LocalView,
    RunOptions,
};
use congest_apsp::graph::{generators, Graph, NodeId, WeightedGraph};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Random + pathological families: G(n,p), a path (deep idle-skipping), a star
/// (maximally skewed degrees — chunk loads are wildly unequal), a cycle, and a
/// clustered caveman graph.
fn graph_families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp", generators::gnp_connected(60, 0.12, 11)),
        ("dense-gnp", generators::gnp_connected(40, 0.5, 12)),
        ("path", generators::path(48)),
        ("star", generators::star(49)),
        ("cycle", generators::cycle(40)),
        ("caveman", generators::caveman(6, 8)),
    ]
}

fn opts(seed: u64, threads: usize) -> RunOptions {
    RunOptions {
        seed,
        exec: ExecutorConfig::with_threads(threads),
        ..Default::default()
    }
}

fn assert_bcongest_deterministic<A>(name: &str, algo: &A, g: &Graph, seed: u64)
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let base = run_bcongest(algo, g, None, &opts(seed, 1)).expect("sequential run");
    for t in THREAD_COUNTS {
        let par = run_bcongest(algo, g, None, &opts(seed, t)).expect("parallel run");
        assert_eq!(base.outputs, par.outputs, "{name}: outputs @ {t} threads");
        assert_eq!(base.metrics, par.metrics, "{name}: metrics @ {t} threads");
        assert_eq!(base.input_words, par.input_words, "{name}: input words");
        assert_eq!(base.output_words, par.output_words, "{name}: output words");
    }
}

#[test]
fn bfs_identical_across_thread_counts() {
    for (family, g) in graph_families() {
        assert_bcongest_deterministic(&format!("bfs/{family}"), &Bfs::new(NodeId::new(0)), &g, 5);
    }
}

#[test]
fn leader_election_identical_across_thread_counts() {
    for (family, g) in graph_families() {
        assert_bcongest_deterministic(&format!("leader/{family}"), &LeaderElect, &g, 7);
    }
}

#[test]
fn bfs_collection_with_random_delays_identical_across_thread_counts() {
    // The Theorem 1.4 workload: per-node randomness (derived seeds) plus
    // staggered wave starts — the hardest BCONGEST payload to keep bitwise
    // stable under resharding.
    for (family, g) in graph_families() {
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(13);
        assert_bcongest_deterministic(&format!("bfs-collection/{family}"), &algo, &g, 13);
    }
}

#[test]
fn weighted_apsp_identical_across_thread_counts() {
    // End-to-end through the Theorem 2.1 simulation: leader election, LDC
    // build, upcasts/downcasts, and the stepper all honor the executor.
    let g = generators::gnp_connected(26, 0.18, 21);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 21);
    let base = weighted_apsp(
        &wg,
        &WeightedApspConfig {
            seed: 3,
            exec: ExecutorConfig::sequential(),
            ..Default::default()
        },
    )
    .expect("sequential apsp");
    for t in THREAD_COUNTS {
        let par = weighted_apsp(
            &wg,
            &WeightedApspConfig {
                seed: 3,
                exec: ExecutorConfig::with_threads(t),
                ..Default::default()
            },
        )
        .expect("parallel apsp");
        assert_eq!(base.distances, par.distances, "distances @ {t} threads");
        assert_eq!(base.metrics, par.metrics, "metrics @ {t} threads");
        assert_eq!(
            base.simulated_broadcasts, par.simulated_broadcasts,
            "B_A @ {t} threads"
        );
        assert_eq!(
            base.simulated_rounds, par.simulated_rounds,
            "T_A @ {t} threads"
        );
    }
}

#[test]
fn mst_identical_across_thread_counts() {
    // The GHS workload: per-phase chunk-parallel MWOE scans and announcement
    // charging plus the tree primitives. Outputs (edge set, fragments), rounds,
    // messages, and the full per-edge congestion vector are pinned byte-identical.
    for (family, g) in graph_families() {
        let wg = WeightedGraph::random_weights(&g, 1..=9, 17);
        let cfg = |t: usize| MstConfig {
            exec: ExecutorConfig::with_threads(t),
            ..Default::default()
        };
        let base = distributed_mst(&wg, &cfg(1)).expect("sequential mst");
        for t in THREAD_COUNTS {
            let par = distributed_mst(&wg, &cfg(t)).expect("parallel mst");
            assert_eq!(base.edges, par.edges, "mst/{family}: edges @ {t} threads");
            assert_eq!(
                base.total_weight, par.total_weight,
                "mst/{family}: weight @ {t} threads"
            );
            assert_eq!(
                base.fragment, par.fragment,
                "mst/{family}: fragments @ {t} threads"
            );
            assert_eq!(
                base.phases, par.phases,
                "mst/{family}: phases @ {t} threads"
            );
            assert_eq!(
                base.metrics, par.metrics,
                "mst/{family}: metrics @ {t} threads"
            );
        }
    }
}

#[test]
fn mst_tradeoff_identical_across_thread_counts() {
    // End-to-end through the central-finish route: controlled merging, leader
    // election, upcast collection and downcast notification all honor the executor.
    let g = generators::gnp_connected(40, 0.15, 23);
    let wg = WeightedGraph::random_unique_weights(&g, 23);
    let base = mst_tradeoff_with(&wg, 4, 3, &ExecutorConfig::sequential()).expect("sequential");
    for t in THREAD_COUNTS {
        let par = mst_tradeoff_with(&wg, 4, 3, &ExecutorConfig::with_threads(t)).expect("parallel");
        assert_eq!(base.edges, par.edges, "tradeoff edges @ {t} threads");
        assert_eq!(base.metrics, par.metrics, "tradeoff metrics @ {t} threads");
        assert_eq!(base.route, par.route, "tradeoff route @ {t} threads");
    }
}

/// A point-to-point CONGEST workload for the `run_congest` path: flood each
/// node's ID one hop at a time with per-neighbor messages, outputting a
/// checksum over everything heard (order-sensitive, so inbox-order leaks are
/// caught too).
struct GossipOnce;

#[derive(Clone, Debug)]
struct GossipState {
    neighbors: Vec<NodeId>,
    pending: bool,
    heard: u64,
}

impl CongestAlgorithm for GossipOnce {
    type State = GossipState;
    type Msg = u32;
    type Output = u64;

    fn name(&self) -> &'static str {
        "gossip-once"
    }
    fn init(&self, view: &LocalView<'_>) -> GossipState {
        GossipState {
            neighbors: view.neighbors().to_vec(),
            pending: true,
            heard: u64::from(view.node().raw()),
        }
    }
    fn sends(&self, s: &GossipState, _round: usize) -> Vec<(NodeId, u32)> {
        if !s.pending {
            return Vec::new();
        }
        s.neighbors
            .iter()
            .map(|&u| (u, (s.heard & 0xffff_ffff) as u32))
            .collect()
    }
    fn on_sent(&self, s: &mut GossipState, _round: usize) {
        s.pending = false;
    }
    fn receive(&self, s: &mut GossipState, round: usize, msgs: &[(NodeId, u32)]) {
        // Deliberately order-sensitive fold: a resharded inbox order would
        // change the checksum.
        for &(from, w) in msgs {
            s.heard = s
                .heard
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(from.raw()) ^ u64::from(w) ^ round as u64);
        }
    }
    fn is_done(&self, s: &GossipState) -> bool {
        !s.pending
    }
    fn output(&self, s: &GossipState) -> u64 {
        s.heard
    }
    fn round_bound(&self, n: usize, _m: usize) -> usize {
        n + 2
    }
}

#[test]
fn congest_runner_identical_across_thread_counts() {
    for (family, g) in graph_families() {
        let base = run_congest(&GossipOnce, &g, None, &opts(9, 1)).expect("sequential");
        for t in THREAD_COUNTS {
            let par = run_congest(&GossipOnce, &g, None, &opts(9, t)).expect("parallel");
            assert_eq!(
                base.outputs, par.outputs,
                "gossip/{family}: outputs @ {t} threads"
            );
            assert_eq!(
                base.metrics, par.metrics,
                "gossip/{family}: metrics @ {t} threads"
            );
        }
    }
}

#[test]
fn zero_threads_resolves_to_hardware_and_stays_deterministic() {
    let g = generators::gnp_connected(30, 0.2, 31);
    let base = run_bcongest(&Bfs::new(NodeId::new(3)), &g, None, &opts(1, 1)).expect("seq");
    let auto = run_bcongest(&Bfs::new(NodeId::new(3)), &g, None, &opts(1, 0)).expect("auto");
    assert_eq!(base.outputs, auto.outputs);
    assert_eq!(base.metrics, auto.metrics);
}
