//! The parallel executor's contract, enforced over the **entire workload
//! registry**: every `congest_workloads` entry run at 2, 4 and 8 executor
//! threads produces a [`RunOutcome`](congest_apsp::workloads::RunOutcome)
//! **identical** to the sequential run (`threads = 1`). Equality is structural
//! — the canonical output rendering plus rounds, messages, broadcasts, and the
//! full per-edge congestion vector — so any scheduling-order leak in the chunk
//! merge shows up as a hard failure, not a statistical blip.
//!
//! The workload list and the configuration matrices live in
//! `congest_workloads` (shared with `tests/backend_conformance.rs`, which runs
//! the same entries across the full delivery-backend matrix), so the two
//! suites cannot drift apart.

use congest_apsp::algos::bfs::Bfs;
use congest_apsp::engine::{run_bcongest, ExecutorConfig, RunOptions};
use congest_apsp::graph::{generators, NodeId};
use congest_apsp::workloads::{configs::thread_matrix, registry};

/// The [`DeliveryBackend::Auto`](congest_apsp::engine::DeliveryBackend::Auto)
/// decision log is a pure function of per-round message volume — never of the
/// thread count — so the sequence recorded in
/// [`Metrics::backend_decisions`](congest_apsp::engine::Metrics::backend_decisions)
/// must be byte-identical across repeats **and** across every executor thread
/// count, on every registry entry.
#[test]
fn auto_decision_log_identical_across_repeats_and_threads() {
    // Workloads that execute through the round-loop runners log decisions;
    // treeops-based entries (the MST family) use the volume-blind fallback
    // and log nothing — the registry must contain plenty of the former.
    let mut logged = 0usize;
    for w in registry() {
        let input = w.build();
        let run_at = |threads: usize| {
            w.run_built(&input, &ExecutorConfig::auto(threads))
                .unwrap_or_else(|e| panic!("{}: auto @ {threads} threads failed: {e}", w.name()))
                .metrics
        };
        let base = run_at(1);
        let log = base.backend_decisions();
        if !log.is_empty() {
            logged += 1;
        }
        let repeat = run_at(1);
        assert_eq!(
            log,
            repeat.backend_decisions(),
            "{}: decision log differs across repeats",
            w.name()
        );
        for threads in [2usize, 4, 8] {
            let alt = run_at(threads);
            assert_eq!(
                log,
                alt.backend_decisions(),
                "{}: decision log differs at {threads} threads",
                w.name()
            );
        }
    }
    assert!(
        logged > 0,
        "no registry entry logged auto decisions — runner wiring broken"
    );
}

#[test]
fn registry_identical_across_thread_counts() {
    let configs = thread_matrix();
    for w in registry() {
        // Build once per workload; every configuration runs the same input.
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base, run, "{} @ {label}", w.name());
        }
    }
}

#[test]
fn zero_threads_resolves_to_hardware_and_stays_deterministic() {
    let g = generators::gnp_connected(30, 0.2, 31);
    let opts = |exec: ExecutorConfig| RunOptions {
        seed: 1,
        exec,
        ..Default::default()
    };
    let base = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(ExecutorConfig::sequential()),
    )
    .expect("sequential run");
    let auto = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(ExecutorConfig::with_threads(0)),
    )
    .expect("hardware-thread run");
    assert_eq!(base.outputs, auto.outputs);
    assert_eq!(base.metrics, auto.metrics);
}
