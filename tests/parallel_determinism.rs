//! The parallel executor's contract, enforced over the **entire workload
//! registry**: every `congest_workloads` entry run at 2, 4 and 8 executor
//! threads produces a [`RunOutcome`](congest_apsp::workloads::RunOutcome)
//! **identical** to the sequential run (`threads = 1`). Equality is structural
//! — the canonical output rendering plus rounds, messages, broadcasts, and the
//! full per-edge congestion vector — so any scheduling-order leak in the chunk
//! merge shows up as a hard failure, not a statistical blip.
//!
//! The workload list and the configuration matrices live in
//! `congest_workloads` (shared with `tests/backend_conformance.rs`, which runs
//! the same entries across the full delivery-backend matrix), so the two
//! suites cannot drift apart.

use congest_apsp::algos::bfs::Bfs;
use congest_apsp::engine::{run_bcongest, ExecutorConfig, RunOptions};
use congest_apsp::graph::{generators, NodeId};
use congest_apsp::workloads::{configs::thread_matrix, registry};

#[test]
fn registry_identical_across_thread_counts() {
    let configs = thread_matrix();
    for w in registry() {
        // Build once per workload; every configuration runs the same input.
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base, run, "{} @ {label}", w.name());
        }
    }
}

#[test]
fn zero_threads_resolves_to_hardware_and_stays_deterministic() {
    let g = generators::gnp_connected(30, 0.2, 31);
    let opts = |exec: ExecutorConfig| RunOptions {
        seed: 1,
        exec,
        ..Default::default()
    };
    let base = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(ExecutorConfig::sequential()),
    )
    .expect("sequential run");
    let auto = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(ExecutorConfig::with_threads(0)),
    )
    .expect("hardware-thread run");
    assert_eq!(base.outputs, auto.outputs);
    assert_eq!(base.metrics, auto.metrics);
}
