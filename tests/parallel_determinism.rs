//! The parallel executor's contract, enforced: for every workload and every
//! graph family, running at 2, 4 and 8 executor threads produces outputs and
//! `Metrics` **identical** to the sequential run (`threads = 1`). Metrics
//! equality is structural — rounds, messages, broadcasts, and the full
//! per-edge congestion vector — so any scheduling-order leak in the chunk
//! merge shows up as a hard failure, not a statistical blip.
//!
//! The workload list and equality helpers live in `tests/common/mod.rs`,
//! shared with `tests/backend_conformance.rs` (which runs the same workloads
//! across the full Sequential/Chunked/Sharded delivery-backend matrix).

mod common;

use common::{
    assert_bcongest_matches, assert_congest_matches, assert_mst_matches, assert_tradeoff_matches,
    assert_weighted_apsp_matches, graph_families, opts, thread_matrix, GossipOnce,
};
use congest_apsp::algos::bfs::Bfs;
use congest_apsp::algos::bfs_collection::BfsCollection;
use congest_apsp::algos::leader::LeaderElect;
use congest_apsp::engine::{run_bcongest, ExecutorConfig};
use congest_apsp::graph::{generators, NodeId, WeightedGraph};

#[test]
fn bfs_identical_across_thread_counts() {
    let configs = thread_matrix();
    for (family, g) in graph_families() {
        assert_bcongest_matches(
            &format!("bfs/{family}"),
            &Bfs::new(NodeId::new(0)),
            &g,
            5,
            &configs,
        );
    }
}

#[test]
fn leader_election_identical_across_thread_counts() {
    let configs = thread_matrix();
    for (family, g) in graph_families() {
        assert_bcongest_matches(&format!("leader/{family}"), &LeaderElect, &g, 7, &configs);
    }
}

#[test]
fn bfs_collection_with_random_delays_identical_across_thread_counts() {
    // The Theorem 1.4 workload: per-node randomness (derived seeds) plus
    // staggered wave starts — the hardest BCONGEST payload to keep bitwise
    // stable under resharding.
    let configs = thread_matrix();
    for (family, g) in graph_families() {
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(13);
        assert_bcongest_matches(&format!("bfs-collection/{family}"), &algo, &g, 13, &configs);
    }
}

#[test]
fn weighted_apsp_identical_across_thread_counts() {
    // End-to-end through the Theorem 2.1 simulation: leader election, LDC
    // build, upcasts/downcasts, and the stepper all honor the executor.
    let g = generators::gnp_connected(26, 0.18, 21);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 21);
    assert_weighted_apsp_matches("apsp/gnp", &wg, 3, &thread_matrix());
}

#[test]
fn mst_identical_across_thread_counts() {
    // The GHS workload: per-phase chunk-parallel MWOE scans and announcement
    // charging plus the tree primitives. Outputs (edge set, fragments), rounds,
    // messages, and the full per-edge congestion vector are pinned byte-identical.
    let configs = thread_matrix();
    for (family, g) in graph_families() {
        let wg = WeightedGraph::random_weights(&g, 1..=9, 17);
        assert_mst_matches(&format!("mst/{family}"), &wg, &configs);
    }
}

#[test]
fn mst_tradeoff_identical_across_thread_counts() {
    // End-to-end through the central-finish route: controlled merging, leader
    // election, upcast collection and downcast notification all honor the executor.
    let g = generators::gnp_connected(40, 0.15, 23);
    let wg = WeightedGraph::random_unique_weights(&g, 23);
    assert_tradeoff_matches("tradeoff/central", &wg, 4, 3, &thread_matrix());
}

#[test]
fn congest_runner_identical_across_thread_counts() {
    let configs = thread_matrix();
    for (family, g) in graph_families() {
        assert_congest_matches(&format!("gossip/{family}"), &GossipOnce, &g, 9, &configs);
    }
}

#[test]
fn zero_threads_resolves_to_hardware_and_stays_deterministic() {
    let g = generators::gnp_connected(30, 0.2, 31);
    let base = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(1, ExecutorConfig::sequential()),
    )
    .expect("sequential run");
    let auto = run_bcongest(
        &Bfs::new(NodeId::new(3)),
        &g,
        None,
        &opts(1, ExecutorConfig::with_threads(0)),
    )
    .expect("hardware-thread run");
    assert_eq!(base.outputs, auto.outputs);
    assert_eq!(base.metrics, auto.metrics);
}
