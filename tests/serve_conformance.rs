//! The serving-layer conformance contract, end to end through the
//! `congest_apsp` facade:
//!
//! 1. every answer a [`DistanceOracle`] serves is **byte-equal** to the
//!    sequential reference (all-pairs Dijkstra), over exhaustive and random
//!    query sets;
//! 2. a cached oracle and an uncached oracle serve identical answers on
//!    identical streams — the cache moves wall-clock and counters, never
//!    bytes;
//! 3. the `serve::*` registry entries (answers **plus** the oracle's
//!    deterministic hit/miss accounting) are identical across the full
//!    delivery-backend matrix, sequential baseline first;
//! 4. (proptest) k-nearest answers are exactly the reference's
//!    `(distance, node id)` total order, including tie-heavy weights.

use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::graph::{generators, reference, NodeId, WeightedGraph};
use congest_apsp::serve::loadgen::{AnswerCheck, ExactReference};
use congest_apsp::serve::{Distance, DistanceOracle};
use congest_apsp::workloads::{configs::backend_matrix, find};
use congest_apsp::ExecutorConfig;
use proptest::prelude::*;

/// A deterministic query stream without any RNG dependency: `count` pairs
/// striding coprime steps over the node set, so it revisits keys (exercising
/// the cache) while still covering the square.
fn stride_queries(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| (NodeId::new((i * 7 + 3) % n), NodeId::new((i * 13 + 1) % n)))
        .collect()
}

#[test]
fn oracle_answers_byte_equal_sequential_reference() {
    let g = generators::gnp_connected(20, 0.2, 41);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 41);
    let want = reference::all_pairs_dijkstra(&wg);
    let run = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
    let mut oracle = DistanceOracle::builder(run).cache_capacity(64).build();
    // Exhaustive: every pair, twice (the second pass is served from cache).
    for _ in 0..2 {
        for s in g.nodes() {
            for t in g.nodes() {
                let got = oracle.lookup(s, t);
                let expect = match want[s.index()][t.index()] {
                    Some(d) => Distance::Exact(d),
                    None => Distance::Unknown,
                };
                assert_eq!(got, expect, "lookup({s:?},{t:?})");
            }
        }
    }
    assert_eq!(oracle.metrics().lookups, 2 * 20 * 20);
}

#[test]
fn cached_and_uncached_oracles_serve_identical_streams() {
    let g = generators::gnp_connected(24, 0.18, 43);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 43);
    let build = || {
        weighted_apsp(
            &wg,
            &WeightedApspConfig {
                seed: 43,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let mut cached = DistanceOracle::builder(build()).cache_capacity(32).build();
    let mut uncached = DistanceOracle::builder(build()).cache_capacity(0).build();

    let stream = stride_queries(24, 600);
    for &(s, t) in &stream {
        assert_eq!(cached.lookup(s, t), uncached.lookup(s, t), "({s:?},{t:?})");
    }
    assert_eq!(cached.lookup_batch(&stream), uncached.lookup_batch(&stream));
    for s in g.nodes() {
        assert_eq!(cached.k_nearest(s, 5), uncached.k_nearest(s, 5), "{s:?}");
    }
    // The cache did engage — only the counters may differ, never the bytes.
    assert!(cached.metrics().hits > 0);
    assert_eq!(uncached.metrics().hits, 0);
    assert_eq!(cached.metrics().lookups, uncached.metrics().lookups);
}

/// The named CI tripwire (`serve-conformance` step): the three `serve::*`
/// registry entries — served answers plus deterministic cache accounting —
/// are byte-identical across the whole delivery-backend matrix.
#[test]
fn serve_registry_entries_identical_across_backend_matrix() {
    let configs = backend_matrix();
    for name in ["serve-apsp/gnp", "serve-landmarks/gnp", "serve-knn/gnp"] {
        let w = find(name).expect("registered serve workload");
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{name}: run under {label} failed: {e}"));
            assert_eq!(base.output, run.output, "{name}: outputs @ {label}");
            assert_eq!(base.metrics, run.metrics, "{name}: metrics @ {label}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// k-NN ordering under tie-heavy weights (all weights 1 or 2, so distance
    /// ties are everywhere): the served answer must be exactly the reference
    /// ordering under the `(distance, node id)` total order, for every k.
    #[test]
    fn knn_matches_reference_total_order_with_ties(seed in 0u64..50, n in 10usize..22, k in 1usize..8) {
        let g = generators::gnp_connected(n, 0.25, seed);
        let wg = WeightedGraph::random_weights(&g, 1..=2, seed);
        let check = ExactReference::dijkstra(&wg);
        let run = weighted_apsp(&wg, &WeightedApspConfig { seed, ..Default::default() }).unwrap();
        let mut oracle = DistanceOracle::builder(run).build();
        for s in g.nodes() {
            let got = oracle.k_nearest(s, k);
            prop_assert!(check.check_knn(s, k, &got).is_ok(),
                "{}", check.check_knn(s, k, &got).unwrap_err());
            // Sortedness is implied by the reference match, but assert it
            // directly so a failure names the offending adjacent pair.
            for pair in got.windows(2) {
                let a = (pair[0].1.value().unwrap(), pair[0].0);
                let b = (pair[1].1.value().unwrap(), pair[1].0);
                prop_assert!(a <= b, "unsorted adjacent pair {a:?} > {b:?}");
            }
        }
    }
}
