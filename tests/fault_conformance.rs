//! The fault-injection conformance contract, enforced over every `faulty-*`
//! registry scenario: deterministic seeded fault plans (edge churn, crashes,
//! crash/recovery) must produce **byte-identical**
//! [`RunOutcome`](congest_apsp::workloads::RunOutcome)s across the entire
//! delivery-backend × message-plane matrix — Sequential, Chunked at 1/2/4/8
//! threads, Sharded at 1/2/4/8 shards, on both the boxed and the flat
//! zero-copy plane. Fault injection is part of the execution semantics, not a
//! perturbation: which messages drop, which nodes freeze, and when restarts
//! fire is a pure function of `(plan, seed, round)`, so no matrix cell may
//! disagree on a single byte of output or a single metrics counter.
//!
//! On top of raw conformance, the suite pins the **replayable-trace closure
//! property**: recording a run yields a [`TraceLog`] that (a) survives the
//! JSONL codec byte-for-byte, and (b) [`replay`]s — re-executing the workload
//! named in its header under the recorded executor configuration — into an
//! identical trace, per-round deliveries, fault events, outputs and the full
//! [`Metrics`](congest_apsp::engine::Metrics) congestion vector included.
//!
//! [`TraceLog`]: congest_apsp::workloads::TraceLog
//! [`replay`]: congest_apsp::workloads::replay

use congest_apsp::engine::ExecutorConfig;
use congest_apsp::workloads::{configs::plane_matrix, find, registry, replay, TraceLog, Workload};

/// All `faulty-*` scenario entries (crash, churn, and heal axes).
fn faulty_entries() -> Vec<Box<dyn Workload>> {
    registry()
        .into_iter()
        .filter(|w| w.algorithm().starts_with("faulty-"))
        .collect()
}

#[test]
fn faulty_entries_identical_across_the_full_matrix() {
    let configs = plane_matrix();
    let list = faulty_entries();
    assert!(
        list.len() >= 6,
        "expected the crash/churn/heal scenario axes, found {}",
        list.len()
    );
    for w in list {
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base.output, run.output, "{}: outputs @ {label}", w.name());
            assert_eq!(base.metrics, run.metrics, "{}: metrics @ {label}", w.name());
        }
    }
}

#[test]
fn engine_faulted_scenarios_actually_drop_messages() {
    // The differential oracles would pass vacuously if the plans never bit;
    // pin that every engine-level scenario loses real messages to its faults.
    for name in [
        "faulty-bfs/gnp-crash",
        "faulty-leader/gnp-crash",
        "faulty-leader/path-heal",
        "faulty-gossip/gnp-crash",
        "faulty-gossip/gnp-churn",
    ] {
        let w = find(name).expect("registered faulty scenario");
        let run = w.run(&ExecutorConfig::sequential()).expect("faulted run");
        assert!(
            run.metrics.dropped_messages > 0,
            "{name}: plan dropped no messages"
        );
    }
}

#[test]
fn replay_reproduces_every_cell_of_the_matrix() {
    // Record → encode → decode → replay, for every faulty scenario under
    // every (backend, plane) cell. `replay` re-executes from scratch and
    // demands the fresh trace equal the recorded one — outputs, per-round
    // deliveries and fault events, and the exact metrics including the
    // per-edge congestion vector.
    for w in faulty_entries() {
        for (label, cfg) in &plane_matrix() {
            let (outcome, trace) = w
                .run_traced(cfg)
                .unwrap_or_else(|e| panic!("{} @ {label}: traced run failed: {e}", w.name()));
            assert_eq!(
                trace.metrics.congestion,
                outcome.metrics.congestion().to_vec(),
                "{} @ {label}: trace must mirror the congestion vector",
                w.name()
            );
            assert_eq!(
                trace.metrics.dropped_messages,
                outcome.metrics.dropped_messages,
                "{} @ {label}: trace must mirror the drop counter",
                w.name()
            );
            let decoded = TraceLog::from_jsonl(&trace.to_jsonl())
                .unwrap_or_else(|e| panic!("{} @ {label}: codec failed: {e}", w.name()));
            assert_eq!(decoded, trace, "{} @ {label}: JSONL roundtrip", w.name());
            replay(&decoded)
                .unwrap_or_else(|e| panic!("{} @ {label}: replay diverged: {e}", w.name()));
        }
    }
}

#[test]
fn traced_runs_match_untraced_runs() {
    // Observation must be free: the trace recorder's outcome is the same
    // RunOutcome the plain runner produces, faulted or not.
    for name in [
        "faulty-gossip/gnp-churn",
        "faulty-leader/path-heal",
        "skewed-bfs/power-law-wide",
        "gossip/hub-spoke",
    ] {
        let w = find(name).expect("registered workload");
        for cfg in [ExecutorConfig::sequential(), ExecutorConfig::sharded(4)] {
            let plain = w.run(&cfg).expect("plain run");
            let (traced, _) = w.run_traced(&cfg).expect("traced run");
            assert_eq!(plain, traced, "{name}: tracing changed the outcome");
        }
    }
}

#[test]
fn skewed_axes_are_registered_and_composite_traces_replay() {
    for name in ["skewed-bfs/power-law-wide", "skewed-gossip/hub-spoke-wide"] {
        let w = find(name).expect("skewed axis registered");
        w.oracle().expect("skewed oracle");
    }
    // Composite entries (no single runner loop) still produce replayable
    // outcome-level traces — here the workload-level crash-restart MST.
    let w = find("faulty-mst/gnp-crash").expect("registered workload");
    let (_, trace) = w
        .run_traced(&ExecutorConfig::sharded(2))
        .expect("traced run");
    assert_eq!(trace.kind, "composite");
    replay(&trace).expect("composite replay");
}

#[test]
fn recorded_traces_render_the_faulted_topology_as_dot() {
    let w = find("faulty-gossip/gnp-crash").expect("registered workload");
    let (_, trace) = w
        .run_traced(&ExecutorConfig::sequential())
        .expect("traced run");
    let dot = trace.to_dot(&w.build().graph);
    assert!(dot.contains("subgraph cluster_1"), "crashed nodes grouped");
    assert!(dot.contains("faulty-gossip/gnp-crash"), "label present");
}
