//! Differential-oracle suite for the "Beyond APSP" MST family: on every generator
//! family, the distributed GHS MST and every point of the k-parameterized trade-off
//! must produce **exactly** the minimum spanning forest the sequential oracles
//! (Kruskal *and* Prim, cross-checked against each other) produce under the
//! `(weight, EdgeId)` total order — same edge set, same weight, deterministically.

use congest_apsp::algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_apsp::apsp_core::mst_tradeoff::{mst_tradeoff, MstRoute};
use congest_apsp::apsp_core::verify::{check_message_budget, check_mst};
use congest_apsp::graph::{generators, reference, Graph, WeightedGraph};

/// The families the issue calls out: random, grid, expander-ish, and the pathological
/// trio (path, star, two clusters joined by a long bridge).
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("random", generators::gnp_connected(40, 0.15, 11)),
        ("dense-random", generators::gnp_connected(28, 0.5, 12)),
        ("grid", generators::grid(6, 6)),
        ("expander", generators::random_regularish(36, 4, 13)),
        ("path", generators::path(40)),
        ("star", generators::star(33)),
        ("two-cluster-bridge", generators::barbell(10, 12)),
    ]
}

/// Weighting schemes per family: guaranteed-unique, tie-heavy, and all-equal.
fn weightings(g: &Graph, seed: u64) -> Vec<(&'static str, WeightedGraph)> {
    vec![
        ("unique", WeightedGraph::random_unique_weights(g, seed)),
        ("tie-heavy", WeightedGraph::random_weights(g, 1..=3, seed)),
        ("all-equal", WeightedGraph::unit(g)),
    ]
}

#[test]
fn distributed_mst_equals_oracle_on_every_family() {
    for (family, g) in families() {
        for (scheme, wg) in weightings(&g, 21) {
            let run = distributed_mst(&wg, &MstConfig::default())
                .unwrap_or_else(|e| panic!("{family}/{scheme}: {e}"));
            check_mst(&wg, &run.edges).unwrap_or_else(|e| panic!("{family}/{scheme}: {e}"));
            assert!(run.complete, "{family}/{scheme}: merging must finish");
            assert_eq!(
                run.edges.len(),
                g.n() - 1,
                "{family}/{scheme}: spanning tree size"
            );
        }
    }
}

#[test]
fn tradeoff_sweep_equals_oracle_on_every_family() {
    for (family, g) in families() {
        let wg = WeightedGraph::random_unique_weights(&g, 5);
        let sqrt_n = (g.n() as f64).sqrt().ceil() as usize;
        for k in [2, sqrt_n, g.n()] {
            let res =
                mst_tradeoff(&wg, k, 7).unwrap_or_else(|e| panic!("{family} at k = {k}: {e}"));
            check_mst(&wg, &res.edges).unwrap_or_else(|e| panic!("{family} at k = {k}: {e}"));
            let want_route = if k >= g.n() {
                MstRoute::MessageOptimal
            } else {
                MstRoute::ControlledPlusCentral
            };
            assert_eq!(res.route, want_route, "{family} at k = {k}");
        }
    }
}

#[test]
fn tie_breaking_is_deterministic_and_oracle_aligned() {
    // Duplicate weights everywhere: repeated distributed runs, both oracles, and the
    // trade-off's central finisher must all settle on the same edge set.
    for (family, g) in families() {
        let wg = WeightedGraph::unit(&g);
        let a = distributed_mst(&wg, &MstConfig::default()).unwrap();
        let b = distributed_mst(&wg, &MstConfig::default()).unwrap();
        assert_eq!(a.edges, b.edges, "{family}: repeat determinism");
        assert_eq!(a.metrics, b.metrics, "{family}: metric determinism");
        let kruskal = reference::mst_kruskal(&wg);
        assert_eq!(kruskal, reference::mst_prim(&wg), "{family}: oracle split");
        assert_eq!(a.edges, kruskal.edges, "{family}: oracle alignment");
        let central = mst_tradeoff(&wg, 3, 1).unwrap();
        assert_eq!(central.edges, kruskal.edges, "{family}: central finisher");
    }
}

#[test]
fn duplicate_weight_regression_two_cluster_bridge() {
    // Regression for the duplicate-weight case the issue calls out: two clusters
    // where *every* intra-cluster edge ties and the two bridge-adjacent edges tie
    // too. Without the (weight, EdgeId) total order the "MST" would be ambiguous;
    // with it, every implementation must pick the lexicographically-first edges.
    let g = generators::barbell(6, 4);
    let wg = WeightedGraph::from_weights(g.clone(), vec![7; g.m()]).unwrap();
    let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
    let want = reference::mst_kruskal(&wg);
    assert_eq!(run.edges, want.edges);
    assert_eq!(run.total_weight, 7 * (g.n() as u64 - 1));
    // The tie-break picks the smallest EdgeIds that stay acyclic: a second run and
    // the trade-off central route reproduce them bit-for-bit.
    assert_eq!(mst_tradeoff(&wg, 4, 2).unwrap().edges, want.edges);
}

#[test]
fn message_counts_respect_the_budget_across_sizes() {
    for n in [24usize, 48, 96] {
        let g = generators::gnp_connected(n, 0.2, n as u64);
        let wg = WeightedGraph::random_unique_weights(&g, n as u64);
        let budget = message_bound(g.n(), g.m());
        // Budget installed as a hard cap: an overdraft would fail the run itself.
        let run = distributed_mst(
            &wg,
            &MstConfig {
                message_budget: Some(budget),
                ..Default::default()
            },
        )
        .unwrap();
        check_message_budget("ghs-mst", run.metrics.messages, budget).unwrap();
        check_mst(&wg, &run.edges).unwrap();
    }
}

#[test]
fn spanning_forest_on_disconnected_instances() {
    // Three islands, one of them an isolated vertex.
    let mut edges = Vec::new();
    for (a, b) in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)] {
        edges.push((a, b));
    }
    let g = Graph::from_edges(9, &edges);
    let wg = WeightedGraph::random_unique_weights(&g, 3);
    let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
    check_mst(&wg, &run.edges).unwrap();
    assert_eq!(run.edges.len(), 2 + 3); // triangle needs 2, 4-cycle needs 3
    let res = mst_tradeoff(&wg, 2, 3).unwrap();
    assert_eq!(res.edges, run.edges);
}
