//! The delivery-backend conformance contract, enforced differentially over the
//! **entire workload registry**: for every `congest_workloads` entry, running
//! under any [`DeliveryBackend`](congest_apsp::engine::DeliveryBackend) —
//! `Sequential`, `Chunked` at 1/2/4/8 threads, `Sharded` at 1/2/4/8 shards
//! (with and without worker threads) — produces a
//! [`RunOutcome`](congest_apsp::workloads::RunOutcome) **identical** to the
//! sequential run. Equality is structural: the canonical output rendering plus
//! rounds, messages, broadcasts, and the full per-edge congestion vector, so
//! any ordering leak in a batch merge is a hard failure, not a statistical
//! blip.
//!
//! Registering a workload (see `congest_workloads::registry`) is what enrols
//! it here — this suite has no workload list of its own, so it can never drift
//! from `tests/parallel_determinism.rs` or the benches.

use congest_apsp::engine::ExecutorConfig;
use congest_apsp::workloads::{configs::backend_matrix, find, registry};

#[test]
fn registry_identical_across_backends() {
    let configs = backend_matrix();
    for w in registry() {
        // Build once per workload; every configuration runs the same input.
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base.output, run.output, "{}: outputs @ {label}", w.name());
            assert_eq!(base.metrics, run.metrics, "{}: metrics @ {label}", w.name());
        }
    }
}

/// The fast tripwire CI's clippy job runs by name: one BCONGEST and one MST
/// workload, sequential vs 2 shards. Red here means the sharded backend
/// regressed — no need to wait for the full matrix.
#[test]
fn two_shard_smoke() {
    for name in ["bfs/gnp", "mst/gnp"] {
        let w = find(name).expect("registered workload");
        let base = w
            .run(&ExecutorConfig::sequential())
            .expect("sequential run");
        let run = w.run(&ExecutorConfig::sharded(2)).expect("2-shard run");
        assert_eq!(base, run, "{name}: sequential vs 2 shards");
    }
}
