//! The delivery-backend conformance contract, enforced differentially: for
//! every workload and every graph family, running under any
//! [`DeliveryBackend`](congest_apsp::engine::DeliveryBackend) —
//! `Sequential`, `Chunked` at 1/2/4/8 threads, `Sharded` at 1/2/4/8 shards
//! (with and without worker threads) — produces outputs and `Metrics`
//! **identical** to the sequential run. Equality is structural: per-node
//! outputs, rounds, messages, broadcasts, and the full per-edge congestion
//! vector, so any ordering leak in a batch merge is a hard failure, not a
//! statistical blip.
//!
//! The workload list is shared with `tests/parallel_determinism.rs` through
//! `tests/common/mod.rs`, so the thread-count suite and this backend matrix
//! can never drift apart.

mod common;

use common::{
    assert_bcongest_matches, assert_congest_matches, assert_mst_matches, assert_tradeoff_matches,
    assert_weighted_apsp_matches, backend_matrix, graph_families, GossipOnce,
};
use congest_apsp::algos::bfs::Bfs;
use congest_apsp::algos::leader::LeaderElect;
use congest_apsp::engine::ExecutorConfig;
use congest_apsp::graph::{generators, NodeId, WeightedGraph};

#[test]
fn bfs_identical_across_backends() {
    let configs = backend_matrix();
    for (family, g) in graph_families() {
        assert_bcongest_matches(
            &format!("bfs/{family}"),
            &Bfs::new(NodeId::new(0)),
            &g,
            5,
            &configs,
        );
    }
}

#[test]
fn leader_election_identical_across_backends() {
    let configs = backend_matrix();
    for (family, g) in graph_families() {
        assert_bcongest_matches(&format!("leader/{family}"), &LeaderElect, &g, 7, &configs);
    }
}

#[test]
fn gossip_identical_across_backends() {
    // Point-to-point CONGEST with an order-sensitive checksum: catches any
    // backend that reorders inboxes, not just one that loses messages.
    let configs = backend_matrix();
    for (family, g) in graph_families() {
        assert_congest_matches(&format!("gossip/{family}"), &GossipOnce, &g, 9, &configs);
    }
}

#[test]
fn weighted_apsp_identical_across_backends() {
    // End-to-end through the Theorem 2.1 simulation: leader election, LDC
    // build, upcasts/downcasts, and the stepper all flow through the backend.
    let g = generators::gnp_connected(26, 0.18, 21);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 21);
    assert_weighted_apsp_matches("apsp/gnp", &wg, 3, &backend_matrix());
}

#[test]
fn mst_identical_across_backends() {
    // The sharded backend's first-class workload: the GHS phase loop
    // (announce → convergecast → merge) over every family, including the
    // deep path forests where the level-bucketed sharded schedule differs
    // most from the depth-sorted sequential one.
    let configs = backend_matrix();
    for (family, g) in graph_families() {
        let wg = WeightedGraph::random_weights(&g, 1..=9, 17);
        assert_mst_matches(&format!("mst/{family}"), &wg, &configs);
    }
}

#[test]
fn mst_tradeoff_identical_across_backends() {
    // Both trade-off routes: controlled merging + central finish (k < n,
    // upcast/downcast heavy) and pure GHS (k = n).
    let configs = backend_matrix();
    let g = generators::gnp_connected(40, 0.15, 23);
    let wg = WeightedGraph::random_unique_weights(&g, 23);
    assert_tradeoff_matches("tradeoff/central", &wg, 4, 3, &configs);
    assert_tradeoff_matches("tradeoff/ghs", &wg, g.n(), 3, &configs);
}

/// The fast tripwire CI's clippy job runs by name: one BCONGEST and one MST
/// workload, sequential vs 2 shards, on a small graph. Red here means the
/// sharded backend regressed — no need to wait for the full matrix.
#[test]
fn two_shard_smoke() {
    let two_shards = vec![("sharded/2".to_string(), ExecutorConfig::sharded(2))];
    let g = generators::gnp_connected(24, 0.2, 31);
    assert_bcongest_matches("smoke/bfs", &Bfs::new(NodeId::new(0)), &g, 1, &two_shards);
    let wg = WeightedGraph::random_unique_weights(&g, 31);
    assert_mst_matches("smoke/mst", &wg, &two_shards);
}
