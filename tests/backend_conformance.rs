//! The delivery-backend conformance contract, enforced differentially over the
//! **entire workload registry**: for every `congest_workloads` entry, running
//! under any [`DeliveryBackend`](congest_apsp::engine::DeliveryBackend) —
//! `Sequential`, `Chunked` at 1/2/4/8 threads, `Sharded` at 1/2/4/8 shards
//! (with and without worker threads) — produces a
//! [`RunOutcome`](congest_apsp::workloads::RunOutcome) **identical** to the
//! sequential run. Equality is structural: the canonical output rendering plus
//! rounds, messages, broadcasts, and the full per-edge congestion vector, so
//! any ordering leak in a batch merge is a hard failure, not a statistical
//! blip.
//!
//! Registering a workload (see `congest_workloads::registry`) is what enrols
//! it here — this suite has no workload list of its own, so it can never drift
//! from `tests/parallel_determinism.rs` or the benches. The cost-model
//! `Auto` backend is part of the matrix (at 1/2/4/8 threads) and additionally
//! pinned explicitly: its outcome must match every manual backend and its
//! per-round decision log must name only concrete backends, identically
//! across message planes.

use congest_apsp::engine::{DeliveryBackend, ExecutorConfig, MessagePlane};
use congest_apsp::workloads::{configs::backend_matrix, find, registry};

#[test]
fn registry_identical_across_backends() {
    let configs = backend_matrix();
    for w in registry() {
        // Build once per workload; every configuration runs the same input.
        let input = w.build();
        let base = w
            .run_built(&input, &ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", w.name()));
        for (label, cfg) in &configs {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(base.output, run.output, "{}: outputs @ {label}", w.name());
            assert_eq!(base.metrics, run.metrics, "{}: metrics @ {label}", w.name());
        }
    }
}

/// The cost-model [`DeliveryBackend::Auto`] backend, pinned directly against
/// every manual backend on every registry entry: outputs **and** `Metrics`
/// byte-equal (the per-round decision log is excluded from `Metrics` equality
/// by construction, and compared explicitly here instead). The log must name
/// only concrete backends and be identical across message planes — volume
/// hints are plane-independent.
#[test]
fn auto_matches_every_manual_backend_and_logs_concrete_decisions() {
    let manual: Vec<(String, ExecutorConfig)> = vec![
        ("sequential".into(), ExecutorConfig::sequential()),
        ("chunked/4".into(), ExecutorConfig::with_threads(4)),
        ("sharded/4".into(), ExecutorConfig::sharded(4)),
    ];
    // Treeops-based entries (the MST family) bypass the round-loop runners
    // and log nothing; most of the registry must log.
    let mut logged = 0usize;
    for w in registry() {
        let input = w.build();
        let auto = w
            .run_built(&input, &ExecutorConfig::auto(4))
            .unwrap_or_else(|e| panic!("{}: auto run failed: {e}", w.name()));
        for (label, cfg) in &manual {
            let run = w
                .run_built(&input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            assert_eq!(auto.output, run.output, "{}: outputs @ {label}", w.name());
            assert_eq!(auto.metrics, run.metrics, "{}: metrics @ {label}", w.name());
            assert!(
                run.metrics.backend_decisions().is_empty(),
                "{}: manual backend {label} must not log decisions",
                w.name()
            );
        }
        let log = auto.metrics.backend_decisions();
        if !log.is_empty() {
            logged += 1;
        }
        for d in log {
            assert_ne!(
                d.backend,
                DeliveryBackend::Auto,
                "{}: decision log must name a concrete backend",
                w.name()
            );
        }
        let flat = w
            .run_built(
                &input,
                &ExecutorConfig::auto(4).with_plane(MessagePlane::Flat),
            )
            .unwrap_or_else(|e| panic!("{}: auto flat run failed: {e}", w.name()));
        assert_eq!(
            log,
            flat.metrics.backend_decisions(),
            "{}: decision log differs across message planes",
            w.name()
        );
    }
    assert!(
        logged > 0,
        "no registry entry logged auto decisions — runner wiring broken"
    );
}

/// The fast tripwire CI's clippy job runs by name: one BCONGEST and one MST
/// workload, sequential vs 2 shards. Red here means the sharded backend
/// regressed — no need to wait for the full matrix.
#[test]
fn two_shard_smoke() {
    for name in ["bfs/gnp", "mst/gnp"] {
        let w = find(name).expect("registered workload");
        let base = w
            .run(&ExecutorConfig::sequential())
            .expect("sequential run");
        let run = w.run(&ExecutorConfig::sharded(2)).expect("2-shard run");
        assert_eq!(base, run, "{name}: sequential vs 2 shards");
    }
}
