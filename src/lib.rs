//! # congest-apsp
//!
//! A from-scratch Rust reproduction of *"Message Optimality and Message-Time Trade-offs for
//! APSP and Beyond"* (Dufoulon, Pai, Pandurangan, Pemmaraju, Robinson — PODC 2025).
//!
//! The paper studies the **message complexity** of All-Pairs Shortest Paths (and related
//! problems) in the CONGEST model and proves two headline results:
//!
//! 1. **Theorem 1.1 / Theorem 2.1** — any BCONGEST algorithm with broadcast complexity `B`
//!    can be simulated in CONGEST with `Õ(B)` messages (at a `~n` factor cost in rounds),
//!    giving the first message-optimal (`Õ(n²)`-message) algorithms for weighted APSP,
//!    bipartite maximum matching, and neighborhood covers.
//! 2. **Theorem 1.2 / Theorems 3.9–3.10** — a smooth message-time trade-off for unweighted
//!    APSP: for every `ε ∈ [0,1]`, `Õ(n^{2-ε})` rounds and `Õ(n^{2+ε})` messages, built on
//!    ensembles of pruned Baswana–Sen cluster hierarchies and random-delay BFS scheduling.
//!
//! This facade crate re-exports the entire workspace. Start with [`apsp_core`] for the
//! paper's algorithms, [`engine`] / [`graph`] for the substrates, or [`serve`] to query
//! the computed outputs through a [`serve::DistanceOracle`].
//!
//! ## Quickstart
//!
//! ```
//! use congest_apsp::graph::{generators, WeightedGraph};
//! use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
//!
//! // A small weighted graph and the message-optimal APSP of Theorem 1.1.
//! let g = generators::gnp_connected(24, 0.2, 7);
//! let wg = WeightedGraph::random_weights(&g, 1..=8, 7);
//! let result = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
//! // Every node now knows its distance to every other node.
//! assert_eq!(result.distances.len(), 24);
//! println!("messages = {}", result.metrics.messages);
//! ```

pub use apsp_core;
pub use congest_algos as algos;
pub use congest_decomp as decomp;
pub use congest_engine as engine;
pub use congest_graph as graph;
pub use congest_sched as sched;
pub use congest_serve as serve;
pub use congest_workloads as workloads;

// The executor surface, importable without spelling out the engine path:
// `congest_apsp::ExecutorConfig::builder().threads(8).backend(..).plane(..)`.
pub use congest_engine::{DeliveryBackend, ExecutorConfig, ExecutorConfigBuilder, MessagePlane};
