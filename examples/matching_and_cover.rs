//! The "and Beyond" of the paper's title: Corollaries 2.8 and 2.9.
//!
//! Runs the message-optimal exact bipartite maximum matching (Ahmadi–Kuhn–Oshman
//! through Theorem 2.1) and a `(k, W)`-sparse neighborhood cover, verifying both.
//!
//! Run: `cargo run --release --example matching_and_cover`

use congest_apsp::apsp_core::cover::sparse_neighborhood_cover;
use congest_apsp::apsp_core::matching::{
    bipartite_maximum_matching, bipartite_maximum_matching_direct,
};
use congest_apsp::apsp_core::verify::check_maximum_matching;
use congest_apsp::graph::{generators, reference};

fn main() {
    let seed = 3;

    // ---- Corollary 2.8: exact bipartite maximum matching ----
    let g = generators::random_bipartite_connected(10, 12, 0.3, seed);
    println!("bipartite graph: {}+{} nodes, m = {}", 10, 12, g.m());
    let sim = bipartite_maximum_matching(&g, seed).expect("matching (simulated)");
    let direct = bipartite_maximum_matching_direct(&g, seed).expect("matching (direct)");
    check_maximum_matching(&g, &sim.pairs).expect("maximum matching");
    assert_eq!(sim.partner, direct.partner, "simulation is exact");
    println!(
        "maximum matching: |M| = {} (Hopcroft–Karp agrees: {})",
        sim.pairs.len(),
        reference::hopcroft_karp(&g).unwrap()
    );
    println!("matched pairs: {:?}", sim.pairs);
    println!(
        "cost: simulated {} msgs / {} rounds; direct {} msgs / {} rounds\n",
        sim.metrics.messages, sim.metrics.rounds, direct.metrics.messages, direct.metrics.rounds
    );

    // ---- Corollary 2.9: (k, W)-sparse neighborhood cover ----
    let g2 = generators::grid(6, 5);
    let (k, w) = (2, 2);
    println!("cover graph: 6×5 grid, (k, W) = ({k}, {w})");
    let cover = sparse_neighborhood_cover(&g2, k, w, Some(40), seed).expect("cover");
    let (depth, trees) = cover.validate(&g2).expect("cover properties");
    println!(
        "cover: {} trees per node, max depth {} — every node's {w}-ball lies inside some tree",
        trees, depth
    );
    println!(
        "cost: {} msgs / {} rounds ({} simulated broadcasts)",
        cover.metrics.messages, cover.metrics.rounds, cover.simulated_broadcasts
    );
}
