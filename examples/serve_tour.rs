//! Serving tour: from a CONGEST build to a query-serving distance oracle.
//!
//! Builds Theorem 1.1 weighted APSP once (under an executor assembled with
//! the fluent `ExecutorConfig::builder()`), wraps the result in a
//! `congest_serve::DistanceOracle`, exercises all three query paths — point
//! lookup, batched lookup, k-nearest-by-distance — and then drives the
//! oracle with the deterministic closed-loop load generator: a request-rate
//! ramp over four scenario mixes, every served answer differential-checked
//! against sequential Dijkstra, reporting p50/p95/p99 latency, achieved rps
//! and cache hit rate per step.
//!
//! Run: `cargo run --release --example serve_tour`

use congest_apsp::apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_apsp::graph::{generators, NodeId, WeightedGraph};
use congest_apsp::serve::loadgen::{run_scenario, ExactReference, QueryMix, RampConfig, Scenario};
use congest_apsp::serve::DistanceOracle;
use congest_apsp::{ExecutorConfig, MessagePlane};

fn main() {
    // 1. Build the source once, under a builder-assembled executor.
    let g = generators::gnp_connected(64, 0.12, 11);
    let wg = WeightedGraph::random_weights(&g, 1..=9, 11);
    let exec = ExecutorConfig::builder()
        .threads(0)
        .plane(MessagePlane::Flat)
        .build();
    let run = weighted_apsp(
        &wg,
        &WeightedApspConfig {
            seed: 11,
            exec,
            ..Default::default()
        },
    )
    .expect("weighted APSP build");
    println!(
        "built weighted APSP: n = {}, m = {} | {} messages, {} rounds\n",
        wg.n(),
        wg.m(),
        run.metrics.messages,
        run.metrics.rounds
    );

    // 2. The three query paths.
    let check = ExactReference::dijkstra(&wg);
    let mut oracle = DistanceOracle::builder(run).cache_capacity(256).build();
    let d = oracle.lookup(NodeId::new(0), NodeId::new(63));
    println!("lookup(v0, v63)        = {d:?}");
    let batch = oracle.lookup_batch(&[
        (NodeId::new(1), NodeId::new(2)),
        (NodeId::new(0), NodeId::new(63)), // cache hit
    ]);
    println!("lookup_batch(2 pairs)  = {batch:?}");
    let near = oracle.k_nearest(NodeId::new(0), 4);
    println!("k_nearest(v0, 4)       = {near:?}");
    println!("oracle counters        = {:?}\n", oracle.metrics());

    // 3. The closed-loop rps ramp, every answer checked as it is served.
    let ramp = RampConfig {
        initial_rps: 2_000,
        increment_rps: 6_000,
        target_rps: 20_000,
        step_duration_ms: 50,
    };
    let scenarios = [
        Scenario {
            name: "uniform-cold".into(),
            mix: QueryMix::Uniform,
            warm_cache: false,
        },
        Scenario {
            name: "hotkey-warm".into(),
            mix: QueryMix::HotKey {
                hot_nodes: 8,
                hot_permille: 900,
            },
            warm_cache: true,
        },
        Scenario {
            name: "knn-8".into(),
            mix: QueryMix::Knn { k: 8 },
            warm_cache: false,
        },
        Scenario {
            name: "batch-16".into(),
            mix: QueryMix::Batch { size: 16 },
            warm_cache: false,
        },
    ];
    println!(
        "{:<14} {:>10} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "target rps", "achieved rps", "p50 us", "p95 us", "p99 us", "hit rate"
    );
    for sc in &scenarios {
        let report = run_scenario(&mut oracle, sc, &ramp, 11, &check);
        for st in &report.steps {
            println!(
                "{:<14} {:>10} {:>12.1} {:>9.2} {:>9.2} {:>9.2} {:>9.3}",
                sc.name,
                st.target_rps,
                st.achieved_rps,
                st.p50_us,
                st.p95_us,
                st.p99_us,
                st.hit_rate()
            );
        }
    }
    println!("\nevery served answer matched the sequential reference");
}
