//! Quickstart: the paper's headline result on a small graph.
//!
//! Builds a dense weighted graph, solves exact weighted APSP two ways — the
//! round-frugal direct execution (Θ(mn) messages) and the message-optimal
//! Theorem 1.1 simulation (Õ(n²) messages) — verifies both against sequential
//! Dijkstra, and prints the cost comparison.
//!
//! Run: `cargo run --release --example quickstart`

use congest_apsp::apsp_core::verify::check_weighted_apsp;
use congest_apsp::apsp_core::weighted_apsp::{
    weighted_apsp, weighted_apsp_direct, WeightedApspConfig,
};
use congest_apsp::graph::{generators, WeightedGraph};

fn main() {
    let n = 32;
    let seed = 7;
    let g = generators::gnp_connected(n, 0.5, seed);
    let wg = WeightedGraph::random_weights(&g, 1..=9, seed);
    println!("graph: n = {}, m = {} (dense), weights 1..=9", g.n(), g.m());

    let sim = weighted_apsp(
        &wg,
        &WeightedApspConfig {
            seed,
            ..Default::default()
        },
    )
    .expect("simulation");
    let direct = weighted_apsp_direct(&wg, seed).expect("direct run");

    check_weighted_apsp(&wg, &sim.distances).expect("simulated distances exact");
    check_weighted_apsp(&wg, &direct.distances).expect("direct distances exact");
    assert_eq!(sim.distances, direct.distances);

    println!("\nboth executions verified exact against sequential Dijkstra\n");
    println!("                      messages      rounds");
    println!(
        "direct (BCONGEST)   {:>10}  {:>10}   <- round-frugal, Θ(mn) messages",
        direct.metrics.messages, direct.metrics.rounds
    );
    println!(
        "Theorem 1.1 (sim)   {:>10}  {:>10}   <- message-optimal, Õ(n²) messages",
        sim.metrics.messages, sim.metrics.rounds
    );
    println!(
        "\nmessage ratio direct/sim = {:.2} (grows with n: the paper's Θ(n³) vs Õ(n²) gap)",
        direct.metrics.messages as f64 / sim.metrics.messages as f64
    );
    println!(
        "simulated payload: {} broadcasts over {} simulated rounds",
        sim.simulated_broadcasts, sim.simulated_rounds
    );

    // A couple of distances, for flavour.
    println!(
        "\nsample distances from node 0: {:?}",
        &sim.distances[0][..8.min(n)]
    );
}
