//! The Theorem 1.2 message-time trade-off, swept over ε.
//!
//! For each ε ∈ {0, ¼, ½, ¾, 1} solves exact unweighted APSP on the same graph,
//! verifies against sequential BFS, and prints the realized (rounds, messages)
//! frontier together with which machinery served each point.
//!
//! Run: `cargo run --release --example tradeoff_sweep`

use congest_apsp::apsp_core::tradeoff::tradeoff_apsp;
use congest_apsp::apsp_core::verify::check_unweighted_apsp;
use congest_apsp::graph::generators;

fn main() {
    let n = 28;
    let seed = 11;
    let g = generators::gnp_connected(n, 0.3, seed);
    println!("graph: n = {}, m = {}\n", g.n(), g.m());
    println!("  ε     route                    rounds    messages");

    let mut prev: Option<(u64, u64)> = None;
    for eps in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let res = tradeoff_apsp(&g, eps, seed).expect("tradeoff APSP");
        check_unweighted_apsp(&g, &res.dist).expect("exact");
        println!(
            "  {:.2}  {:<24} {:>7}  {:>10}",
            eps,
            format!("{:?}", res.route),
            res.metrics.rounds,
            res.metrics.messages
        );
        prev = Some((res.metrics.rounds, res.metrics.messages));
    }
    let _ = prev;

    println!(
        "\nevery row solved the same exact APSP instance; moving down the table trades\n\
         messages for rounds (paper: Õ(n^(2-ε)) rounds, Õ(n^(2+ε)) messages).\n\
         At laptop-scale n the middle regime carries visible additive polylog overheads\n\
         (ensembles + per-batch shared randomness); the endpoints show the asymptotic gap."
    );
}
