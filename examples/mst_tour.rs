//! The "Beyond APSP" workload family in one tour: message-efficient distributed MST
//! (controlled-GHS merging) and its k-parameterized time–message trade-off.
//!
//! Runs the GHS MST on several graph families under a *hard* `Õ(m)` message budget,
//! verifies every edge set against the sequential Kruskal/Prim oracles, then sweeps
//! the trade-off parameter `k` on one graph to show the (rounds, messages) frontier.
//!
//! Run: `cargo run --release --example mst_tour`

use congest_apsp::algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_apsp::apsp_core::mst_tradeoff::mst_tradeoff;
use congest_apsp::apsp_core::verify::check_mst;
use congest_apsp::graph::{generators, WeightedGraph};

fn main() {
    let seed = 11;
    println!("GHS MST under a hard Õ(m) message budget, oracle-checked:\n");
    println!("  family               n     m    weight   messages    budget  rounds  phases");
    for (name, g) in [
        ("random G(n,p)", generators::gnp_connected(64, 0.15, seed)),
        ("grid 8x8", generators::grid(8, 8)),
        (
            "expander (4-reg)",
            generators::random_regularish(64, 4, seed),
        ),
        ("path", generators::path(64)),
        ("two-cluster bridge", generators::barbell(16, 16)),
    ] {
        let wg = WeightedGraph::random_unique_weights(&g, seed);
        let budget = message_bound(g.n(), g.m());
        let run = distributed_mst(
            &wg,
            &MstConfig {
                message_budget: Some(budget),
                ..Default::default()
            },
        )
        .expect("within budget");
        check_mst(&wg, &run.edges).expect("equals the sequential oracle");
        println!(
            "  {:<18} {:>3} {:>5} {:>9} {:>10} {:>9} {:>7} {:>7}",
            name,
            g.n(),
            g.m(),
            run.total_weight,
            run.metrics.messages,
            budget,
            run.metrics.rounds,
            run.phases
        );
    }

    let g = generators::gnp_connected(96, 0.15, seed);
    let wg = WeightedGraph::random_unique_weights(&g, seed);
    println!(
        "\ntrade-off sweep on G(n,p) with n = {}, m = {} (every row the same exact MST):\n",
        g.n(),
        g.m()
    );
    println!("    k   route                    rounds    messages");
    let sqrt_n = (g.n() as f64).sqrt().ceil() as usize;
    for k in [2, 4, sqrt_n, g.n() / 2, g.n()] {
        let res = mst_tradeoff(&wg, k, seed).expect("tradeoff MST");
        check_mst(&wg, &res.edges).expect("exact at every k");
        println!(
            "  {:>3}   {:<24} {:>6}  {:>10}",
            k,
            format!("{:?}", res.route),
            res.metrics.rounds,
            res.metrics.messages
        );
    }
    println!(
        "\nk is the controlled-growth threshold: fragments merge GHS-style until they\n\
         span k nodes, then a leader finishes the contracted fragment graph centrally.\n\
         k = n is the message-optimal end (Õ(m)); small k trades collection messages\n\
         for shallow fragment trees — fewer rounds on low-diameter graphs."
    );
}
