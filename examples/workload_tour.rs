//! Workload tour: walk the `congest-workloads` registry.
//!
//! Prints every registered workload — algorithm, graph family, input size,
//! declared cost envelope — runs each one sequentially, checks its
//! differential oracle, and shows the realized (rounds, messages, broadcasts)
//! against the envelope. This is the catalogue the conformance suites, the
//! determinism pins, and `--bench-suite` all iterate; registering a new
//! workload makes it appear here with no further wiring.
//!
//! Run: `cargo run --release --example workload_tour`

use congest_apsp::engine::ExecutorConfig;
use congest_apsp::workloads::registry;

fn main() {
    let reg = registry();
    println!("{} registered workloads ({} algorithms)\n", reg.len(), {
        let mut algos: Vec<&str> = reg.iter().map(|w| w.algorithm()).collect();
        algos.sort_unstable();
        algos.dedup();
        algos.len()
    });
    println!(
        "{:<34} {:>5} {:>6} | {:>7} {:>9} {:>7} | {:<18} oracle",
        "workload", "n", "m", "rounds", "messages", "bcasts", "envelope(msgs)"
    );
    for w in &reg {
        let input = w.build();
        let run = w
            .run(&ExecutorConfig::sequential())
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", w.name()));
        let envelope = w.envelope();
        let env_str = envelope
            .max_messages
            .map_or("—".to_string(), |b| format!("≤ {b}"));
        let oracle = match w.oracle() {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("VIOLATION: {e}"),
        };
        println!(
            "{:<34} {:>5} {:>6} | {:>7} {:>9} {:>7} | {:<18} {}",
            w.name(),
            input.graph.n(),
            input.graph.m(),
            run.metrics.rounds,
            run.metrics.messages,
            run.metrics.broadcasts,
            env_str,
            oracle
        );
        envelope
            .check(&run.metrics)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
    }
    println!("\nall oracles green, all metrics within their declared envelopes.");
}
