//! A tour of the decompositions, ending in the paper's Figure 1.
//!
//! Builds an LDC decomposition (Definition 2.3) of a small graph, prints its
//! quality parameters, builds a Baswana–Sen hierarchy with its pruning and spanner
//! by-product, and writes `figure1.dot` — the paper's Figure 1: clusters colored,
//! inter-cluster communication edges `F` bold, other inter-cluster edges dashed.
//!
//! Run: `cargo run --release --example decomposition_tour`
//! Render: `dot -Tpng figure1.dot -o figure1.png`

use congest_apsp::decomp::baswana_sen::validate_hierarchy;
use congest_apsp::decomp::ldc::{build_ldc, validate_ldc};
use congest_apsp::decomp::pruning::{max_proper_subtree, prune};
use congest_apsp::decomp::spanner::{measured_stretch, spanner_edges};
use congest_apsp::decomp::Hierarchy;
use congest_apsp::graph::dot::{to_dot, DotOptions, EdgeStyle};
use congest_apsp::graph::generators;

fn main() {
    let seed = 5;
    let g = generators::caveman(4, 6);
    println!(
        "graph: n = {}, m = {} (caveman: 4 cliques of 6)\n",
        g.n(),
        g.m()
    );

    // ---- LDC decomposition (Lemma 2.4) ----
    let ldc = build_ldc(&g, seed).expect("LDC");
    let lnn = (g.n() as f64).ln();
    println!("LDC decomposition (Definition 2.3):");
    println!("  clusters:        {}", ldc.clustering.len());
    println!(
        "  strong radius r: {} (bound O(log n); ln n = {:.1})",
        ldc.strong_radius(&g),
        lnn
    );
    println!("  max F-degree d:  {} (bound O(log n))", ldc.max_f_degree());
    validate_ldc(&g, &ldc, 7 * lnn.ceil() as u32, 8 * lnn.ceil() as usize)
        .expect("Definition 2.3 holds");
    println!("  validator:       both properties hold\n");

    // ---- Figure 1 ----
    let cluster_of: Vec<usize> = (0..g.n())
        .map(|v| ldc.clustering.cluster_of[v].index())
        .collect();
    let mut styles = vec![EdgeStyle::Plain; g.m()];
    for (e, u, v) in g.edges() {
        if ldc.clustering.cluster_of[u.index()] != ldc.clustering.cluster_of[v.index()] {
            styles[e.index()] = EdgeStyle::Dashed; // inter-cluster, not in F
        }
    }
    for f in ldc.all_f_edges() {
        styles[f.edge.index()] = EdgeStyle::Bold; // the sparse communication set F
    }
    let dot = to_dot(
        &g,
        &DotOptions {
            cluster_of: Some(cluster_of),
            edge_style: Some(styles),
            label: Some(
                "Figure 1: (r,d)-LDC decomposition — bold = F, dashed = other inter-cluster".into(),
            ),
        },
    );
    std::fs::write("figure1.dot", &dot).expect("write figure1.dot");
    println!("wrote figure1.dot (render with: dot -Tpng figure1.dot -o figure1.png)\n");

    // ---- Baswana–Sen hierarchy + pruning + spanner (§3.1) ----
    for eps in [0.5, 0.34] {
        let h = Hierarchy::build(&g, eps, seed);
        validate_hierarchy(&g, &h).expect("Theorem 3.3 properties");
        let p = prune(&g, &h);
        let threshold = (g.n() as f64).powf(1.0 - eps);
        println!("Baswana–Sen hierarchy, ε = {eps} (κ = {}):", h.kappa);
        for lvl in &h.levels {
            println!(
                "  level {}: {} clusters, {} drop-outs, {} F-edges",
                lvl.index,
                lvl.clusters.len(),
                lvl.l_nodes.len(),
                lvl.f_edges.len()
            );
        }
        println!(
            "  pruning: max proper subtree {} (bound n^(1-ε) = {:.1})",
            max_proper_subtree(&g, &p),
            threshold
        );
        println!(
            "  spanner: {} of {} edges, measured stretch {:.2} (bound 2κ-1 = {})\n",
            spanner_edges(&g, &h).len(),
            g.m(),
            measured_stretch(&g, &h, 8, seed),
            2 * h.kappa - 1
        );
    }
}
