//! Random start delays (Theorem 1.4) and the accounted implementation of shared
//! randomness.
//!
//! The paper implements shared randomness by having the leader generate
//! `Θ(n log n)` random bits and pipeline them down a BFS tree (`Õ(n)` rounds,
//! `Õ(n²)` messages, described just before Lemma 3.22). We model the same thing:
//! [`shared_randomness`] returns both the seed every node would hold and the exact
//! cost of the distribution schedule.

use congest_engine::{Forest, Metrics};
use congest_graph::{rng, Graph};
use rand::Rng;

/// Uniform random delays in `[0, range)` for `l` algorithms (Theorem 1.4's shared
/// random choices; every node derives the same vector from the shared seed).
pub fn random_delays(shared_seed: u64, l: usize, range: usize) -> Vec<usize> {
    let mut r = rng::seeded(rng::derive(shared_seed, 0xde1a_5002));
    (0..l).map(|_| r.random_range(0..range.max(1))).collect()
}

/// The product of distributing shared randomness over a BFS tree.
#[derive(Clone, Debug)]
pub struct SharedRandomness {
    /// The seed every node now holds (stands in for the `Θ(n log n)` shared bits).
    pub seed: u64,
    /// Exact cost of pipelining `words` words from the root to all nodes.
    pub metrics: Metrics,
}

/// Distributes `words` words of shared randomness from the root of `tree` to every
/// node: each tree edge forwards the whole string, pipelined. Cost: `words + depth`
/// rounds and `words · (#tree edges)` messages — exactly the paper's `Õ(n)` rounds /
/// `Õ(n²)` messages when `words = Θ(n)` (the tree has `n−1` edges).
pub fn shared_randomness(
    g: &Graph,
    tree: &Forest,
    words: usize,
    master_seed: u64,
) -> SharedRandomness {
    let mut metrics = Metrics::new(g.m());
    metrics.rounds = words as u64 + u64::from(tree.depth());
    for &e in tree.tree_edges() {
        metrics.add_messages(e, words as u64);
    }
    SharedRandomness {
        seed: rng::derive(master_seed, 0x5a5a_0001),
        metrics,
    }
}

/// The paper's choice of `Θ(n log n)` shared bits, in words (`Θ(n)`).
pub fn paper_shared_words(n: usize) -> usize {
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algos::leader::setup_network;
    use congest_graph::generators;

    #[test]
    fn delays_deterministic_and_in_range() {
        let a = random_delays(7, 20, 10);
        let b = random_delays(7, 20, 10);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d < 10));
        let c = random_delays(8, 20, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_range_is_safe() {
        let d = random_delays(1, 5, 0);
        assert!(d.iter().all(|&x| x == 0));
    }

    #[test]
    fn shared_randomness_cost_shape() {
        let g = generators::gnp_connected(30, 0.15, 3);
        let setup = setup_network(&g, 3).unwrap();
        let sr = shared_randomness(&g, &setup.tree, paper_shared_words(g.n()), 3);
        // words + depth rounds; words per tree edge.
        assert_eq!(
            sr.metrics.rounds,
            g.n() as u64 + u64::from(setup.tree.depth())
        );
        assert_eq!(sr.metrics.messages, (g.n() as u64) * (g.n() as u64 - 1));
    }

    #[test]
    fn same_master_seed_same_shared_seed() {
        let g = generators::path(5);
        let setup = setup_network(&g, 1).unwrap();
        let a = shared_randomness(&g, &setup.tree, 5, 42);
        let b = shared_randomness(&g, &setup.tree, 5, 42);
        assert_eq!(a.seed, b.seed);
    }
}
