//! # congest-sched
//!
//! Scheduling machinery for the CONGEST APSP reproduction:
//!
//! * [`delays`] — random start delays (Theorem 1.4) and the accounted distribution
//!   of shared randomness over a BFS tree (the implementation described before
//!   Lemma 3.22);
//! * [`compose`] — the congestion+dilation framework (Theorem 1.3): a real greedy
//!   co-scheduler for recorded traces, plus Theorem-1.3 accounting over measured
//!   executions.

pub mod compose;
pub mod delays;

pub use compose::{
    compose_measured, compose_traces, compose_traces_faulty, record_bcongest_trace, Composed, Trace,
};
pub use delays::{paper_shared_words, random_delays, shared_randomness, SharedRandomness};
