//! The congestion+dilation framework (Theorem 1.3, Ghaffari \[17\] / LMR \[26\]).
//!
//! Two composition modes:
//!
//! * [`compose_traces`] — a **real scheduler**: takes recorded per-round edge-usage
//!   traces of `ℓ` algorithms and produces a feasible joint schedule under per-edge
//!   capacity one message per direction per round, using random priorities and greedy
//!   admission (intra-algorithm round order is preserved, which is what makes
//!   replaying a recorded trace sound). The realized length is measured against
//!   `O(congestion + dilation · log n)`.
//! * [`compose_measured`] — Theorem 1.3 **accounting**: combines already-measured
//!   executions (congestion vectors + dilations) into the round/message totals the
//!   theorem guarantees for their joint schedule. Used where co-executing full
//!   simulations would be redundant — the schedule length is exactly the theorem's
//!   bound applied to realized (not worst-case) quantities. See DESIGN.md §2.

use congest_engine::faults::FaultState;
use congest_engine::{FaultPlan, FaultResponse, Metrics};
use congest_graph::{rng, EdgeId, Graph};
use rand::seq::SliceRandom;

/// A recorded execution trace: for each round, the directed edges used
/// (`(edge, from_canonical_u)` — `true` means the message went u→v for the canonical
/// endpoint order).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-round directed edge usage.
    pub rounds: Vec<Vec<(EdgeId, bool)>>,
}

impl Trace {
    /// The trace's dilation (its isolated running time).
    pub fn dilation(&self) -> usize {
        self.rounds.len()
    }

    /// Total messages in the trace.
    pub fn messages(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Outcome of a joint schedule.
#[derive(Clone, Debug)]
pub struct Composed {
    /// Realized joint schedule length (rounds).
    pub rounds: u64,
    /// `congestion` = max over directed edges of total demanded messages.
    pub congestion: u64,
    /// `dilation` = max isolated running time.
    pub dilation: usize,
    /// Messages and per-edge congestion of the joint run.
    pub metrics: Metrics,
}

/// Schedules all `traces` together under per-edge capacity 1 (per direction, per
/// round): each global round admits, in seeded-random priority order, every
/// algorithm whose next recorded round fits in the remaining capacity. Preserves
/// each algorithm's internal round order.
pub fn compose_traces(g: &Graph, traces: &[Trace], seed: u64) -> Composed {
    compose_traces_faulty(g, traces, &FaultPlan::new(FaultResponse::Restart), seed)
}

/// [`compose_traces`] under a fault schedule: a directed edge can only be
/// granted in a global round where the plan's topology mask allows it (edge up,
/// both endpoints live — [`congest_engine::SurvivorMask::allows`]). Events
/// apply at the start of each global round, exactly like in the runners.
///
/// An algorithm whose next recorded round needs an unusable edge is held back
/// whole (preserving its internal round order). If no algorithm can advance
/// and a future fault round could change the mask, the schedule idles forward
/// to it; if the mask is final, the remaining recorded messages can never be
/// delivered and are charged to [`Metrics::dropped_messages`] instead.
///
/// With an empty plan this is exactly [`compose_traces`] (which delegates
/// here), including the seeded priority order.
///
/// # Panics
///
/// Panics if the plan fails [`FaultPlan::validate`].
pub fn compose_traces_faulty(g: &Graph, traces: &[Trace], plan: &FaultPlan, seed: u64) -> Composed {
    if let Err(e) = plan.validate(g) {
        panic!("invalid FaultPlan: {e}");
    }
    let mut metrics = Metrics::new(g.m());
    let dilation = traces.iter().map(Trace::dilation).max().unwrap_or(0);

    // Static congestion: total demand per directed edge (fault-blind — demand
    // exists whether or not the network can serve it).
    let mut demand = vec![0u64; 2 * g.m()];
    for t in traces {
        for round in &t.rounds {
            for &(e, dir) in round {
                demand[2 * e.index() + usize::from(dir)] += 1;
            }
        }
    }
    let congestion = demand.iter().copied().max().unwrap_or(0);

    let mut fault = FaultState::new(plan, g);
    let mut r = rng::seeded(rng::derive(seed, 0xc0de_0003));
    let mut next_round: Vec<usize> = vec![0; traces.len()];
    let mut live: Vec<usize> = (0..traces.len())
        .filter(|&j| !traces[j].rounds.is_empty())
        .collect();
    let mut used = vec![0u8; 2 * g.m()];
    let mut rounds: u64 = 0;
    let mut dropped: u64 = 0;

    while !live.is_empty() {
        fault.apply_due(rounds as usize);
        rounds += 1;
        used.fill(0);
        live.shuffle(&mut r);
        let mut advanced = false;
        let mut still_live = Vec::with_capacity(live.len());
        for &j in &live {
            let wanted = &traces[j].rounds[next_round[j]];
            let fits = wanted.iter().all(|&(e, dir)| {
                used[2 * e.index() + usize::from(dir)] == 0 && fault.mask.allows(g, e)
            });
            if fits {
                for &(e, dir) in wanted {
                    used[2 * e.index() + usize::from(dir)] = 1;
                    metrics.add_messages(e, 1);
                }
                next_round[j] += 1;
                advanced = true;
            }
            if next_round[j] < traces[j].rounds.len() {
                still_live.push(j);
            }
        }
        live = still_live;
        if !advanced && !live.is_empty() {
            match fault.next_fault_round() {
                // Stalled on unusable edges: idle forward to the round where
                // the mask next changes. (`apply_due` has consumed everything
                // at or before the current round, so this strictly advances.)
                Some(nf) => rounds = rounds.max(nf as u64),
                // The mask is final and still blocks every remaining round:
                // those messages are undeliverable — charge them as dropped.
                None => {
                    for &j in &live {
                        for round in &traces[j].rounds[next_round[j]..] {
                            dropped += round.len() as u64;
                        }
                    }
                    live.clear();
                }
            }
        }
    }

    metrics.rounds = rounds;
    metrics.dropped_messages = dropped;
    Composed {
        rounds,
        congestion,
        dilation,
        metrics,
    }
}

/// Theorem 1.3 accounting over already-measured executions: the joint schedule costs
/// `congestion + dilation·⌈log₂ n⌉` rounds (the theorem's bound applied to realized
/// congestion/dilation), total messages add, per-edge congestion adds.
pub fn compose_measured(g: &Graph, parts: &[Metrics]) -> Composed {
    let n = g.n();
    let mut metrics = Metrics::new(g.m());
    let mut dilation = 0u64;
    for p in parts {
        metrics.merge_parallel(p);
        dilation = dilation.max(p.rounds);
    }
    let congestion = metrics.max_congestion();
    let log = u64::from(usize::BITS - n.max(2).leading_zeros());
    metrics.rounds = congestion + dilation * log;
    Composed {
        rounds: metrics.rounds,
        congestion,
        dilation: dilation as usize,
        metrics,
    }
}

/// Records the trace of a BCONGEST execution (each broadcast uses all incident
/// edges in its round). Returns the run outputs together with the trace.
///
/// # Errors
///
/// Propagates engine errors from the run.
pub fn record_bcongest_trace<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &congest_engine::RunOptions,
) -> Result<(congest_engine::BcongestRun<A::Output>, Trace), congest_engine::EngineError>
where
    A: congest_engine::BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    use std::cell::RefCell;
    let cells: RefCell<Vec<Vec<(EdgeId, bool)>>> = RefCell::new(Vec::new());
    let run =
        congest_engine::run_bcongest_observed(algo, g, weights, opts, |node, round, msgs| {
            let mut rounds = cells.borrow_mut();
            while rounds.len() <= round {
                rounds.push(Vec::new());
            }
            for (from, _) in msgs {
                let e = g.edge_between(*from, node).expect("messages follow edges");
                let (u, _) = g.endpoints(e);
                rounds[round].push((e, u == *from));
            }
        })?;
    let mut rounds = cells.into_inner();
    // Drop trailing empty rounds (idle-skipped gaps stay as explicit empty rounds,
    // preserving intra-algorithm timing).
    while rounds.last().is_some_and(Vec::is_empty) {
        rounds.pop();
    }
    Ok((run, Trace { rounds }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algos::bfs::Bfs;
    use congest_engine::RunOptions;
    use congest_graph::{generators, NodeId};

    fn single_edge_trace(e: EdgeId, rounds: usize) -> Trace {
        Trace {
            rounds: (0..rounds).map(|_| vec![(e, true)]).collect(),
        }
    }

    #[test]
    fn disjoint_traces_run_concurrently() {
        let g = generators::path(3);
        let t0 = single_edge_trace(EdgeId::new(0), 4);
        let t1 = single_edge_trace(EdgeId::new(1), 4);
        let c = compose_traces(&g, &[t0, t1], 1);
        assert_eq!(c.rounds, 4);
        assert_eq!(c.congestion, 4);
    }

    #[test]
    fn conflicting_traces_serialize() {
        let g = generators::path(2);
        let t = single_edge_trace(EdgeId::new(0), 3);
        let c = compose_traces(&g, &[t.clone(), t.clone(), t], 2);
        // 3 algorithms × 3 rounds over one directed edge: exactly 9 rounds.
        assert_eq!(c.rounds, 9);
        assert_eq!(c.congestion, 9);
        assert_eq!(c.metrics.messages, 9);
    }

    #[test]
    fn schedule_within_congestion_plus_dilation_log() {
        let g = generators::gnp_connected(25, 0.15, 5);
        // Record 6 BFS traces and co-schedule them.
        let traces: Vec<Trace> = (0..6)
            .map(|i| {
                let algo = Bfs::new(NodeId::new(i * 4));
                record_bcongest_trace(&algo, &g, None, &RunOptions::default())
                    .unwrap()
                    .1
            })
            .collect();
        let c = compose_traces(&g, &traces, 9);
        let log = u64::from(usize::BITS - g.n().leading_zeros());
        assert!(
            c.rounds <= c.congestion + (c.dilation as u64) * log,
            "rounds {} vs bound {}",
            c.rounds,
            c.congestion + (c.dilation as u64) * log
        );
        // Message totals are preserved by scheduling.
        let total: usize = traces.iter().map(Trace::messages).sum();
        assert_eq!(c.metrics.messages, total as u64);
    }

    #[test]
    fn compose_measured_shape() {
        let g = generators::path(5);
        let mut a = Metrics::new(g.m());
        a.rounds = 10;
        a.add_messages(EdgeId::new(0), 7);
        let mut b = Metrics::new(g.m());
        b.rounds = 4;
        b.add_messages(EdgeId::new(0), 5);
        let c = compose_measured(&g, &[a, b]);
        assert_eq!(c.congestion, 12);
        assert_eq!(c.dilation, 10);
        assert_eq!(c.metrics.messages, 12);
        let log = u64::from(usize::BITS - 5usize.leading_zeros());
        assert_eq!(c.rounds, 12 + 10 * log);
    }

    #[test]
    fn recorded_trace_matches_run_messages() {
        let g = generators::gnp_connected(20, 0.2, 3);
        let (run, trace) =
            record_bcongest_trace(&Bfs::new(NodeId::new(0)), &g, None, &RunOptions::default())
                .unwrap();
        assert_eq!(run.metrics.messages as usize, trace.messages());
        assert!(trace.dilation() as u64 <= run.metrics.rounds);
    }

    #[test]
    fn empty_traces_cost_nothing() {
        let g = generators::path(2);
        let c = compose_traces(&g, &[Trace::default()], 0);
        assert_eq!(c.rounds, 0);
        assert_eq!(c.metrics.messages, 0);
    }

    #[test]
    fn faulty_compose_with_empty_plan_matches_plain() {
        let g = generators::gnp_connected(25, 0.15, 5);
        let traces: Vec<Trace> = (0..5)
            .map(|i| {
                let algo = Bfs::new(NodeId::new(i * 3));
                record_bcongest_trace(&algo, &g, None, &RunOptions::default())
                    .unwrap()
                    .1
            })
            .collect();
        let plain = compose_traces(&g, &traces, 13);
        let faulty =
            compose_traces_faulty(&g, &traces, &FaultPlan::new(FaultResponse::SelfHeal), 13);
        assert_eq!(plain.rounds, faulty.rounds);
        assert_eq!(plain.congestion, faulty.congestion);
        assert_eq!(plain.dilation, faulty.dilation);
        assert_eq!(plain.metrics, faulty.metrics);
        assert_eq!(faulty.metrics.dropped_messages, 0);
    }

    #[test]
    fn downed_edge_delays_admission_until_recovery() {
        use congest_engine::FaultEvent;
        let g = generators::path(2);
        let t = single_edge_trace(EdgeId::new(0), 2);
        let plan = FaultPlan::new(FaultResponse::SelfHeal)
            .at(0, FaultEvent::EdgeDown(EdgeId::new(0)))
            .at(3, FaultEvent::EdgeUp(EdgeId::new(0)));
        let c = compose_traces_faulty(&g, &[t], &plan, 2);
        // Blocked at round 0, idles to the recovery round 3, then two rounds.
        assert_eq!(c.rounds, 5);
        assert_eq!(c.metrics.messages, 2);
        assert_eq!(c.metrics.dropped_messages, 0);
    }

    #[test]
    fn permanently_downed_edge_drops_remaining_demand() {
        use congest_engine::FaultEvent;
        let g = generators::path(3);
        let blocked = single_edge_trace(EdgeId::new(0), 2);
        let open = single_edge_trace(EdgeId::new(1), 3);
        let plan =
            FaultPlan::new(FaultResponse::SelfHeal).at(0, FaultEvent::EdgeDown(EdgeId::new(0)));
        let c = compose_traces_faulty(&g, &[blocked, open], &plan, 4);
        assert_eq!(c.metrics.messages, 3, "only the open edge delivers");
        assert_eq!(c.metrics.dropped_messages, 2, "blocked rounds are dropped");
        assert_eq!(c.rounds, 4, "three delivering rounds + the stall round");
        assert_eq!(c.congestion, 3, "demand is fault-blind");
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn faulty_compose_rejects_invalid_plans() {
        use congest_engine::FaultEvent;
        let g = generators::path(2);
        let plan =
            FaultPlan::new(FaultResponse::SelfHeal).at(0, FaultEvent::EdgeUp(EdgeId::new(0)));
        compose_traces_faulty(&g, &[], &plan, 0);
    }

    #[test]
    fn recorded_traces_identical_under_sharded_delivery() {
        // Trace recording observes inboxes; the Theorem 1.3 accounting built
        // on those traces must therefore be invariant under the delivery
        // backend, exactly like run outputs and metrics.
        let g = generators::gnp_connected(22, 0.18, 7);
        let algo = Bfs::new(NodeId::new(0));
        let (base_run, base_trace) = record_bcongest_trace(&algo, &g, None, &RunOptions::default())
            .expect("sequential trace");
        for shards in [1usize, 2, 4, 8] {
            let opts = RunOptions {
                exec: congest_engine::ExecutorConfig::sharded(shards),
                ..Default::default()
            };
            let (run, trace) =
                record_bcongest_trace(&algo, &g, None, &opts).expect("sharded trace");
            assert_eq!(base_run.outputs, run.outputs, "outputs @ {shards} shards");
            assert_eq!(base_run.metrics, run.metrics, "metrics @ {shards} shards");
            assert_eq!(
                base_trace.rounds, trace.rounds,
                "trace rounds @ {shards} shards"
            );
        }
    }
}
