//! Parameterized workload constructors.
//!
//! [`crate::registry`] instantiates these at the catalogue's canonical sizes;
//! the benches instantiate them at their own sizes (`congest_bench`'s shard
//! sweep runs a 4096-node deep path, for example). Either way the runner,
//! oracle and envelope come from here — workload setup has exactly one
//! definition per algorithm.

use crate::catalogue::{bcongest_entry, check_bfs_shape, composite_entry, congest_entry};
use crate::{BuiltInput, MetricsEnvelope, Workload};
use apsp_core::distance::Distance;
use apsp_core::landmarks::landmark_distances_with;
use apsp_core::mst_tradeoff::mst_tradeoff_with;
use apsp_core::verify::{check_mst, check_weighted_apsp};
use apsp_core::weighted_apsp::{weighted_apsp as run_weighted_apsp, WeightedApspConfig};
use congest_algos::bfs::Bfs;
use congest_algos::bfs_collection::{dists_of_bfs, BfsCollection};
use congest_algos::gossip::{expected_gossip, GossipOnce};
use congest_algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_graph::{generators, reference, rng, NodeId, WeightedGraph};
use congest_serve::loadgen::{AnswerCheck, ExactReference};
use congest_serve::DistanceOracle;

/// Single-source BFS from node 0. Every node broadcasts at most once, so the
/// envelope is `messages ≤ Σ deg = 2m`, `rounds ≤ n + 2`.
pub fn bfs(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    seed: u64,
) -> Box<dyn Workload> {
    bcongest_entry(
        "bfs",
        family,
        seed,
        build,
        |_| Bfs::new(NodeId::new(0)),
        |input, outputs| {
            check_bfs_shape(
                &input.graph,
                NodeId::new(0),
                |v| outputs[v].dist,
                |v| outputs[v].parent,
            )
        },
        |input| MetricsEnvelope::bounds(2 * input.graph.m() as u64, input.graph.n() as u64 + 2),
    )
}

/// All-sources BFS collection under random per-instance delays (Theorem 1.4).
/// Each `(node, instance)` pair broadcasts one word when first reached
/// (`Σ deg · n = 2mn`), plus a small allowance for delay-induced
/// re-broadcasts (a staggered wave can improve an already-announced
/// distance; realized totals stay within 2% of `2mn` across the families):
/// the declared envelope is `messages ≤ 4mn`.
pub fn bfs_collection(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    seed: u64,
) -> Box<dyn Workload> {
    bcongest_entry(
        "bfs-collection",
        family,
        seed,
        build,
        move |input| BfsCollection::new(input.graph.nodes().collect()).with_random_delays(seed),
        |input, outputs| {
            for (j, src) in input.graph.nodes().enumerate() {
                let got = dists_of_bfs(outputs, j);
                let want = reference::bfs_distances(&input.graph, src);
                if got != want {
                    return Err(format!("BFS {j} (source {src:?}) diverges from reference"));
                }
            }
            Ok(())
        },
        |input| MetricsEnvelope::messages(4 * input.graph.m() as u64 * input.graph.n() as u64),
    )
}

/// One-shot gossip — the point-to-point delivery-order probe, with its
/// closed-form local oracle. Exactly one message per edge direction, in
/// exactly 2 rounds (send + the empty settling round).
pub fn gossip(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    seed: u64,
) -> Box<dyn Workload> {
    congest_entry(
        "gossip",
        family,
        seed,
        build,
        |_| GossipOnce,
        |input, outputs| {
            let want = expected_gossip(&input.graph);
            (outputs == &want[..])
                .then_some(())
                .ok_or_else(|| "checksums diverge from the local oracle".to_string())
        },
        |input| MetricsEnvelope::bounds(2 * input.graph.m() as u64, 2),
    )
}

/// Message-optimal GHS MST with the closed-form `Õ(m)` budget installed as a
/// **hard** [`MstConfig::message_budget`] — an overdraft fails the run, it
/// does not merely miss the envelope. Expects a weighted input.
pub fn mst(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "mst",
        family,
        seed,
        build,
        |input, cfg| {
            let wg = input.weighted_graph();
            let run = distributed_mst(
                &wg,
                &MstConfig {
                    exec: cfg.clone(),
                    message_budget: Some(message_bound(wg.n(), wg.m())),
                    ..Default::default()
                },
            )?;
            Ok((
                (
                    run.edges,
                    run.total_weight,
                    run.fragment,
                    run.phases,
                    run.complete,
                ),
                run.metrics,
            ))
        },
        |input, value| check_mst(&input.weighted_graph(), &value.0),
        // Every GHS charge is one word at the default 8 bytes/word (candidate
        // announcements, convergecast/broadcast hops, connect edges).
        |input| {
            MetricsEnvelope::messages(message_bound(input.graph.n(), input.graph.m()))
                .with_message_bytes(8)
        },
    )
}

/// The `k`-parameterized MST time–message trade-off. `k` is clamped to `n`
/// (`usize::MAX` selects the pure-GHS message-optimal route); the `Õ(m)`
/// envelope is declared only on that route — the central finish trades
/// messages for rounds by design.
pub fn mst_tradeoff(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    k: usize,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "mst-tradeoff",
        family,
        seed,
        build,
        move |input, cfg| {
            let wg = input.weighted_graph();
            let k_eff = k.min(wg.n().max(1));
            let run = mst_tradeoff_with(&wg, k_eff, seed, cfg)?;
            Ok(((run.edges, run.total_weight, run.route, run.k), run.metrics))
        },
        |input, value| check_mst(&input.weighted_graph(), &value.0),
        // GHS hops are one word (8 bytes); the central route's leader-collected
        // finish upcasts multi-word summaries, so the mix is bounded, not exact.
        move |input| {
            if k >= input.graph.n().max(1) {
                MetricsEnvelope::messages(message_bound(input.graph.n(), input.graph.m()))
                    .with_message_bytes(8)
            } else {
                MetricsEnvelope::unbounded().with_message_bytes(16)
            }
        },
    )
}

/// Message-optimal exact weighted APSP through the Theorem 2.1 simulation.
/// Expects a weighted input.
pub fn weighted_apsp(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "weighted-apsp",
        family,
        seed,
        build,
        move |input, cfg| {
            let wg = input.weighted_graph();
            let run = run_weighted_apsp(
                &wg,
                &WeightedApspConfig {
                    seed,
                    exec: cfg.clone(),
                    ..Default::default()
                },
            )?;
            Ok((
                (
                    run.distances,
                    run.simulated_broadcasts,
                    run.simulated_rounds,
                ),
                run.metrics,
            ))
        },
        |input, value| check_weighted_apsp(&input.weighted_graph(), &value.0),
        // The Theorem 2.1 simulation mixes 4-byte transport words with
        // multi-word upcast/downcast charges; 16 bytes/message bounds the mix.
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    )
}

// --- serving-layer entries (congest-serve) -----------------------------------

/// Deterministic uniform point-query stream for the serve entries:
/// `queries` `(s, t)` pairs drawn from `seed`, independent of the executor.
fn serve_query_stream(n: usize, queries: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    use rand::Rng;
    let mut r = rng::seeded(rng::derive(seed, 0x5e7e_0001));
    (0..queries)
        .map(|_| {
            (
                NodeId::new(r.random_range(0..n)),
                NodeId::new(r.random_range(0..n)),
            )
        })
        .collect()
}

/// Point + batched lookups against a [`DistanceOracle`] over Theorem 1.1
/// weighted APSP. The workload's output is the served answers *plus* the
/// oracle's deterministic [`congest_serve::ServeMetrics`], so the conformance
/// suites pin the cache's hit/miss accounting byte-for-byte alongside the
/// answers; the oracle checker replays every answer against the sequential
/// all-pairs Dijkstra reference. Expects a weighted input.
pub fn serve_apsp(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    queries: usize,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "serve-apsp",
        family,
        seed,
        build,
        move |input, cfg| {
            let wg = input.weighted_graph();
            let run = run_weighted_apsp(
                &wg,
                &WeightedApspConfig {
                    seed,
                    exec: cfg.clone(),
                    ..Default::default()
                },
            )?;
            let metrics = run.metrics.clone();
            let mut oracle = DistanceOracle::builder(run).cache_capacity(32).build();
            let stream = serve_query_stream(wg.n(), queries, seed);
            let (head, tail) = stream.split_at(stream.len() / 2);
            let mut answers: Vec<(NodeId, NodeId, Distance)> = head
                .iter()
                .map(|&(s, t)| (s, t, oracle.lookup(s, t)))
                .collect();
            // The second half goes through the batched path — same cache, same
            // counters, so conformance covers both entry points.
            answers.extend(
                tail.iter()
                    .zip(oracle.lookup_batch(tail))
                    .map(|(&(s, t), d)| (s, t, d)),
            );
            Ok(((answers, oracle.metrics().clone()), metrics))
        },
        |input, value| {
            let check = ExactReference::dijkstra(&input.weighted_graph());
            for &(s, t, d) in &value.0 {
                check.check_point(s, t, d)?;
            }
            Ok(())
        },
        // The oracle only reads the APSP result; the envelope is the
        // simulation's own (multi-word upcast/downcast mix, 16-byte bound).
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    )
}

/// Point lookups against an oracle over the §3.3 landmark sketch — the
/// **estimate**-typed serving path. Answers must be admissible upper bounds
/// on the true distance (and `Unknown` only where the sketch has no covering
/// landmark), checked against sequential all-pairs BFS.
pub fn serve_landmarks(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    p: f64,
    queries: usize,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "serve-landmarks",
        family,
        seed,
        build,
        move |input, cfg| {
            let run = landmark_distances_with(&input.graph, p, seed, cfg)?;
            let metrics = run.metrics.clone();
            let mut oracle = DistanceOracle::builder(run).cache_capacity(32).build();
            let answers: Vec<(NodeId, NodeId, Distance)> =
                serve_query_stream(input.graph.n(), queries, seed)
                    .into_iter()
                    .map(|(s, t)| (s, t, oracle.lookup(s, t)))
                    .collect();
            Ok(((answers, oracle.metrics().clone()), metrics))
        },
        |input, value| {
            let want = reference::all_pairs_bfs(&input.graph);
            for &(s, t, d) in &value.0 {
                match (d, want[s.index()][t.index()]) {
                    (Distance::Exact(_), _) => {
                        return Err(format!(
                            "landmark oracle served an Exact answer for ({s:?},{t:?})"
                        ))
                    }
                    (Distance::Estimate(e), Some(true_d)) if e < u64::from(true_d) => {
                        return Err(format!(
                            "estimate {e} for ({s:?},{t:?}) undercuts true distance {true_d}"
                        ))
                    }
                    (Distance::Estimate(e), None) => {
                        return Err(format!("estimate {e} for unreachable pair ({s:?},{t:?})"))
                    }
                    _ => {}
                }
            }
            Ok(())
        },
        // The sketch is built from engine BFS runs (4-byte words) plus tree
        // upcast/broadcast charges; 16 bytes/message bounds the mix.
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    )
}

/// k-nearest-by-distance queries against the APSP oracle — the ordered query
/// path, checked against the reference's `(distance, node id)` total order.
/// Expects a weighted input.
pub fn serve_knn(
    family: String,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    k: usize,
    sources: usize,
    seed: u64,
) -> Box<dyn Workload> {
    composite_entry(
        "serve-knn",
        family,
        seed,
        build,
        move |input, cfg| {
            let wg = input.weighted_graph();
            let run = run_weighted_apsp(
                &wg,
                &WeightedApspConfig {
                    seed,
                    exec: cfg.clone(),
                    ..Default::default()
                },
            )?;
            let metrics = run.metrics.clone();
            let mut oracle = DistanceOracle::builder(run).build();
            use rand::Rng;
            let mut r = rng::seeded(rng::derive(seed, 0x5e7e_0002));
            let answers: Vec<(NodeId, Vec<(NodeId, Distance)>)> = (0..sources)
                .map(|_| {
                    let s = NodeId::new(r.random_range(0..wg.n()));
                    (s, oracle.k_nearest(s, k))
                })
                .collect();
            Ok(((answers, oracle.metrics().clone()), metrics))
        },
        move |input, value| {
            let check = ExactReference::dijkstra(&input.weighted_graph());
            for (s, near) in &value.0 {
                check.check_knn(*s, k, near)?;
            }
            Ok(())
        },
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    )
}

// --- bench-sized conveniences -------------------------------------------------

/// [`weighted_apsp`] on a `G(n, p)` graph with weights in `1..=9`.
pub fn weighted_apsp_gnp(n: usize, p: f64, seed: u64) -> Box<dyn Workload> {
    weighted_apsp(
        format!("gnp-{n}"),
        move || {
            let g = generators::gnp_connected(n, p, seed);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, seed))
        },
        seed,
    )
}

/// [`mst`] on a `G(n, p)` graph with unique permutation weights.
pub fn mst_gnp(n: usize, p: f64, seed: u64) -> Box<dyn Workload> {
    mst(
        format!("gnp-{n}"),
        move || {
            let g = generators::gnp_connected(n, p, seed);
            BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, seed))
        },
        seed,
    )
}

/// [`mst`] on an `n`-node path — fragment forests thousands of levels deep,
/// where the sharded level-bucketed treeops schedule differs most from the
/// depth-sorted sequential one.
pub fn mst_deep_path(n: usize, seed: u64) -> Box<dyn Workload> {
    mst(
        format!("path-{n}"),
        move || {
            let g = generators::path(n);
            BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, seed))
        },
        seed,
    )
}

/// [`mst_tradeoff`] on a `G(n, p)` graph with unique permutation weights.
pub fn mst_tradeoff_gnp(n: usize, p: f64, k: usize, seed: u64) -> Box<dyn Workload> {
    mst_tradeoff(
        format!("gnp-{n}"),
        move || {
            let g = generators::gnp_connected(n, p, seed);
            BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, seed))
        },
        k,
        seed,
    )
}

/// [`bfs_collection`] on a `G(n, p)` graph — the engine bench's sized variant
/// of the registry's canonical per-family entries.
pub fn bfs_collection_gnp(n: usize, p: f64, seed: u64) -> Box<dyn Workload> {
    bfs_collection(
        format!("gnp-{n}"),
        move || BuiltInput::unweighted(generators::gnp_connected(n, p, seed)),
        seed,
    )
}

// --- scale-bench conveniences (sparse_connected: O(n + extra) build, low
// --- diameter — the only family that reaches 10⁶ nodes) ----------------------

/// [`bfs`] on a [`generators::sparse_connected`] graph — the scale bench's
/// million-node single-source BFS.
pub fn bfs_sparse(n: usize, extra_edges: usize, seed: u64) -> Box<dyn Workload> {
    bfs(
        format!("sparse-{n}"),
        move || BuiltInput::unweighted(generators::sparse_connected(n, extra_edges, seed)),
        seed,
    )
}

/// [`gossip`] on a [`generators::sparse_connected`] graph — the scale bench's
/// million-node one-shot point-to-point probe.
pub fn gossip_sparse(n: usize, extra_edges: usize, seed: u64) -> Box<dyn Workload> {
    gossip(
        format!("sparse-{n}"),
        move || BuiltInput::unweighted(generators::sparse_connected(n, extra_edges, seed)),
        seed,
    )
}

/// [`mst`] on a [`generators::sparse_connected`] graph with unique permutation
/// weights — the scale bench's 10⁵-node GHS run.
pub fn mst_sparse(n: usize, extra_edges: usize, seed: u64) -> Box<dyn Workload> {
    mst(
        format!("sparse-{n}"),
        move || {
            let g = generators::sparse_connected(n, extra_edges, seed);
            BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, seed))
        },
        seed,
    )
}
