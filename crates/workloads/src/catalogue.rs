//! The registry catalogue: every algorithm in the workspace, wrapped as
//! [`Workload`] entries over the shared graph families.
//!
//! Families and seeds are fixed here, once — the conformance suites, the
//! determinism pins, the invariant tests and the registry bench all consume
//! these exact entries, so "the workload list" has a single definition.

use crate::adapter::{BuildFn, FnWorkload};
use crate::{BuiltInput, MetricsEnvelope, RunOutcome, Workload};
use apsp_core::verify::check_mst;
use congest_algos::bfs::Bfs;
use congest_algos::gossip::{expected_gossip, expected_gossip_masked, GossipOnce};
use congest_algos::leader::LeaderElect;
use congest_algos::matching_bipartite::BipartiteMatching;
use congest_algos::matching_maximal::{matching_pairs, IsraeliItai};
use congest_algos::mis::{is_valid_mis, LubyMis};
use congest_algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_decomp::baswana_sen::{validate_hierarchy, Hierarchy};
use congest_decomp::ldc::{build_ldc_with, validate_ldc};
use congest_decomp::spanner::{measured_stretch, spanner_edges};
use congest_engine::faults::{masked_bfs, masked_components};
use congest_engine::trace::{record_bcongest, record_congest};
use congest_engine::{
    run_bcongest, run_congest, BcongestAlgorithm, CongestAlgorithm, FaultEvent, FaultPlan,
    FaultResponse, RunOptions, WireEncode,
};
use congest_graph::{generators, reference, Graph, NodeId, WeightedGraph};
use std::sync::Arc;

/// The named graph families the per-family entries are instantiated over:
/// random + pathological shapes — G(n,p) sparse and dense, a path (deep
/// idle-skipping), a star (maximally skewed degrees, wildly unequal
/// chunk/shard loads), a cycle, a clustered caveman graph, a
/// preferential-attachment power-law graph (heavy-tailed degrees), and a
/// hub-and-spoke topology (all traffic funnels through a small clique).
pub const FAMILIES: [&str; 8] = [
    "gnp",
    "dense-gnp",
    "path",
    "star",
    "cycle",
    "caveman",
    "power-law",
    "hub-spoke",
];

/// Builds the named family's graph (deterministic; see [`FAMILIES`]).
///
/// # Panics
///
/// Panics on an unknown family name.
pub fn family_graph(family: &str) -> Graph {
    match family {
        "gnp" => generators::gnp_connected(60, 0.12, 11),
        "dense-gnp" => generators::gnp_connected(40, 0.5, 12),
        "path" => generators::path(48),
        "star" => generators::star(49),
        "cycle" => generators::cycle(40),
        "caveman" => generators::caveman(6, 8),
        "power-law" => generators::power_law(56, 2, 21),
        "hub-spoke" => generators::hub_and_spoke(6, 8),
        other => panic!("unknown graph family {other:?}"),
    }
}

/// All `(family, graph)` pairs of [`FAMILIES`].
pub fn graph_families() -> Vec<(&'static str, Graph)> {
    FAMILIES.iter().map(|&f| (f, family_graph(f))).collect()
}

/// The typed value of a BCONGEST run: outputs plus the word counts the
/// conformance contract pins alongside them.
#[derive(Debug)]
struct BcongestValue<O> {
    outputs: Vec<O>,
    // The word counts are read through the derived `Debug` rendering (they
    // are part of the conformance-compared `RunOutcome::output` string), which
    // the dead-code lint does not see.
    #[allow(dead_code)]
    input_words: usize,
    #[allow(dead_code)]
    output_words: usize,
}

/// Wraps a [`BcongestAlgorithm`] as a workload entry.
pub(crate) fn bcongest_entry<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: BcongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    bcongest_entry_faulty(
        algorithm,
        family,
        seed,
        build,
        make,
        |_| None,
        oracle,
        envelope,
    )
}

/// [`bcongest_entry`] with a fault plan derived from the built input. The plan
/// closure feeds both the normal runner and the trace recorder, so `run`,
/// `run_traced` and `replay` all execute the same faulted scenario.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bcongest_entry_faulty<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    plan: impl Fn(&BuiltInput) -> Option<FaultPlan> + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: BcongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    // Every message of an engine-runner entry travels the plane at the packed
    // codec width, so the memory envelope is exact, not an estimate.
    let msg_bytes = 4 * <A::Msg as WireEncode>::LANES as u64;
    let make = Arc::new(make);
    let plan = Arc::new(plan);
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new({
            let (make, plan) = (Arc::clone(&make), Arc::clone(&plan));
            move |input, cfg| {
                let algo = make(input);
                let run = run_bcongest(
                    &algo,
                    &input.graph,
                    input.weights.as_deref(),
                    &RunOptions {
                        seed,
                        exec: cfg.clone(),
                        faults: plan(input),
                        ..Default::default()
                    },
                )?;
                Ok((
                    BcongestValue {
                        outputs: run.outputs,
                        input_words: run.input_words,
                        output_words: run.output_words,
                    },
                    run.metrics,
                ))
            }
        }),
        oracle: Box::new(move |input, value| oracle(input, &value.outputs)),
        envelope: Box::new(move |input| envelope(input).with_message_bytes(msg_bytes)),
        trace: Some(Box::new(move |input, cfg, name| {
            let algo = make(input);
            let opts = RunOptions {
                seed,
                exec: cfg.clone(),
                faults: plan(input),
                ..Default::default()
            };
            let (run, trace) =
                record_bcongest(&algo, &input.graph, input.weights.as_deref(), &opts, name)?;
            let value = BcongestValue {
                outputs: run.outputs,
                input_words: run.input_words,
                output_words: run.output_words,
            };
            Ok((
                RunOutcome {
                    output: format!("{value:?}"),
                    metrics: run.metrics,
                },
                trace,
            ))
        })),
    })
}

/// Wraps a [`CongestAlgorithm`] as a workload entry.
pub(crate) fn congest_entry<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: CongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    congest_entry_faulty(
        algorithm,
        family,
        seed,
        build,
        make,
        |_| None,
        oracle,
        envelope,
    )
}

/// [`congest_entry`] with a fault plan derived from the built input (see
/// [`bcongest_entry_faulty`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn congest_entry_faulty<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    plan: impl Fn(&BuiltInput) -> Option<FaultPlan> + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: CongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    let msg_bytes = 4 * <A::Msg as WireEncode>::LANES as u64;
    let make = Arc::new(make);
    let plan = Arc::new(plan);
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new({
            let (make, plan) = (Arc::clone(&make), Arc::clone(&plan));
            move |input, cfg| {
                let algo = make(input);
                let run = run_congest(
                    &algo,
                    &input.graph,
                    input.weights.as_deref(),
                    &RunOptions {
                        seed,
                        exec: cfg.clone(),
                        faults: plan(input),
                        ..Default::default()
                    },
                )?;
                Ok((run.outputs, run.metrics))
            }
        }),
        oracle: Box::new(move |input, outputs| oracle(input, outputs)),
        envelope: Box::new(move |input| envelope(input).with_message_bytes(msg_bytes)),
        trace: Some(Box::new(move |input, cfg, name| {
            let algo = make(input);
            let opts = RunOptions {
                seed,
                exec: cfg.clone(),
                faults: plan(input),
                ..Default::default()
            };
            let (run, trace) =
                record_congest(&algo, &input.graph, input.weights.as_deref(), &opts, name)?;
            Ok((
                RunOutcome {
                    output: format!("{:?}", run.outputs),
                    metrics: run.metrics,
                },
                trace,
            ))
        })),
    })
}

/// Wraps a composite entry point (APSP, MST, trade-off, LDC — anything that is
/// not a single engine run) as a workload entry.
pub(crate) fn composite_entry<T: std::fmt::Debug + 'static>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    exec: impl Fn(
            &BuiltInput,
            &congest_engine::ExecutorConfig,
        ) -> Result<(T, congest_engine::Metrics), congest_engine::EngineError>
        + Send
        + Sync
        + 'static,
    oracle: impl Fn(&BuiltInput, &T) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload> {
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new(exec),
        oracle: Box::new(oracle),
        envelope: Box::new(envelope),
        trace: None,
    })
}

/// Validates a BFS answer (per-node distance + parent pointer) against the
/// sequential reference from `src`.
pub(crate) fn check_bfs_shape(
    g: &Graph,
    src: NodeId,
    dist_of: impl Fn(usize) -> Option<u32>,
    parent_of: impl Fn(usize) -> Option<NodeId>,
) -> Result<(), String> {
    let want = reference::bfs_distances(g, src);
    for (v, &want_v) in want.iter().enumerate() {
        let dist = dist_of(v);
        if dist != want_v {
            return Err(format!("dist({v}) = {dist:?}, want {want_v:?}"));
        }
        match parent_of(v) {
            None => {
                if dist.is_some() && v != src.index() {
                    return Err(format!("reached node {v} has no parent"));
                }
            }
            Some(p) => {
                if !g.neighbors(NodeId::new(v)).contains(&p) {
                    return Err(format!("parent of {v} is not a neighbor"));
                }
                if dist_of(p.index()).map(|d| d + 1) != dist {
                    return Err(format!("parent of {v} is not one hop closer"));
                }
            }
        }
    }
    Ok(())
}

/// The workload registry: one entry per `(algorithm, family)` pair, unique
/// names, every entry oracle-checked and envelope-bounded. See the crate docs
/// for what registration buys.
pub fn registry() -> Vec<Box<dyn Workload>> {
    let mut entries: Vec<Box<dyn Workload>> = Vec::new();

    // BFS from node 0 — the paper's simplest broadcast payload. Every node
    // broadcasts at most once: messages ≤ Σ deg = 2m, rounds ≤ n + guard.
    for &family in &FAMILIES {
        entries.push(crate::make::bfs(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            5,
        ));
    }

    // Leader election (min-ID flood with BFS-parent tracking). A node
    // re-broadcasts only when its candidate improves (≤ n times): messages
    // ≤ 2mn, rounds ≤ 2n + 4 (the algorithm's own bound).
    for &family in &FAMILIES {
        entries.push(bcongest_entry(
            "leader-election",
            family.to_string(),
            7,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| LeaderElect,
            |input, outputs| {
                let g = &input.graph;
                let want = reference::bfs_distances(g, NodeId::new(0));
                for (v, out) in outputs.iter().enumerate() {
                    if out.leader != NodeId::new(0) {
                        return Err(format!("node {v} elected {:?}, want node 0", out.leader));
                    }
                    if Some(out.dist) != want[v] {
                        return Err(format!("dist({v}) = {}, want {:?}", out.dist, want[v]));
                    }
                }
                check_bfs_shape(
                    g,
                    NodeId::new(0),
                    |v| Some(outputs[v].dist),
                    |v| outputs[v].parent,
                )
            },
            |input| {
                let (n, m) = (input.graph.n() as u64, input.graph.m() as u64);
                MetricsEnvelope::bounds(2 * m * n, 2 * n + 4)
            },
        ));
    }

    // One-shot gossip — the point-to-point delivery-order probe, with its
    // closed-form local oracle. Exactly one message per edge direction.
    for &family in &FAMILIES {
        entries.push(crate::make::gossip(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            9,
        ));
    }

    // The Theorem 1.4 workload: all-sources BFS collection under random
    // per-instance delays — per-node randomness plus staggered wave starts,
    // the hardest BCONGEST payload to keep bitwise stable under resharding.
    for &family in &FAMILIES {
        entries.push(crate::make::bfs_collection(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            13,
        ));
    }

    // Message-optimal GHS MST over every family (tie-heavy weights exercise
    // the (weight, EdgeId) total order), under the closed-form Õ(m) envelope.
    for &family in &FAMILIES {
        entries.push(crate::make::mst(
            family.to_string(),
            move || {
                let g = family_graph(family);
                BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 17))
            },
            17,
        ));
    }

    // Luby's MIS — the paper's introductory broadcast-based example — on the
    // shapes with the most skewed priority neighborhoods.
    for family in ["gnp", "star", "caveman"] {
        entries.push(bcongest_entry(
            "luby-mis",
            family.to_string(),
            41,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| LubyMis,
            |input, outputs| {
                is_valid_mis(&input.graph, outputs)
                    .then_some(())
                    .ok_or_else(|| "not a maximal independent set".to_string())
            },
            |_| MetricsEnvelope::unbounded(),
        ));
    }

    // Israeli–Itai randomized maximal matching (the AKO preprocessing step).
    for family in ["gnp", "cycle"] {
        entries.push(bcongest_entry(
            "maximal-matching",
            family.to_string(),
            43,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| IsraeliItai,
            |input, outputs| {
                // `matching_pairs` asserts partner mutuality internally.
                let pairs = matching_pairs(outputs);
                reference::is_maximal_matching(&input.graph, &pairs)
                    .then_some(())
                    .ok_or_else(|| "not a maximal matching".to_string())
            },
            |_| MetricsEnvelope::unbounded(),
        ));
    }

    // Ahmadi–Kuhn–Oshman exact bipartite maximum matching (Corollary 2.8's
    // payload), differentially sized against Hopcroft–Karp.
    entries.push(bcongest_entry(
        "bipartite-matching",
        "random-bipartite".to_string(),
        11,
        || BuiltInput::unweighted(generators::random_bipartite_connected(8, 9, 0.35, 51)),
        |_| BipartiteMatching,
        |input, outputs| {
            let g = &input.graph;
            let pairs = matching_pairs(outputs);
            if !reference::is_matching(g, &pairs) {
                return Err("not a matching".to_string());
            }
            let want = reference::hopcroft_karp(g).ok_or("input graph is not bipartite")?;
            (pairs.len() == want)
                .then_some(())
                .ok_or_else(|| format!("matching size {} is not maximum ({want})", pairs.len()))
        },
        |_| MetricsEnvelope::unbounded(),
    ));

    // Message-optimal weighted APSP through the Theorem 2.1 simulation:
    // leader election, LDC build, upcasts/downcasts and the stepper all flow
    // through the configured executor.
    entries.push(crate::make::weighted_apsp(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(26, 0.18, 21);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 21))
        },
        3,
    ));

    // Both routes of the k-parameterized MST trade-off: controlled merging +
    // leader-collected central finish (k < n) and pure GHS (k = n).
    let tradeoff_build = || {
        let g = generators::gnp_connected(40, 0.15, 23);
        BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, 23))
    };
    entries.push(crate::make::mst_tradeoff(
        "central-k4".to_string(),
        tradeoff_build,
        4,
        3,
    ));
    entries.push(crate::make::mst_tradeoff(
        "ghs-kn".to_string(),
        tradeoff_build,
        usize::MAX,
        3,
    ));

    // The serving layer (congest-serve): DistanceOracles over the paper's
    // outputs, with the oracle's deterministic hit/miss accounting pinned in
    // the conformance-compared output alongside the served answers. Three
    // entries cover the three query paths: point+batched lookups over exact
    // APSP, estimate-typed lookups over the §3.3 landmark sketch, and
    // k-nearest-by-distance ordering.
    entries.push(crate::make::serve_apsp(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(20, 0.2, 29);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 29))
        },
        48,
        29,
    ));
    entries.push(crate::make::serve_landmarks(
        "gnp".to_string(),
        || BuiltInput::unweighted(generators::gnp_connected(24, 0.15, 31)),
        0.25,
        48,
        31,
    ));
    entries.push(crate::make::serve_knn(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(18, 0.25, 37);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 37))
        },
        4,
        8,
        37,
    ));

    // The LDC decomposition of Definition 2.3/Lemma 2.4 (from congest-decomp):
    // a distributed MPX clustering plus the sparse inter-cluster edge set F,
    // validated against the definition's (r, d) bounds.
    entries.push(composite_entry(
        "ldc-decomposition",
        "gnp".to_string(),
        61,
        || BuiltInput::unweighted(generators::gnp_connected(48, 0.1, 61)),
        |input, cfg| {
            let ldc = build_ldc_with(&input.graph, 61, cfg)?;
            let metrics = ldc.metrics.clone();
            Ok((ldc, metrics))
        },
        |input, ldc| {
            // Validates the decomposition under test (the one `exec`
            // produced), not a fresh rebuild.
            let g = &input.graph;
            let lnn = (g.n().max(2) as f64).ln();
            validate_ldc(g, ldc, (8.0 * lnn) as u32, (10.0 * lnn) as usize)
        },
        // MPX claim/announce waves are 4-lane packed messages (16 bytes).
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    ));

    // --- fault-injection scenario axes -----------------------------------
    //
    // Every `faulty-*` entry threads a deterministic seeded FaultPlan through
    // the engine runner and validates against a *surviving-graph* oracle:
    // masked BFS, per-component minima, or the masked gossip fold. Because the
    // plan closure also feeds the trace recorder, these scenarios are fully
    // replayable (`tests/fault_conformance.rs` pins them across the whole
    // backend × plane matrix).

    // BFS under 3 crashes at round 1 (source protected), Restart semantics:
    // live nodes must report masked-BFS distances on the surviving graph.
    // Restart re-floods at most once per epoch: messages ≤ 2 epochs × 2m.
    let bfs_crash_plan = |g: &Graph| FaultPlan::crashes(g, 3, 1, 5, &[NodeId::new(0)]);
    entries.push(bcongest_entry_faulty(
        "faulty-bfs",
        "gnp-crash".to_string(),
        5,
        || BuiltInput::unweighted(family_graph("gnp")),
        |_| Bfs::new(NodeId::new(0)),
        move |input| Some(bfs_crash_plan(&input.graph)),
        move |input, outputs| {
            let g = &input.graph;
            let mask = bfs_crash_plan(g).final_mask(g);
            let want = masked_bfs(g, &mask, NodeId::new(0));
            for v in g.nodes() {
                if mask.node_up[v.index()] && outputs[v.index()].dist != want[v.index()] {
                    return Err(format!(
                        "dist({v:?}) = {:?}, surviving-graph oracle wants {:?}",
                        outputs[v.index()].dist,
                        want[v.index()]
                    ));
                }
            }
            Ok(())
        },
        |input| MetricsEnvelope::messages(4 * input.graph.m() as u64),
    ));

    // Leader election under 3 unprotected crashes at round 1, Restart: each
    // surviving component independently elects its minimum live ID.
    let leader_crash_plan = |g: &Graph| FaultPlan::crashes(g, 3, 1, 7, &[]);
    entries.push(bcongest_entry_faulty(
        "faulty-leader",
        "gnp-crash".to_string(),
        7,
        || BuiltInput::unweighted(family_graph("gnp")),
        |_| LeaderElect,
        move |input| Some(leader_crash_plan(&input.graph)),
        move |input, outputs| {
            let g = &input.graph;
            let mask = leader_crash_plan(g).final_mask(g);
            let want = masked_components(g, &mask);
            for v in g.nodes() {
                if let Some(leader) = want[v.index()] {
                    if outputs[v.index()].leader != leader {
                        return Err(format!(
                            "node {v:?} elected {:?}, its surviving component's minimum is {leader:?}",
                            outputs[v.index()].leader
                        ));
                    }
                }
            }
            Ok(())
        },
        |input| {
            let (n, m) = (input.graph.n() as u64, input.graph.m() as u64);
            MetricsEnvelope::messages(4 * m * n)
        },
    ));

    // Leader election under additive (up-only) edge churn, SelfHeal: the
    // path's central bridge is down from round 0 and comes up at round 60,
    // long after both halves quiesced on their local minima. The `on_fault`
    // hook re-arms the flood, and min-ID flooding is monotone, so the healed
    // election must equal the fault-free full-graph result.
    let heal_plan = |g: &Graph| {
        let bridge = g
            .edge_between(NodeId::new(23), NodeId::new(24))
            .expect("path bridge edge");
        FaultPlan::new(FaultResponse::SelfHeal)
            .at(0, FaultEvent::EdgeDown(bridge))
            .at(60, FaultEvent::EdgeUp(bridge))
    };
    entries.push(bcongest_entry_faulty(
        "faulty-leader",
        "path-heal".to_string(),
        7,
        || BuiltInput::unweighted(generators::path(48)),
        |_| LeaderElect,
        move |input| Some(heal_plan(&input.graph)),
        |input, outputs| {
            let g = &input.graph;
            let want = reference::bfs_distances(g, NodeId::new(0));
            for (v, out) in outputs.iter().enumerate() {
                if out.leader != NodeId::new(0) {
                    return Err(format!("node {v} elected {:?} after heal", out.leader));
                }
                if Some(out.dist) != want[v] {
                    return Err(format!("dist({v}) = {}, want {:?}", out.dist, want[v]));
                }
            }
            check_bfs_shape(
                g,
                NodeId::new(0),
                |v| Some(outputs[v].dist),
                |v| outputs[v].parent,
            )
        },
        |_| MetricsEnvelope::unbounded(),
    ));

    // Gossip under 3 crashes at round 1, Restart: the final checksum at every
    // live node is one masked exchange folded at the last fault round.
    let gossip_crash_plan = |g: &Graph| FaultPlan::crashes(g, 3, 1, 9, &[]);
    entries.push(congest_entry_faulty(
        "faulty-gossip",
        "gnp-crash".to_string(),
        9,
        || BuiltInput::unweighted(family_graph("gnp")),
        |_| GossipOnce,
        move |input| Some(gossip_crash_plan(&input.graph)),
        move |input, outputs| {
            let g = &input.graph;
            let plan = gossip_crash_plan(g);
            let mask = plan.final_mask(g);
            let last = plan.last_fault_round().expect("plan has faults");
            let want = expected_gossip_masked(g, &mask, last);
            for v in g.nodes() {
                if let Some(w) = want[v.index()] {
                    if outputs[v.index()] != w {
                        return Err(format!("checksum at {v:?} diverges from masked oracle"));
                    }
                }
            }
            Ok(())
        },
        |input| MetricsEnvelope::messages(4 * input.graph.m() as u64),
    ));

    // Gossip under transient edge churn (4 edges down at round 0, back up at
    // round 2), Restart: the final topology is fully healed, so every node
    // folds a complete exchange at the last fault round.
    let gossip_churn_plan =
        |g: &Graph| FaultPlan::edge_churn(g, 4, 0, 2, 9, FaultResponse::Restart);
    entries.push(congest_entry_faulty(
        "faulty-gossip",
        "gnp-churn".to_string(),
        9,
        || BuiltInput::unweighted(family_graph("gnp")),
        |_| GossipOnce,
        move |input| Some(gossip_churn_plan(&input.graph)),
        move |input, outputs| {
            let g = &input.graph;
            let plan = gossip_churn_plan(g);
            let mask = plan.final_mask(g);
            let last = plan.last_fault_round().expect("plan has faults");
            let want = expected_gossip_masked(g, &mask, last);
            for v in g.nodes() {
                match want[v.index()] {
                    Some(w) if outputs[v.index()] == w => {}
                    _ => return Err(format!("checksum at {v:?} diverges from healed oracle")),
                }
            }
            Ok(())
        },
        |input| MetricsEnvelope::messages(6 * input.graph.m() as u64),
    ));

    // MST with workload-level crash semantics: 3 nodes (never node 0) crash
    // before the run starts, and GHS restarts on node 0's surviving component.
    // The Kruskal differential oracle checks the MST *of that subgraph*.
    let mst_crash_plan = |g: &Graph| FaultPlan::crashes(g, 3, 0, 17, &[NodeId::new(0)]);
    entries.push(composite_entry(
        "faulty-mst",
        "gnp-crash".to_string(),
        17,
        || {
            let g = family_graph("gnp");
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 17))
        },
        move |input, cfg| {
            let wg = surviving_component(&input.weighted_graph(), &mst_crash_plan(&input.graph));
            let run = distributed_mst(
                &wg,
                &MstConfig {
                    exec: cfg.clone(),
                    message_budget: Some(message_bound(wg.n(), wg.m())),
                    ..Default::default()
                },
            )?;
            Ok(((run.edges, run.total_weight, run.complete), run.metrics))
        },
        move |input, value| {
            let wg = surviving_component(&input.weighted_graph(), &mst_crash_plan(&input.graph));
            check_mst(&wg, &value.0)
        },
        |input| {
            MetricsEnvelope::messages(message_bound(input.graph.n(), input.graph.m()))
                .with_message_bytes(8)
        },
    ));

    // --- skewed-topology scenario axes -----------------------------------
    //
    // Larger instances of the two skewed generators than the per-family
    // loops use: heavy-tailed preferential attachment and a hub clique
    // carrying 24 leaves per hub — the shapes where per-node fan-out is
    // most unbalanced across chunks/shards.
    entries.push(bcongest_entry(
        "skewed-bfs",
        "power-law-wide".to_string(),
        5,
        || BuiltInput::unweighted(generators::power_law(120, 3, 7)),
        |_| Bfs::new(NodeId::new(0)),
        |input, outputs| {
            check_bfs_shape(
                &input.graph,
                NodeId::new(0),
                |v| outputs[v].dist,
                |v| outputs[v].parent,
            )
        },
        |input| MetricsEnvelope::bounds(2 * input.graph.m() as u64, input.graph.n() as u64 + 2),
    ));
    entries.push(congest_entry(
        "skewed-gossip",
        "hub-spoke-wide".to_string(),
        9,
        || BuiltInput::unweighted(generators::hub_and_spoke(8, 24)),
        |_| GossipOnce,
        |input, outputs| {
            let want = expected_gossip(&input.graph);
            (outputs == &want[..])
                .then_some(())
                .ok_or_else(|| "checksums diverge from the local oracle".to_string())
        },
        |input| MetricsEnvelope::bounds(2 * input.graph.m() as u64, 2),
    ));

    // Baswana–Sen spanner hierarchy (ε = 1/2, κ = 2): exact `κ·2m` accounted
    // message cost, structural validation, and a measured stretch within the
    // 2κ−1 guarantee on sampled sources.
    entries.push(composite_entry(
        "baswana-sen-spanner",
        "gnp".to_string(),
        19,
        || BuiltInput::unweighted(generators::gnp_connected(48, 0.12, 19)),
        |input, _cfg| {
            // The hierarchy build is a decomposition pass with closed-form
            // accounting, identical for every executor configuration.
            let h = Hierarchy::build(&input.graph, 0.5, 19);
            let metrics = h.metrics.clone();
            let edges = spanner_edges(&input.graph, &h);
            Ok(((edges, h.kappa), metrics))
        },
        |input, value| {
            let g = &input.graph;
            let h = Hierarchy::build(g, 0.5, 19);
            validate_hierarchy(g, &h)?;
            if value.1 != h.kappa {
                return Err(format!(
                    "kappa {} diverges from rebuild {}",
                    value.1, h.kappa
                ));
            }
            let stretch = measured_stretch(g, &h, 12, 19);
            let bound = (2 * h.kappa - 1) as f64;
            if stretch > bound {
                return Err(format!("measured stretch {stretch} exceeds 2κ−1 = {bound}"));
            }
            Ok(())
        },
        // κ = ⌈1/ε⌉ = 2 charged passes over both edge directions, one word
        // (8 bytes) each.
        |input| MetricsEnvelope::messages(4 * input.graph.m() as u64).with_message_bytes(8),
    ));

    entries
}

/// The induced weighted subgraph on node 0's surviving component after
/// `plan`'s faults — the workload-level "restart on what survived" semantics
/// for composite algorithms that assume a connected input.
fn surviving_component(wg: &WeightedGraph, plan: &FaultPlan) -> WeightedGraph {
    let g = wg.graph();
    let mask = plan.final_mask(g);
    let comp = masked_components(g, &mask);
    // Node 0 is protected in the crash plans, so its component's minimum live
    // ID is node 0 itself.
    let mut renumber: Vec<Option<usize>> = vec![None; g.n()];
    let mut kept = 0usize;
    for v in g.nodes() {
        if comp[v.index()] == Some(NodeId::new(0)) {
            renumber[v.index()] = Some(kept);
            kept += 1;
        }
    }
    let mut edges = Vec::new();
    let mut weight_of = std::collections::BTreeMap::new();
    for (e, u, v) in g.edges() {
        if let (Some(u2), Some(v2)) = (renumber[u.index()], renumber[v.index()]) {
            if mask.allows(g, e) {
                edges.push((u2, v2));
                weight_of.insert((u2.min(v2), u2.max(v2)), wg.weight(e));
            }
        }
    }
    // `from_edges` canonicalizes edge order, so weights re-attach by endpoint
    // pair rather than by position.
    let sub = Graph::from_edges(kept, &edges);
    let weights = sub
        .edges()
        .map(|(_, u, v)| {
            let (a, b) = (u.index().min(v.index()), u.index().max(v.index()));
            weight_of[&(a, b)]
        })
        .collect();
    WeightedGraph::from_weights(sub, weights).expect("one weight per surviving edge")
}
