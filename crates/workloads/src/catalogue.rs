//! The registry catalogue: every algorithm in the workspace, wrapped as
//! [`Workload`] entries over the shared graph families.
//!
//! Families and seeds are fixed here, once — the conformance suites, the
//! determinism pins, the invariant tests and the registry bench all consume
//! these exact entries, so "the workload list" has a single definition.

use crate::adapter::{BuildFn, FnWorkload};
use crate::{BuiltInput, MetricsEnvelope, Workload};
use congest_algos::leader::LeaderElect;
use congest_algos::matching_bipartite::BipartiteMatching;
use congest_algos::matching_maximal::{matching_pairs, IsraeliItai};
use congest_algos::mis::{is_valid_mis, LubyMis};
use congest_decomp::ldc::{build_ldc_with, validate_ldc};
use congest_engine::{
    run_bcongest, run_congest, BcongestAlgorithm, CongestAlgorithm, RunOptions, WireEncode,
};
use congest_graph::{generators, reference, Graph, NodeId, WeightedGraph};

/// The named graph families the per-family entries are instantiated over:
/// random + pathological shapes — G(n,p) sparse and dense, a path (deep
/// idle-skipping), a star (maximally skewed degrees, wildly unequal
/// chunk/shard loads), a cycle, and a clustered caveman graph.
pub const FAMILIES: [&str; 6] = ["gnp", "dense-gnp", "path", "star", "cycle", "caveman"];

/// Builds the named family's graph (deterministic; see [`FAMILIES`]).
///
/// # Panics
///
/// Panics on an unknown family name.
pub fn family_graph(family: &str) -> Graph {
    match family {
        "gnp" => generators::gnp_connected(60, 0.12, 11),
        "dense-gnp" => generators::gnp_connected(40, 0.5, 12),
        "path" => generators::path(48),
        "star" => generators::star(49),
        "cycle" => generators::cycle(40),
        "caveman" => generators::caveman(6, 8),
        other => panic!("unknown graph family {other:?}"),
    }
}

/// All `(family, graph)` pairs of [`FAMILIES`].
pub fn graph_families() -> Vec<(&'static str, Graph)> {
    FAMILIES.iter().map(|&f| (f, family_graph(f))).collect()
}

/// The typed value of a BCONGEST run: outputs plus the word counts the
/// conformance contract pins alongside them.
#[derive(Debug)]
struct BcongestValue<O> {
    outputs: Vec<O>,
    // The word counts are read through the derived `Debug` rendering (they
    // are part of the conformance-compared `RunOutcome::output` string), which
    // the dead-code lint does not see.
    #[allow(dead_code)]
    input_words: usize,
    #[allow(dead_code)]
    output_words: usize,
}

/// Wraps a [`BcongestAlgorithm`] as a workload entry.
pub(crate) fn bcongest_entry<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: BcongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    // Every message of an engine-runner entry travels the plane at the packed
    // codec width, so the memory envelope is exact, not an estimate.
    let msg_bytes = 4 * <A::Msg as WireEncode>::LANES as u64;
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new(move |input, cfg| {
            let algo = make(input);
            let run = run_bcongest(
                &algo,
                &input.graph,
                input.weights.as_deref(),
                &RunOptions {
                    seed,
                    exec: cfg.clone(),
                    ..Default::default()
                },
            )?;
            Ok((
                BcongestValue {
                    outputs: run.outputs,
                    input_words: run.input_words,
                    output_words: run.output_words,
                },
                run.metrics,
            ))
        }),
        oracle: Box::new(move |input, value| oracle(input, &value.outputs)),
        envelope: Box::new(move |input| envelope(input).with_message_bytes(msg_bytes)),
    })
}

/// Wraps a [`CongestAlgorithm`] as a workload entry.
pub(crate) fn congest_entry<A>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    make: impl Fn(&BuiltInput) -> A + Send + Sync + 'static,
    oracle: impl Fn(&BuiltInput, &[A::Output]) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload>
where
    A: CongestAlgorithm + Send + Sync + 'static,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    A::Output: 'static,
{
    let msg_bytes = 4 * <A::Msg as WireEncode>::LANES as u64;
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new(move |input, cfg| {
            let algo = make(input);
            let run = run_congest(
                &algo,
                &input.graph,
                input.weights.as_deref(),
                &RunOptions {
                    seed,
                    exec: cfg.clone(),
                    ..Default::default()
                },
            )?;
            Ok((run.outputs, run.metrics))
        }),
        oracle: Box::new(move |input, outputs| oracle(input, outputs)),
        envelope: Box::new(move |input| envelope(input).with_message_bytes(msg_bytes)),
    })
}

/// Wraps a composite entry point (APSP, MST, trade-off, LDC — anything that is
/// not a single engine run) as a workload entry.
pub(crate) fn composite_entry<T: std::fmt::Debug + 'static>(
    algorithm: &'static str,
    family: String,
    seed: u64,
    build: impl Fn() -> BuiltInput + Send + Sync + 'static,
    exec: impl Fn(
            &BuiltInput,
            &congest_engine::ExecutorConfig,
        ) -> Result<(T, congest_engine::Metrics), congest_engine::EngineError>
        + Send
        + Sync
        + 'static,
    oracle: impl Fn(&BuiltInput, &T) -> Result<(), String> + Send + Sync + 'static,
    envelope: impl Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync + 'static,
) -> Box<dyn Workload> {
    Box::new(FnWorkload {
        algorithm,
        family,
        seed,
        build: Box::new(build) as BuildFn,
        exec: Box::new(exec),
        oracle: Box::new(oracle),
        envelope: Box::new(envelope),
    })
}

/// Validates a BFS answer (per-node distance + parent pointer) against the
/// sequential reference from `src`.
pub(crate) fn check_bfs_shape(
    g: &Graph,
    src: NodeId,
    dist_of: impl Fn(usize) -> Option<u32>,
    parent_of: impl Fn(usize) -> Option<NodeId>,
) -> Result<(), String> {
    let want = reference::bfs_distances(g, src);
    for (v, &want_v) in want.iter().enumerate() {
        let dist = dist_of(v);
        if dist != want_v {
            return Err(format!("dist({v}) = {dist:?}, want {want_v:?}"));
        }
        match parent_of(v) {
            None => {
                if dist.is_some() && v != src.index() {
                    return Err(format!("reached node {v} has no parent"));
                }
            }
            Some(p) => {
                if !g.neighbors(NodeId::new(v)).contains(&p) {
                    return Err(format!("parent of {v} is not a neighbor"));
                }
                if dist_of(p.index()).map(|d| d + 1) != dist {
                    return Err(format!("parent of {v} is not one hop closer"));
                }
            }
        }
    }
    Ok(())
}

/// The workload registry: one entry per `(algorithm, family)` pair, unique
/// names, every entry oracle-checked and envelope-bounded. See the crate docs
/// for what registration buys.
pub fn registry() -> Vec<Box<dyn Workload>> {
    let mut entries: Vec<Box<dyn Workload>> = Vec::new();

    // BFS from node 0 — the paper's simplest broadcast payload. Every node
    // broadcasts at most once: messages ≤ Σ deg = 2m, rounds ≤ n + guard.
    for &family in &FAMILIES {
        entries.push(crate::make::bfs(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            5,
        ));
    }

    // Leader election (min-ID flood with BFS-parent tracking). A node
    // re-broadcasts only when its candidate improves (≤ n times): messages
    // ≤ 2mn, rounds ≤ 2n + 4 (the algorithm's own bound).
    for &family in &FAMILIES {
        entries.push(bcongest_entry(
            "leader-election",
            family.to_string(),
            7,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| LeaderElect,
            |input, outputs| {
                let g = &input.graph;
                let want = reference::bfs_distances(g, NodeId::new(0));
                for (v, out) in outputs.iter().enumerate() {
                    if out.leader != NodeId::new(0) {
                        return Err(format!("node {v} elected {:?}, want node 0", out.leader));
                    }
                    if Some(out.dist) != want[v] {
                        return Err(format!("dist({v}) = {}, want {:?}", out.dist, want[v]));
                    }
                }
                check_bfs_shape(
                    g,
                    NodeId::new(0),
                    |v| Some(outputs[v].dist),
                    |v| outputs[v].parent,
                )
            },
            |input| {
                let (n, m) = (input.graph.n() as u64, input.graph.m() as u64);
                MetricsEnvelope::bounds(2 * m * n, 2 * n + 4)
            },
        ));
    }

    // One-shot gossip — the point-to-point delivery-order probe, with its
    // closed-form local oracle. Exactly one message per edge direction.
    for &family in &FAMILIES {
        entries.push(crate::make::gossip(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            9,
        ));
    }

    // The Theorem 1.4 workload: all-sources BFS collection under random
    // per-instance delays — per-node randomness plus staggered wave starts,
    // the hardest BCONGEST payload to keep bitwise stable under resharding.
    for &family in &FAMILIES {
        entries.push(crate::make::bfs_collection(
            family.to_string(),
            move || BuiltInput::unweighted(family_graph(family)),
            13,
        ));
    }

    // Message-optimal GHS MST over every family (tie-heavy weights exercise
    // the (weight, EdgeId) total order), under the closed-form Õ(m) envelope.
    for &family in &FAMILIES {
        entries.push(crate::make::mst(
            family.to_string(),
            move || {
                let g = family_graph(family);
                BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 17))
            },
            17,
        ));
    }

    // Luby's MIS — the paper's introductory broadcast-based example — on the
    // shapes with the most skewed priority neighborhoods.
    for family in ["gnp", "star", "caveman"] {
        entries.push(bcongest_entry(
            "luby-mis",
            family.to_string(),
            41,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| LubyMis,
            |input, outputs| {
                is_valid_mis(&input.graph, outputs)
                    .then_some(())
                    .ok_or_else(|| "not a maximal independent set".to_string())
            },
            |_| MetricsEnvelope::unbounded(),
        ));
    }

    // Israeli–Itai randomized maximal matching (the AKO preprocessing step).
    for family in ["gnp", "cycle"] {
        entries.push(bcongest_entry(
            "maximal-matching",
            family.to_string(),
            43,
            move || BuiltInput::unweighted(family_graph(family)),
            |_| IsraeliItai,
            |input, outputs| {
                // `matching_pairs` asserts partner mutuality internally.
                let pairs = matching_pairs(outputs);
                reference::is_maximal_matching(&input.graph, &pairs)
                    .then_some(())
                    .ok_or_else(|| "not a maximal matching".to_string())
            },
            |_| MetricsEnvelope::unbounded(),
        ));
    }

    // Ahmadi–Kuhn–Oshman exact bipartite maximum matching (Corollary 2.8's
    // payload), differentially sized against Hopcroft–Karp.
    entries.push(bcongest_entry(
        "bipartite-matching",
        "random-bipartite".to_string(),
        11,
        || BuiltInput::unweighted(generators::random_bipartite_connected(8, 9, 0.35, 51)),
        |_| BipartiteMatching,
        |input, outputs| {
            let g = &input.graph;
            let pairs = matching_pairs(outputs);
            if !reference::is_matching(g, &pairs) {
                return Err("not a matching".to_string());
            }
            let want = reference::hopcroft_karp(g).ok_or("input graph is not bipartite")?;
            (pairs.len() == want)
                .then_some(())
                .ok_or_else(|| format!("matching size {} is not maximum ({want})", pairs.len()))
        },
        |_| MetricsEnvelope::unbounded(),
    ));

    // Message-optimal weighted APSP through the Theorem 2.1 simulation:
    // leader election, LDC build, upcasts/downcasts and the stepper all flow
    // through the configured executor.
    entries.push(crate::make::weighted_apsp(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(26, 0.18, 21);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 21))
        },
        3,
    ));

    // Both routes of the k-parameterized MST trade-off: controlled merging +
    // leader-collected central finish (k < n) and pure GHS (k = n).
    let tradeoff_build = || {
        let g = generators::gnp_connected(40, 0.15, 23);
        BuiltInput::weighted(WeightedGraph::random_unique_weights(&g, 23))
    };
    entries.push(crate::make::mst_tradeoff(
        "central-k4".to_string(),
        tradeoff_build,
        4,
        3,
    ));
    entries.push(crate::make::mst_tradeoff(
        "ghs-kn".to_string(),
        tradeoff_build,
        usize::MAX,
        3,
    ));

    // The serving layer (congest-serve): DistanceOracles over the paper's
    // outputs, with the oracle's deterministic hit/miss accounting pinned in
    // the conformance-compared output alongside the served answers. Three
    // entries cover the three query paths: point+batched lookups over exact
    // APSP, estimate-typed lookups over the §3.3 landmark sketch, and
    // k-nearest-by-distance ordering.
    entries.push(crate::make::serve_apsp(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(20, 0.2, 29);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 29))
        },
        48,
        29,
    ));
    entries.push(crate::make::serve_landmarks(
        "gnp".to_string(),
        || BuiltInput::unweighted(generators::gnp_connected(24, 0.15, 31)),
        0.25,
        48,
        31,
    ));
    entries.push(crate::make::serve_knn(
        "gnp".to_string(),
        || {
            let g = generators::gnp_connected(18, 0.25, 37);
            BuiltInput::weighted(WeightedGraph::random_weights(&g, 1..=9, 37))
        },
        4,
        8,
        37,
    ));

    // The LDC decomposition of Definition 2.3/Lemma 2.4 (from congest-decomp):
    // a distributed MPX clustering plus the sparse inter-cluster edge set F,
    // validated against the definition's (r, d) bounds.
    entries.push(composite_entry(
        "ldc-decomposition",
        "gnp".to_string(),
        61,
        || BuiltInput::unweighted(generators::gnp_connected(48, 0.1, 61)),
        |input, cfg| {
            let ldc = build_ldc_with(&input.graph, 61, cfg)?;
            let metrics = ldc.metrics.clone();
            Ok((ldc, metrics))
        },
        |input, ldc| {
            // Validates the decomposition under test (the one `exec`
            // produced), not a fresh rebuild.
            let g = &input.graph;
            let lnn = (g.n().max(2) as f64).ln();
            validate_ldc(g, ldc, (8.0 * lnn) as u32, (10.0 * lnn) as usize)
        },
        // MPX claim/announce waves are 4-lane packed messages (16 bytes).
        |_| MetricsEnvelope::unbounded().with_message_bytes(16),
    ));

    entries
}
