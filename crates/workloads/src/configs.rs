//! The executor-configuration matrices the suites sweep. Previously these
//! lived in `tests/common/mod.rs`; they are part of the registry crate so the
//! root test suites, the benches, and downstream consumers sweep the *same*
//! configurations and cannot drift apart.

use congest_engine::{DeliveryBackend, ExecutorConfig, MessagePlane};

/// The thread-count matrix of `tests/parallel_determinism.rs`: the chunked
/// backend at 2/4/8 workers, pinned against the sequential baseline.
pub fn thread_matrix() -> Vec<(String, ExecutorConfig)> {
    [2, 4, 8]
        .into_iter()
        .map(|t| {
            (
                format!("chunked/{t}-threads"),
                ExecutorConfig::with_threads(t),
            )
        })
        .collect()
}

/// The delivery-backend matrix of `tests/backend_conformance.rs`: every
/// chunked thread count and every sharded shard count (with matching worker
/// counts), plus a single-threaded sharded layout and the cost-model
/// [`DeliveryBackend::Auto`] backend at every thread count — all pinned
/// against the sequential baseline.
pub fn backend_matrix() -> Vec<(String, ExecutorConfig)> {
    let mut cfgs = vec![(
        "sequential/explicit".to_string(),
        ExecutorConfig::sequential(),
    )];
    for t in [1usize, 2, 4, 8] {
        cfgs.push((format!("chunked/{t}"), ExecutorConfig::with_threads(t)));
    }
    for s in [1usize, 2, 4, 8] {
        cfgs.push((format!("sharded/{s}"), ExecutorConfig::sharded(s)));
        cfgs.push((
            format!("sharded/{s}-1thread"),
            ExecutorConfig::with_threads(1).with_backend(DeliveryBackend::Sharded { shards: s }),
        ));
    }
    for t in [1usize, 2, 4, 8] {
        cfgs.push((format!("auto/{t}"), ExecutorConfig::auto(t)));
    }
    cfgs
}

/// The message-plane conformance matrix of `tests/plane_conformance.rs`:
/// every [`backend_matrix`] configuration crossed with both message planes.
/// The boxed plane is the semantic reference; the flat plane must reproduce
/// its outcome (outputs *and* exact [`congest_engine::Metrics`]) on every
/// cell.
pub fn plane_matrix() -> Vec<(String, ExecutorConfig)> {
    let planes = [("boxed", MessagePlane::Boxed), ("flat", MessagePlane::Flat)];
    backend_matrix()
        .into_iter()
        .flat_map(|(label, cfg)| {
            planes
                .into_iter()
                .map(move |(pl, plane)| (format!("{label}/{pl}"), cfg.clone().with_plane(plane)))
        })
        .collect()
}

/// The backend sweep of the delivery-backend bench (`BENCH_shard.json`):
/// sequential baseline, chunked at hardware threads, and each sharded count
/// single-threaded (pure layout) — the honest comparison on any core count,
/// since the sharded schedule does not depend on thread fan-out. Returns
/// `(backend label, shards, config)` triples; `shards` is 0 for the
/// non-sharded entries.
pub fn shard_bench_matrix(shard_counts: &[usize]) -> Vec<(&'static str, usize, ExecutorConfig)> {
    let mut cfgs = vec![
        ("sequential", 0usize, ExecutorConfig::sequential()),
        ("chunked", 0usize, ExecutorConfig::with_threads(0)),
    ];
    for &s in shard_counts {
        cfgs.push((
            "sharded",
            s,
            ExecutorConfig::with_threads(1).with_backend(DeliveryBackend::Sharded { shards: s }),
        ));
    }
    cfgs
}

/// The wall-clock sweep of the registry bench (`BENCH_suite.json`): the
/// sequential baseline, the chunked backend at hardware threads, the sharded
/// backend at 2/4/8 shards (one worker per shard), and the cost-model auto
/// backend at hardware threads. Narrower than [`backend_matrix`] — the bench
/// measures layout/fan-out, the tests prove conformance.
pub fn bench_matrix() -> Vec<(String, ExecutorConfig)> {
    let mut cfgs = vec![
        ("sequential".to_string(), ExecutorConfig::sequential()),
        ("chunked/hw".to_string(), ExecutorConfig::with_threads(0)),
    ];
    for s in [2usize, 4, 8] {
        cfgs.push((format!("sharded/{s}"), ExecutorConfig::sharded(s)));
    }
    cfgs.push(("auto/hw".to_string(), ExecutorConfig::auto(0)));
    cfgs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_labelled_uniquely() {
        for matrix in [thread_matrix(), backend_matrix(), bench_matrix()] {
            let mut labels: Vec<&str> = matrix.iter().map(|(l, _)| l.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), matrix.len());
        }
    }

    #[test]
    fn plane_matrix_doubles_the_backend_matrix() {
        let planes = plane_matrix();
        let backends = backend_matrix();
        assert_eq!(planes.len(), 2 * backends.len());
        // Every backend configuration appears once per plane, and the boxed
        // half is exactly the backend matrix with the default plane.
        for (label, cfg) in &backends {
            let boxed = planes
                .iter()
                .find(|(l, _)| l == &format!("{label}/boxed"))
                .expect("boxed cell");
            let flat = planes
                .iter()
                .find(|(l, _)| l == &format!("{label}/flat"))
                .expect("flat cell");
            assert_eq!(&boxed.1, cfg);
            assert_eq!(boxed.1.message_plane, MessagePlane::Boxed);
            assert_eq!(flat.1.message_plane, MessagePlane::Flat);
            assert_eq!(flat.1.backend, cfg.backend);
            assert_eq!(flat.1.threads, cfg.threads);
        }
    }

    #[test]
    fn shard_bench_matrix_stays_in_sync_with_bench_sweep() {
        let m = shard_bench_matrix(&[2, 4, 8]);
        assert_eq!(m.len(), 2 + 3);
        assert_eq!(m[0].0, "sequential");
        assert_eq!(m[0].2, ExecutorConfig::sequential());
        assert_eq!(m[1].0, "chunked");
        assert_eq!(m[1].2.backend, DeliveryBackend::Chunked);
        for (i, &s) in [2usize, 4, 8].iter().enumerate() {
            let (backend, shards, ref cfg) = m[2 + i];
            assert_eq!(backend, "sharded");
            assert_eq!(shards, s);
            assert_eq!(cfg.backend, DeliveryBackend::Sharded { shards: s });
            assert_eq!(cfg.threads, 1, "sharded bench cells are pure layout");
        }
    }

    #[test]
    fn backend_matrix_covers_all_backends() {
        let m = backend_matrix();
        assert!(m
            .iter()
            .any(|(_, c)| c.backend == DeliveryBackend::Sequential));
        assert!(m.iter().any(|(_, c)| c.backend == DeliveryBackend::Chunked));
        assert!(m
            .iter()
            .any(|(_, c)| matches!(c.backend, DeliveryBackend::Sharded { .. })));
        assert!(m.iter().any(|(_, c)| c.backend == DeliveryBackend::Auto));
    }

    #[test]
    fn auto_cells_cover_every_thread_count() {
        let m = backend_matrix();
        for t in [1usize, 2, 4, 8] {
            let (_, cfg) = m
                .iter()
                .find(|(l, _)| l == &format!("auto/{t}"))
                .expect("auto cell");
            assert_eq!(cfg.backend, DeliveryBackend::Auto);
            assert_eq!(cfg.threads, t);
        }
        let bench = bench_matrix();
        let (_, auto_hw) = bench
            .iter()
            .find(|(l, _)| l == "auto/hw")
            .expect("auto bench cell");
        assert_eq!(auto_hw.backend, DeliveryBackend::Auto);
        assert_eq!(auto_hw.threads, 0, "bench auto runs at hardware threads");
    }
}
