//! The executor-configuration matrices the suites sweep. Previously these
//! lived in `tests/common/mod.rs`; they are part of the registry crate so the
//! root test suites, the benches, and downstream consumers sweep the *same*
//! configurations and cannot drift apart.

use congest_engine::{DeliveryBackend, ExecutorConfig};

/// The thread-count matrix of `tests/parallel_determinism.rs`: the chunked
/// backend at 2/4/8 workers, pinned against the sequential baseline.
pub fn thread_matrix() -> Vec<(String, ExecutorConfig)> {
    [2, 4, 8]
        .into_iter()
        .map(|t| {
            (
                format!("chunked/{t}-threads"),
                ExecutorConfig::with_threads(t),
            )
        })
        .collect()
}

/// The delivery-backend matrix of `tests/backend_conformance.rs`: every
/// chunked thread count and every sharded shard count (with matching worker
/// counts), plus a single-threaded sharded layout — all pinned against the
/// sequential baseline.
pub fn backend_matrix() -> Vec<(String, ExecutorConfig)> {
    let mut cfgs = vec![(
        "sequential/explicit".to_string(),
        ExecutorConfig::sequential(),
    )];
    for t in [1usize, 2, 4, 8] {
        cfgs.push((format!("chunked/{t}"), ExecutorConfig::with_threads(t)));
    }
    for s in [1usize, 2, 4, 8] {
        cfgs.push((format!("sharded/{s}"), ExecutorConfig::sharded(s)));
        cfgs.push((
            format!("sharded/{s}-1thread"),
            ExecutorConfig {
                threads: 1,
                backend: DeliveryBackend::Sharded { shards: s },
            },
        ));
    }
    cfgs
}

/// The wall-clock sweep of the registry bench (`BENCH_suite.json`): the
/// sequential baseline, the chunked backend at hardware threads, and the
/// sharded backend at 2/4/8 shards (one worker per shard). Narrower than
/// [`backend_matrix`] — the bench measures layout/fan-out, the tests prove
/// conformance.
pub fn bench_matrix() -> Vec<(String, ExecutorConfig)> {
    let mut cfgs = vec![
        ("sequential".to_string(), ExecutorConfig::sequential()),
        ("chunked/hw".to_string(), ExecutorConfig::with_threads(0)),
    ];
    for s in [2usize, 4, 8] {
        cfgs.push((format!("sharded/{s}"), ExecutorConfig::sharded(s)));
    }
    cfgs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_labelled_uniquely() {
        for matrix in [thread_matrix(), backend_matrix(), bench_matrix()] {
            let mut labels: Vec<&str> = matrix.iter().map(|(l, _)| l.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), matrix.len());
        }
    }

    #[test]
    fn backend_matrix_covers_all_backends() {
        let m = backend_matrix();
        assert!(m
            .iter()
            .any(|(_, c)| c.backend == DeliveryBackend::Sequential));
        assert!(m.iter().any(|(_, c)| c.backend == DeliveryBackend::Chunked));
        assert!(m
            .iter()
            .any(|(_, c)| matches!(c.backend, DeliveryBackend::Sharded { .. })));
    }
}
