//! The closure-driven [`Workload`] adapter every registry entry is built from.
//!
//! A workload is four closures — build, execute, oracle, envelope — plus the
//! naming triple. [`FnWorkload`] erases the typed intermediate value `T`
//! (per-node outputs, MST edge sets, LDC decompositions, …) into the
//! [`RunOutcome`]'s canonical `Debug` rendering, while the oracle closure still
//! sees the typed value. The helpers in [`crate::catalogue`] specialize this
//! for the BCONGEST/CONGEST runners; composite algorithms (APSP, MST, LDC)
//! pass their entry points directly.

use crate::{BuiltInput, MetricsEnvelope, RunOutcome, Workload};
use congest_engine::{EngineError, ExecutorConfig, Metrics, TraceLog};
use std::fmt;

pub(crate) type BuildFn = Box<dyn Fn() -> BuiltInput + Send + Sync>;
pub(crate) type ExecFn<T> =
    Box<dyn Fn(&BuiltInput, &ExecutorConfig) -> Result<(T, Metrics), EngineError> + Send + Sync>;
pub(crate) type OracleFn<T> = Box<dyn Fn(&BuiltInput, &T) -> Result<(), String> + Send + Sync>;
pub(crate) type EnvelopeFn = Box<dyn Fn(&BuiltInput) -> MetricsEnvelope + Send + Sync>;
/// Records a per-round trace of the run (engine-runner entries only; composite
/// entries fall back to the outcome-level trace the trait default builds).
/// The `&str` argument is the entry's registry name, stamped into the header.
pub(crate) type TraceFn = Box<
    dyn Fn(&BuiltInput, &ExecutorConfig, &str) -> Result<(RunOutcome, TraceLog), EngineError>
        + Send
        + Sync,
>;

/// A [`Workload`] assembled from closures over a typed intermediate value `T`.
pub(crate) struct FnWorkload<T: fmt::Debug> {
    pub algorithm: &'static str,
    pub family: String,
    pub seed: u64,
    pub build: BuildFn,
    pub exec: ExecFn<T>,
    pub oracle: OracleFn<T>,
    pub envelope: EnvelopeFn,
    pub trace: Option<TraceFn>,
}

impl<T: fmt::Debug> Workload for FnWorkload<T> {
    fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    fn family(&self) -> &str {
        &self.family
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn build(&self) -> BuiltInput {
        (self.build)()
    }

    fn run_built(
        &self,
        input: &BuiltInput,
        cfg: &ExecutorConfig,
    ) -> Result<RunOutcome, EngineError> {
        let (value, metrics) = (self.exec)(input, cfg)?;
        Ok(RunOutcome {
            output: format!("{value:?}"),
            metrics,
        })
    }

    fn run_traced(&self, cfg: &ExecutorConfig) -> Result<(RunOutcome, TraceLog), EngineError> {
        let input = (self.build)();
        match &self.trace {
            Some(trace) => trace(&input, cfg, &self.name()),
            None => {
                let outcome = self.run_built(&input, cfg)?;
                let trace = TraceLog::composite(
                    &self.name(),
                    &input.graph,
                    self.seed,
                    cfg,
                    outcome.output.clone(),
                    &outcome.metrics,
                );
                Ok((outcome, trace))
            }
        }
    }

    fn oracle(&self) -> Result<(), String> {
        let input = (self.build)();
        let (value, _metrics) = (self.exec)(&input, &ExecutorConfig::sequential())
            .map_err(|e| format!("{}: sequential run failed: {e}", self.name()))?;
        (self.oracle)(&input, &value).map_err(|e| format!("{}: {e}", self.name()))
    }

    fn envelope(&self) -> MetricsEnvelope {
        (self.envelope)(&(self.build)())
    }
}
