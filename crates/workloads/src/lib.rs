//! # congest-workloads
//!
//! The workspace's **workload registry**: every distributed algorithm, wrapped
//! once as a named [`Workload`] with a deterministic input builder, an
//! executor-parameterized runner, a differential oracle, and a declared cost
//! envelope. Registering a workload here automatically buys it:
//!
//! * the **backend-conformance matrix** (`tests/backend_conformance.rs` runs
//!   every registry entry under every [`DeliveryBackend`] and asserts
//!   byte-identical [`RunOutcome`]s);
//! * the **thread-determinism pins** (`tests/parallel_determinism.rs`, same
//!   contract across worker counts);
//! * the **oracle/invariant suite** (`tests/workload_registry.rs` checks
//!   unique names, deterministic builds, oracle validity, and envelope
//!   compliance);
//! * the **registry bench** (`congest_bench::suite_bench` times every entry
//!   under every backend into `BENCH_suite.json` with exact counts).
//!
//! The paper frames APSP, MST, matchings and "beyond" as one family with
//! shared primitives; the registry mirrors that framing in code. Adding an
//! algorithm to the family is one [`registry`] entry (~50 lines including the
//! oracle), not a four-file wiring job.
//!
//! ## Anatomy of an entry
//!
//! ```
//! use congest_workloads::{registry, find};
//! use congest_engine::ExecutorConfig;
//!
//! let w = find("gossip/path").expect("registered workload");
//! let seq = w.run(&ExecutorConfig::sequential()).unwrap();
//! let sharded = w.run(&ExecutorConfig::sharded(4)).unwrap();
//! assert_eq!(seq, sharded);            // the conformance contract
//! w.oracle().unwrap();                 // the differential check
//! assert!(registry().len() >= 10);
//! ```
//!
//! [`DeliveryBackend`]: congest_engine::DeliveryBackend

mod adapter;
mod catalogue;
pub mod configs;
pub mod make;

pub use catalogue::{family_graph, graph_families, registry, FAMILIES};
pub use congest_engine::TraceLog;

use congest_engine::{EngineError, ExecutorConfig, Metrics};
use congest_graph::{Graph, WeightedGraph};

/// The deterministically (re)built input of one workload: the graph, plus
/// per-edge weights for the weighted problems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuiltInput {
    /// The topology.
    pub graph: Graph,
    /// Per-edge weights (indexed by `EdgeId`), if the workload is weighted.
    pub weights: Option<Vec<u64>>,
}

impl BuiltInput {
    /// An unweighted input.
    pub fn unweighted(graph: Graph) -> Self {
        Self {
            graph,
            weights: None,
        }
    }

    /// A weighted input.
    pub fn weighted(wg: WeightedGraph) -> Self {
        let weights = wg.weights().to_vec();
        Self {
            graph: wg.graph().clone(),
            weights: Some(weights),
        }
    }

    /// The weighted view of this input.
    ///
    /// # Panics
    ///
    /// Panics if the input has no weights (callers pair this with weighted
    /// builders only).
    pub fn weighted_graph(&self) -> WeightedGraph {
        let weights = self
            .weights
            .clone()
            .expect("workload input carries weights");
        WeightedGraph::from_weights(self.graph.clone(), weights)
            .expect("one weight per edge by construction")
    }
}

/// The erased outcome of one workload execution: a canonical rendering of the
/// per-node outputs plus the exact realized [`Metrics`]. Two outcomes compare
/// equal iff outputs **and** every cost measure (rounds, messages, broadcasts,
/// the full per-edge congestion vector) agree — the unit of the conformance
/// contract.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Deterministic `Debug`-derived rendering of the workload's outputs.
    pub output: String,
    /// Exact realized cost.
    pub metrics: Metrics,
}

/// Declared cost bounds for a workload, where the paper (or a closed-form
/// argument) gives one. `None` means "no bound claimed", not "unbounded cost".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsEnvelope {
    /// Hard upper bound on total messages.
    pub max_messages: Option<u64>,
    /// Hard upper bound on rounds.
    pub max_rounds: Option<u64>,
    /// The **memory envelope**: a hard upper bound on the *average* wire size
    /// of a delivered message, in bytes — the check is
    /// `payload_bytes ≤ max_message_bytes × messages` against the exact
    /// [`Metrics::payload_bytes`] both message planes charge identically.
    /// Engine-runner entries get this auto-filled with the packed codec width
    /// (`4 × LANES`); composite entries declare a bound on their mix.
    pub max_message_bytes: Option<u64>,
}

impl MetricsEnvelope {
    /// No declared bounds.
    pub const fn unbounded() -> Self {
        Self {
            max_messages: None,
            max_rounds: None,
            max_message_bytes: None,
        }
    }

    /// A message bound only.
    pub const fn messages(max: u64) -> Self {
        Self {
            max_messages: Some(max),
            max_rounds: None,
            max_message_bytes: None,
        }
    }

    /// Message and round bounds.
    pub const fn bounds(max_messages: u64, max_rounds: u64) -> Self {
        Self {
            max_messages: Some(max_messages),
            max_rounds: Some(max_rounds),
            max_message_bytes: None,
        }
    }

    /// Adds (or replaces) the memory envelope: at most `bytes` per message on
    /// average.
    pub const fn with_message_bytes(mut self, bytes: u64) -> Self {
        self.max_message_bytes = Some(bytes);
        self
    }

    /// Checks `metrics` against the declared bounds.
    ///
    /// # Errors
    ///
    /// Describes the first violated bound.
    pub fn check(&self, metrics: &Metrics) -> Result<(), String> {
        if let Some(b) = self.max_messages {
            if metrics.messages > b {
                return Err(format!("messages {} exceed envelope {b}", metrics.messages));
            }
        }
        if let Some(b) = self.max_rounds {
            if metrics.rounds > b {
                return Err(format!("rounds {} exceed envelope {b}", metrics.rounds));
            }
        }
        if let Some(b) = self.max_message_bytes {
            if metrics.payload_bytes > b.saturating_mul(metrics.messages) {
                return Err(format!(
                    "payload bytes {} exceed the {b}-byte/message memory envelope over {} messages",
                    metrics.payload_bytes, metrics.messages
                ));
            }
        }
        Ok(())
    }
}

/// One registered workload: a named `(algorithm, graph family, seed)` triple
/// with a deterministic builder, an executor-parameterized runner, a
/// differential oracle, and a declared [`MetricsEnvelope`].
///
/// Implementations must guarantee:
///
/// * [`build`](Workload::build) is a pure function of the entry (two calls
///   return equal [`BuiltInput`]s);
/// * [`run`](Workload::run) is deterministic **per configuration** and
///   byte-identical **across configurations** — every
///   [`ExecutorConfig`] yields the same [`RunOutcome`];
/// * [`oracle`](Workload::oracle) validates a sequential run against an
///   engine-independent reference (sequential oracle or closed-form check).
pub trait Workload: Send + Sync {
    /// The algorithm component of the name (shared by sibling entries).
    fn algorithm(&self) -> &'static str;

    /// The graph-family component of the name.
    fn family(&self) -> &str;

    /// Unique registry key: `algorithm/family`.
    fn name(&self) -> String {
        format!("{}/{}", self.algorithm(), self.family())
    }

    /// The master seed `run` executes with.
    fn seed(&self) -> u64;

    /// Deterministically (re)builds the workload input.
    fn build(&self) -> BuiltInput;

    /// Runs the workload under `cfg`, building the input first. Equivalent to
    /// `self.run_built(&self.build(), cfg)`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (round guards, budget overdrafts).
    fn run(&self, cfg: &ExecutorConfig) -> Result<RunOutcome, EngineError> {
        self.run_built(&self.build(), cfg)
    }

    /// Runs the workload under `cfg` on an already-built input (callers must
    /// pass this entry's own [`build`](Workload::build) output). The benches
    /// time this form, so graph/weight construction stays outside the timed
    /// section.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (round guards, budget overdrafts).
    fn run_built(
        &self,
        input: &BuiltInput,
        cfg: &ExecutorConfig,
    ) -> Result<RunOutcome, EngineError>;

    /// Runs the workload under `cfg` and records a replayable [`TraceLog`]
    /// alongside the outcome. Engine-runner entries record every per-round
    /// delivery and fault event; composite entries (multi-phase workloads with
    /// no single runner loop) record an outcome-level trace — either way
    /// [`replay`] can re-execute and conformance-check the result.
    ///
    /// The returned outcome equals what [`run`](Workload::run) produces under
    /// the same `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (round guards, budget overdrafts).
    fn run_traced(&self, cfg: &ExecutorConfig) -> Result<(RunOutcome, TraceLog), EngineError> {
        let input = self.build();
        let outcome = self.run_built(&input, cfg)?;
        let trace = TraceLog::composite(
            &self.name(),
            &input.graph,
            self.seed(),
            cfg,
            outcome.output.clone(),
            &outcome.metrics,
        );
        Ok((outcome, trace))
    }

    /// Runs sequentially and validates the result against the workload's
    /// reference oracle.
    ///
    /// # Errors
    ///
    /// Describes the first oracle violation (or a failed run).
    fn oracle(&self) -> Result<(), String>;

    /// The declared cost bounds for this entry's input.
    fn envelope(&self) -> MetricsEnvelope;
}

/// Looks up a registry entry by its unique `algorithm/family` name.
pub fn find(name: &str) -> Option<Box<dyn Workload>> {
    registry().into_iter().find(|w| w.name() == name)
}

/// Replays a recorded trace: looks up the workload named in the header,
/// re-executes it under the recorded executor configuration, and checks the
/// fresh trace is **identical** to the recorded one — same per-round fault
/// events and deliveries (byte-for-byte, lane by lane), same outputs, and the
/// same exact [`Metrics`] including the per-edge congestion vector.
///
/// This is the conformance layer's closure property: a trace is not just a
/// log, it is a reproducible claim about the execution.
///
/// # Errors
///
/// Describes the first divergence, an unknown workload name, or a failed run.
pub fn replay(trace: &TraceLog) -> Result<(), String> {
    let w = find(&trace.workload)
        .ok_or_else(|| format!("no registry entry named {:?}", trace.workload))?;
    let cfg = trace.exec_config()?;
    let (_, fresh) = w
        .run_traced(&cfg)
        .map_err(|e| format!("{}: replay run failed: {e}", trace.workload))?;
    trace.conforms(&fresh)
}
