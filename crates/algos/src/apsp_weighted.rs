//! Weighted all-pairs shortest paths in BCONGEST — the substitute for the
//! Bernstein–Nanongkai black box of Theorem 1.1 (see DESIGN.md §2).
//!
//! The algorithm runs `n` *weight-delayed Dijkstra* explorations simultaneously: for
//! source `s`, a node that learns distance `d` schedules its one broadcast of `(s, d)`
//! no earlier than round `d`. With no queueing this makes every broadcast final
//! (wavefronts travel at "speed = weight", exactly Dijkstra's order), so broadcast
//! complexity is one per (node, source) pair — `n²` total. Queueing (a node may hold
//! many pending pairs but sends one message per round) can let a slower path arrive
//! first; *re-broadcast on improvement* restores unconditional exactness, and the
//! tests measure how rare those re-broadcasts are.
//!
//! Complexities (measured by the benches): broadcast complexity `B ≈ n²`, rounds
//! `O(wdiam + n)` where `wdiam` is the weighted diameter. Both are what Theorem 1.1
//! consumes.

use congest_engine::{
    AggregationAlgorithm, BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode,
};
use congest_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Message: the sender's (current) distance from `source`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WApspMsg {
    /// Source node index.
    pub source: u32,
    /// Sender's distance from that source.
    pub dist: u64,
}

impl Wire for WApspMsg {}

impl WireEncode for WApspMsg {
    const LANES: usize = 3;
    fn encode(&self, out: &mut [u32]) {
        out[0] = self.source;
        self.dist.encode(&mut out[1..]);
    }
}

impl WireDecode for WApspMsg {
    fn decode(lanes: &[u32]) -> Self {
        Self {
            source: lanes[0],
            dist: u64::decode(&lanes[1..]),
        }
    }
}

/// All-sources weight-delayed Dijkstra (exact weighted APSP in BCONGEST).
///
/// `max_weight` must upper-bound every edge weight (it only affects the round guard,
/// not correctness).
///
/// # Examples
///
/// ```
/// use congest_algos::apsp_weighted::WeightedApsp;
/// use congest_engine::{run_bcongest, RunOptions};
/// use congest_graph::{generators, reference, WeightedGraph, NodeId};
///
/// let g = generators::gnp_connected(15, 0.2, 1);
/// let wg = WeightedGraph::random_weights(&g, 1..=6, 1);
/// let algo = WeightedApsp::new(6);
/// let run = run_bcongest(&algo, &g, Some(wg.weights()), &RunOptions::default()).unwrap();
/// let want = reference::all_pairs_dijkstra(&wg);
/// for v in 0..15 {
///     for s in 0..15 {
///         assert_eq!(run.outputs[v].dist[s], want[s][v]);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct WeightedApsp {
    max_weight: u64,
}

impl WeightedApsp {
    /// Creates the algorithm; `max_weight` bounds the edge weights.
    pub fn new(max_weight: u64) -> Self {
        Self { max_weight }
    }
}

/// Per-node output: exact distances (and shortest-path-tree parents) to every source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WApspOutput {
    /// `dist[s]` = weighted distance from node `s` (None: unreachable).
    pub dist: Vec<Option<u64>>,
    /// `parent[s]` = predecessor towards source `s`.
    pub parent: Vec<Option<NodeId>>,
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct WApspState {
    /// Incident weights, keyed by neighbor (each node knows its incident edges).
    weight_to: BTreeMap<NodeId, u64>,
    dist: Vec<Option<u64>>,
    parent: Vec<Option<NodeId>>,
    sent_dist: Vec<Option<u64>>,
    /// Pending broadcasts: (ready round = distance, source). The round-gating is what
    /// makes broadcasts (almost always) final.
    queue: BTreeSet<(u64, u32)>,
    /// Statistics: broadcasts that were repeats after an improvement.
    pub rebroadcasts: u64,
}

impl BcongestAlgorithm for WeightedApsp {
    type State = WApspState;
    type Msg = WApspMsg;
    type Output = WApspOutput;

    fn name(&self) -> &'static str {
        "weighted-apsp"
    }

    fn init(&self, view: &LocalView<'_>) -> WApspState {
        let n = view.n();
        let mut s = WApspState {
            weight_to: view.incident().map(|(_, u, w)| (u, w)).collect(),
            dist: vec![None; n],
            parent: vec![None; n],
            sent_dist: vec![None; n],
            queue: BTreeSet::new(),
            rebroadcasts: 0,
        };
        let me = view.node();
        s.dist[me.index()] = Some(0);
        s.queue.insert((0, me.raw()));
        s
    }

    fn broadcast(&self, s: &WApspState, round: usize) -> Option<WApspMsg> {
        let &(ready, src) = s.queue.first()?;
        (ready <= round as u64).then(|| WApspMsg {
            source: src,
            dist: s.dist[src as usize].expect("queued source has a distance"),
        })
    }

    fn on_broadcast_sent(&self, s: &mut WApspState, _round: usize) {
        let (_, src) = s.queue.pop_first().expect("a broadcast was just collected");
        if s.sent_dist[src as usize].is_some() {
            s.rebroadcasts += 1;
        }
        s.sent_dist[src as usize] = s.dist[src as usize];
    }

    fn receive(&self, s: &mut WApspState, _round: usize, msgs: &[(NodeId, WApspMsg)]) {
        let mut sorted: Vec<&(NodeId, WApspMsg)> = msgs.iter().collect();
        sorted.sort_unstable_by_key(|(from, m)| (m.source, m.dist, *from));
        for &&(from, m) in &sorted {
            let w = *s
                .weight_to
                .get(&from)
                .expect("messages arrive only from neighbors");
            let cand = m.dist + w;
            let j = m.source as usize;
            let better = s.dist[j].is_none_or(|d| cand < d);
            if !better {
                continue;
            }
            if let Some(old) = s.dist[j] {
                s.queue.remove(&(old, m.source));
            }
            s.dist[j] = Some(cand);
            s.parent[j] = Some(from);
            if s.sent_dist[j] != Some(cand) {
                s.queue.insert((cand, m.source));
            }
        }
    }

    fn is_done(&self, s: &WApspState) -> bool {
        s.queue.is_empty()
    }

    fn output(&self, s: &WApspState) -> WApspOutput {
        WApspOutput {
            dist: s.dist.clone(),
            parent: s.parent.clone(),
        }
    }

    fn next_activity(&self, s: &WApspState, after: usize) -> Option<usize> {
        s.queue
            .first()
            .map(|&(ready, _)| after.max(usize::try_from(ready).unwrap_or(usize::MAX)))
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        // Longest possible shortest path plus queueing slack.
        (n.saturating_mul(self.max_weight.max(1) as usize))
            .saturating_add(4 * n)
            .saturating_add(64)
    }

    fn output_words(&self, out: &WApspOutput) -> usize {
        out.dist.len().max(1)
    }
}

impl AggregationAlgorithm for WeightedApsp {
    fn aggregate(
        &self,
        _receiver: NodeId,
        _round: usize,
        msgs: Vec<(NodeId, WApspMsg)>,
    ) -> Vec<(NodeId, WApspMsg)> {
        // Keep, per source, the message minimizing (dist, sender).
        //
        // Note: because different neighbors sit at different edge weights from the
        // receiver, the per-source minimum *message* is not always the minimum
        // *candidate distance*; aggregation here is only used when the receiver-side
        // weights are equal (unit-weight runs) or as a lossy heuristic. The exact
        // weighted algorithm is exercised through Theorem 2.1 (which needs no
        // aggregation); see DESIGN.md.
        let mut best: BTreeMap<u32, (u64, NodeId)> = BTreeMap::new();
        for (from, m) in msgs {
            let e = best.entry(m.source).or_insert((m.dist, from));
            if (m.dist, from) < *e {
                *e = (m.dist, from);
            }
        }
        best.into_iter()
            .map(|(source, (dist, from))| (from, WApspMsg { source, dist }))
            .collect()
    }

    fn aggregate_budget(&self, n: usize) -> usize {
        n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::{generators, reference, WeightedGraph};

    fn check_against_dijkstra(g: &congest_graph::Graph, wg: &WeightedGraph) {
        let algo = WeightedApsp::new(wg.max_weight());
        let run = run_bcongest(&algo, g, Some(wg.weights()), &RunOptions::default()).unwrap();
        let want = reference::all_pairs_dijkstra(wg);
        for v in g.nodes() {
            for (s, row) in want.iter().enumerate() {
                assert_eq!(
                    run.outputs[v.index()].dist[s],
                    row[v.index()],
                    "dist({s}, {v:?})"
                );
            }
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::gnp_connected(20, 0.15, seed);
            let wg = WeightedGraph::random_weights(&g, 1..=9, seed);
            check_against_dijkstra(&g, &wg);
        }
    }

    #[test]
    fn exact_on_weighted_grid_and_caveman() {
        let g = generators::grid(5, 4);
        let wg = WeightedGraph::random_weights(&g, 1..=20, 5);
        check_against_dijkstra(&g, &wg);
        let g = generators::caveman(4, 5);
        let wg = WeightedGraph::random_weights(&g, 1..=3, 6);
        check_against_dijkstra(&g, &wg);
    }

    #[test]
    fn handles_zero_weights() {
        let g = generators::path(5);
        let wg = WeightedGraph::from_weights(g.clone(), vec![0, 2, 0, 1]).unwrap();
        check_against_dijkstra(&g, &wg);
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let g = generators::gnp_connected(18, 0.2, 9);
        let wg = WeightedGraph::unit(&g);
        let algo = WeightedApsp::new(1);
        let run = run_bcongest(&algo, &g, Some(wg.weights()), &RunOptions::default()).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for v in g.nodes() {
            for (s, row) in want.iter().enumerate() {
                assert_eq!(
                    run.outputs[v.index()].dist[s],
                    row[v.index()].map(u64::from)
                );
            }
        }
    }

    #[test]
    fn broadcast_complexity_near_n_squared() {
        let g = generators::gnp_connected(24, 0.15, 11);
        let wg = WeightedGraph::random_weights(&g, 1..=8, 11);
        let algo = WeightedApsp::new(8);
        let run = run_bcongest(&algo, &g, Some(wg.weights()), &RunOptions::default()).unwrap();
        let n = g.n() as u64;
        assert!(run.metrics.broadcasts >= n * n * 9 / 10);
        assert!(
            run.metrics.broadcasts <= n * n * 3 / 2,
            "B = {} vs n² = {}",
            run.metrics.broadcasts,
            n * n
        );
    }

    #[test]
    fn rounds_scale_with_weighted_diameter() {
        let g = generators::path(10);
        let wg = WeightedGraph::from_weights(g.clone(), vec![10; 9]).unwrap();
        let algo = WeightedApsp::new(10);
        let run = run_bcongest(&algo, &g, Some(wg.weights()), &RunOptions::default()).unwrap();
        // Weighted diameter is 90; the round-gating means at least that many rounds.
        assert!(run.metrics.rounds >= 90);
        assert!(run.metrics.rounds <= 90 + 4 * 10 + 64);
    }
}
