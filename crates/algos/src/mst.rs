//! Message-efficient distributed minimum spanning tree: controlled-GHS fragment
//! merging with exact message/round accounting.
//!
//! This is the "Beyond APSP" workload family: the paper's title problem generalizes to
//! the MST results of Pandurangan–Robinson–Scquizzato (time- and message-optimal MST,
//! `Õ(m)` messages) and the Gmyr–Pandurangan time–message trade-off toolbox. The
//! algorithm here is the classic Gallager–Humblet–Spira merging structure, Borůvka
//! phased, built entirely from the engine's tree primitives:
//!
//! 1. **Fragment announcement** — every node whose fragment ID changed tells all its
//!    neighbors (1 round, `deg(v)` messages per changed node). A node's fragment at
//!    least doubles whenever its ID changes, so the total announcement cost is
//!    `O(m log n)` — the `Õ(m)` term.
//! 2. **MWOE search** — each node locally picks its lightest incident edge leaving the
//!    fragment (under the `(weight, EdgeId)` total order, so ties never break MST
//!    uniqueness), and the per-fragment minimum is folded to the fragment leader by
//!    [`congest_engine::treeops::convergecast`] over the fragment forest.
//! 3. **Merge** — each leader downcasts the chosen edge to its owning node
//!    ([`congest_engine::treeops::downcast`]), a connect message crosses the MWOE, the
//!    merged fragment re-roots at its minimum-ID node, and the new fragment ID floods
//!    down the new tree ([`congest_engine::treeops::broadcast`]).
//!
//! Fragments at least double per phase, so there are at most `⌈log₂ n⌉` phases; with
//! [`MstConfig::growth_threshold`] the merging stops once every still-active fragment
//! has at least `k` nodes — the handoff point for the trade-off finisher in
//! `apsp_core::mst_tradeoff`.
//!
//! Like every runner in this workspace the phase scans honor
//! [`MstConfig::exec`]: per-node work is chunk-parallel and the result — edges,
//! fragments, metrics, per-edge congestion — is byte-identical at every thread count.
//! The whole run (and each tree primitive inside it) can be capped by
//! [`MstConfig::message_budget`].

use congest_engine::treeops::{self, Forest};
use congest_engine::{exec, EngineError, ExecutorConfig, Metrics, Wire};
use congest_graph::{EdgeId, NodeId, WeightedGraph};

/// Sentinel weight meaning "no outgoing edge".
const NONE_WEIGHT: u64 = u64::MAX;

/// Convergecast payload of the MWOE search: the lightest known outgoing edge of (part
/// of) a fragment, with its owner. A constant number of values = one CONGEST word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MwoeMsg {
    /// Weight of the candidate edge (`NONE_WEIGHT` if there is none).
    weight: u64,
    /// Candidate edge index.
    edge: u32,
    /// Node owning the candidate (an endpoint inside the fragment).
    owner: u32,
}

impl MwoeMsg {
    const NONE: Self = Self {
        weight: NONE_WEIGHT,
        edge: u32::MAX,
        owner: u32::MAX,
    };

    fn is_none(self) -> bool {
        self.weight == NONE_WEIGHT
    }

    /// Tie-breaking total order: `(weight, edge)`.
    fn key(self) -> (u64, u32) {
        (self.weight, self.edge)
    }

    fn min(self, other: Self) -> Self {
        if other.key() < self.key() {
            other
        } else {
            self
        }
    }
}

impl Wire for MwoeMsg {}

/// Options for [`distributed_mst`]. The algorithm itself is deterministic (no
/// randomness is consumed), so there is no seed.
#[derive(Clone, Debug, Default)]
pub struct MstConfig {
    /// How per-node phase scans execute. Outputs and metrics are identical at every
    /// thread count.
    pub exec: ExecutorConfig,
    /// Hard cap on total messages; the run fails with
    /// [`EngineError::BudgetExceeded`] instead of overspending. `None` = unlimited.
    pub message_budget: Option<u64>,
    /// Stop merging once every fragment that still has an outgoing edge spans at
    /// least this many nodes (controlled-GHS growth). `None` = run to completion.
    pub growth_threshold: Option<usize>,
    /// Hard phase limit; `None` uses `⌈log₂ n⌉ + 3` (fragments at least double per
    /// phase, so that is never the binding constraint).
    pub max_phases: Option<usize>,
}

/// Result of a (possibly threshold-stopped) distributed MST run.
#[derive(Clone, Debug)]
pub struct MstRun {
    /// MST/MSF edges chosen so far, sorted ascending by [`EdgeId`].
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' weights.
    pub total_weight: u64,
    /// Fragment leader (= minimum node ID of the fragment) per node.
    pub fragment: Vec<NodeId>,
    /// The fragment forest: each fragment rooted at its leader, over chosen edges.
    pub forest: Forest,
    /// Merge phases executed.
    pub phases: u64,
    /// Whether fragments are exactly the connected components (no outgoing edges
    /// remain). `false` only when [`MstConfig::growth_threshold`] stopped the run.
    pub complete: bool,
    /// Realized cost: announcements + convergecasts + downcasts + connects +
    /// fragment-ID broadcasts.
    pub metrics: Metrics,
}

/// A generous closed-form `Õ(m)` message budget for a full [`distributed_mst`] run on
/// an `n`-node, `m`-edge graph: announcements cost `O(m)` per phase, the tree passes
/// `O(n)` per phase, over `⌈log₂ n⌉ + O(1)` phases.
///
/// The property tests and the bench harness run with this as a *hard*
/// [`MstConfig::message_budget`], so the bound is enforced, not just documented.
pub fn message_bound(n: usize, m: usize) -> u64 {
    let phases = (n.max(2) as f64).log2().ceil() as u64 + 3;
    (2 * m as u64 + 6 * n as u64 + 8) * phases
}

/// Runs the GHS-style distributed MST (minimum spanning forest on disconnected
/// graphs) under the `(weight, EdgeId)` total order.
///
/// # Errors
///
/// [`EngineError::BudgetExceeded`] if [`MstConfig::message_budget`] is hit;
/// [`EngineError::RoundLimitExceeded`] if the phase guard fires (cannot happen with
/// the default guard).
pub fn distributed_mst(wg: &WeightedGraph, cfg: &MstConfig) -> Result<MstRun, EngineError> {
    let g = wg.graph();
    let n = g.n();
    let mut metrics = Metrics::new(g.m());
    let mut fragment: Vec<NodeId> = g.nodes().collect();
    let mut forest = Forest::from_parents(g, vec![None; n])?;
    let mut in_mst = vec![false; g.m()];
    let mut edges: Vec<EdgeId> = Vec::new();

    // Phase 0 announcement: every node tells its neighbors its (singleton) fragment.
    let all_changed = vec![true; n];
    charge_announcements(wg, cfg, &all_changed, &mut metrics)?;

    let limit = cfg
        .max_phases
        .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize + 3);
    let mut phases = 0u64;
    let mut complete = false;
    loop {
        // Per-node MWOE candidates (chunk-parallel; concatenation in chunk order).
        let cands: Vec<MwoeMsg> = exec::map_ranges(&cfg.exec, n, |range| {
            range
                .map(|vi| {
                    let v = NodeId::new(vi);
                    let mut best = MwoeMsg::NONE;
                    for (e, u, w) in wg.incident(v) {
                        if fragment[u.index()] != fragment[vi] {
                            best = best.min(MwoeMsg {
                                weight: w,
                                edge: e.index() as u32,
                                owner: vi as u32,
                            });
                        }
                    }
                    best
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Termination: no fragment has an outgoing edge ⇒ fragments = components.
        if cands.iter().all(|c| c.is_none()) {
            complete = true;
            break;
        }
        // Controlled growth: stop once every active fragment has ≥ threshold nodes.
        if let Some(k) = cfg.growth_threshold {
            let mut size = vec![0usize; n];
            for f in &fragment {
                size[f.index()] += 1;
            }
            let small_active = g
                .nodes()
                .any(|v| !cands[v.index()].is_none() && size[fragment[v.index()].index()] < k);
            if !small_active {
                break;
            }
        }
        if phases as usize >= limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: "ghs-mst",
                limit,
            });
        }
        phases += 1;

        // Fold per-node candidates to each fragment leader (through the
        // configured delivery backend — per-fragment shard locality).
        let cc = treeops::convergecast_with(
            g,
            &forest,
            cands,
            MwoeMsg::min,
            remaining(cfg.message_budget, &metrics),
            &cfg.exec,
        )?;
        metrics.merge_sequential(&cc.metrics);

        // Leaders downcast the decision to the MWOE's owner...
        let decisions: Vec<(NodeId, u64)> = forest
            .roots()
            .iter()
            .zip(&cc.at_root)
            .filter(|(_, c)| !c.is_none())
            .map(|(_, c)| (NodeId::new(c.owner as usize), u64::from(c.edge)))
            .collect();
        let chosen: Vec<EdgeId> = decisions
            .iter()
            .map(|&(_, e)| EdgeId::new(e as usize))
            .collect();
        let dc = treeops::downcast_with(g, &forest, decisions, &cfg.exec)?;
        metrics.merge_sequential(&dc.metrics);
        treeops::ensure_budget("ghs-mst", metrics.messages, cfg.message_budget)?;

        // ...and a connect message crosses each chosen MWOE (one round, one word per
        // choosing fragment — two fragments picking the same edge both send).
        let mut connect = Metrics::new(g.m());
        connect.rounds = 1;
        for &e in &chosen {
            connect.add_messages(e, 1);
        }
        metrics.merge_sequential(&connect);

        // Merge: new fragments are the components of the chosen-so-far edge set.
        for e in chosen {
            if !in_mst[e.index()] {
                in_mst[e.index()] = true;
                edges.push(e);
            }
        }
        let (new_fragment, new_parent) = fragments_of(wg, &in_mst);
        let changed: Vec<bool> = (0..n).map(|v| new_fragment[v] != fragment[v]).collect();
        forest = Forest::from_parents(g, new_parent)?;

        // Leaders of grown fragments flood the new fragment ID down the new tree.
        let mut grew = vec![false; n];
        for v in 0..n {
            if changed[v] {
                grew[new_fragment[v].index()] = true;
            }
        }
        let payloads: Vec<(NodeId, u64)> = forest
            .roots()
            .iter()
            .filter(|r| grew[r.index()])
            .map(|&r| (r, u64::from(r.raw())))
            .collect();
        let bc = treeops::broadcast_with(
            g,
            &forest,
            payloads,
            remaining(cfg.message_budget, &metrics),
            &cfg.exec,
        )?;
        metrics.merge_sequential(&bc.metrics);
        fragment = new_fragment;

        // Changed nodes re-announce their fragment to their neighbors.
        charge_announcements(wg, cfg, &changed, &mut metrics)?;
    }

    edges.sort_unstable();
    let total_weight = edges.iter().map(|&e| wg.weight(e)).sum();
    Ok(MstRun {
        edges,
        total_weight,
        fragment,
        forest,
        phases,
        complete,
        metrics,
    })
}

/// Remaining budget after `metrics`, for handing to a budgeted tree primitive.
fn remaining(budget: Option<u64>, metrics: &Metrics) -> Option<u64> {
    budget.map(|b| b.saturating_sub(metrics.messages))
}

/// Charges one announcement round: every `changed` node sends one word over each
/// incident edge. Chunk-parallel with per-chunk batches merged in chunk order, so the
/// congestion vector is identical at every thread count. Free if nothing changed.
fn charge_announcements(
    wg: &WeightedGraph,
    cfg: &MstConfig,
    changed: &[bool],
    metrics: &mut Metrics,
) -> Result<(), EngineError> {
    let g = wg.graph();
    let batches: Vec<Vec<(EdgeId, u64)>> = exec::map_ranges(&cfg.exec, g.n(), |range| {
        let mut out = Vec::new();
        for vi in range {
            if changed[vi] {
                for &e in g.incident_edges(NodeId::new(vi)) {
                    out.push((e, 1u64));
                }
            }
        }
        out
    });
    let mut phase = Metrics::new(g.m());
    for b in batches {
        phase.add_messages_batch(b);
    }
    if phase.messages > 0 {
        phase.rounds = 1;
        metrics.merge_sequential(&phase);
    }
    treeops::ensure_budget("ghs-mst", metrics.messages, cfg.message_budget)?;
    Ok(())
}

/// Components of the chosen-edge subgraph: per-node leader (minimum member ID) and
/// parent pointers of a BFS tree rooted at each leader (children visited in ascending
/// neighbor order — deterministic).
fn fragments_of(wg: &WeightedGraph, in_mst: &[bool]) -> (Vec<NodeId>, Vec<Option<NodeId>>) {
    let g = wg.graph();
    let n = g.n();
    let mut leader: Vec<Option<NodeId>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for s in g.nodes() {
        if leader[s.index()].is_some() {
            continue;
        }
        // `s` is the minimum ID of its component (nodes are scanned in order).
        leader[s.index()] = Some(s);
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for (e, u) in g.incident(v) {
                if in_mst[e.index()] && leader[u.index()].is_none() {
                    leader[u.index()] = Some(s);
                    parent[u.index()] = Some(v);
                    queue.push_back(u);
                }
            }
        }
    }
    (
        leader
            .into_iter()
            .map(|l| l.expect("all visited"))
            .collect(),
        parent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    fn unique(n: usize, p: f64, seed: u64) -> WeightedGraph {
        let g = generators::gnp_connected(n, p, seed);
        WeightedGraph::random_unique_weights(&g, seed)
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..6u64 {
            let wg = unique(30, 0.15, seed);
            let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
            let want = reference::mst_kruskal(&wg);
            assert_eq!(run.edges, want.edges, "seed {seed}");
            assert_eq!(run.total_weight, want.total_weight);
            assert!(run.complete);
            assert!(reference::is_spanning_forest(wg.graph(), &run.edges));
        }
    }

    #[test]
    fn tie_heavy_instances_match_oracle() {
        // Unit weights everywhere: every edge ties; (weight, EdgeId) decides.
        for g in [
            generators::complete(10),
            generators::grid(4, 5),
            generators::caveman(4, 5),
        ] {
            let wg = WeightedGraph::unit(&g);
            let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
            assert_eq!(run.edges, reference::mst_kruskal(&wg).edges);
        }
    }

    #[test]
    fn fragment_leaders_are_component_minima() {
        let wg = unique(25, 0.2, 3);
        let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
        assert!(run.fragment.iter().all(|f| f.index() == 0)); // connected ⇒ one fragment
        assert_eq!(run.forest.roots(), &[NodeId::new(0)]);
    }

    #[test]
    fn spanning_forest_on_disconnected_graphs() {
        let g = congest_graph::Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (5, 6)]);
        let wg = WeightedGraph::from_weights(g, vec![4, 2, 7, 1, 3]).unwrap();
        let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
        let want = reference::mst_kruskal(&wg);
        assert_eq!(run.edges, want.edges);
        assert_eq!(run.total_weight, 4 + 2 + 1 + 3);
        assert_eq!(run.fragment[2], NodeId::new(0));
        assert_eq!(run.fragment[4], NodeId::new(3));
        assert_eq!(run.fragment[6], NodeId::new(5));
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let wg = unique(64, 0.12, 7);
        let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
        assert!(run.phases <= 9, "phases = {}", run.phases); // ⌈log₂ 64⌉ + slack
    }

    #[test]
    fn stays_within_the_message_bound() {
        for seed in 0..4u64 {
            let wg = unique(40, 0.2, seed);
            let cfg = MstConfig {
                message_budget: Some(message_bound(wg.n(), wg.m())),
                ..Default::default()
            };
            let run = distributed_mst(&wg, &cfg).unwrap();
            assert!(run.metrics.messages <= message_bound(wg.n(), wg.m()));
        }
    }

    #[test]
    fn tiny_budget_fails_loudly() {
        let wg = unique(20, 0.3, 1);
        let cfg = MstConfig {
            message_budget: Some(5),
            ..Default::default()
        };
        let err = distributed_mst(&wg, &cfg).unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }));
    }

    #[test]
    fn growth_threshold_stops_early_with_valid_partial_forest() {
        let wg = unique(40, 0.15, 9);
        let cfg = MstConfig {
            growth_threshold: Some(4),
            ..Default::default()
        };
        let run = distributed_mst(&wg, &cfg).unwrap();
        assert!(!run.complete);
        // Every fragment has ≥ 4 nodes, and every chosen edge is in the true MST.
        let mut size = vec![0usize; wg.n()];
        for f in &run.fragment {
            size[f.index()] += 1;
        }
        assert!(run.fragment.iter().all(|f| size[f.index()] >= 4));
        let want = reference::mst_kruskal(&wg);
        for e in &run.edges {
            assert!(want.edges.contains(e), "{e:?} not in the MST");
        }
        assert!(run.edges.len() < wg.n() - 1);
    }

    #[test]
    fn trivial_graphs() {
        let empty = WeightedGraph::unit(&congest_graph::Graph::from_edges(0, &[]));
        let run = distributed_mst(&empty, &MstConfig::default()).unwrap();
        assert!(run.edges.is_empty() && run.complete);
        let single = WeightedGraph::unit(&congest_graph::Graph::from_edges(1, &[]));
        let run = distributed_mst(&single, &MstConfig::default()).unwrap();
        assert!(run.edges.is_empty() && run.complete && run.phases == 0);
        assert_eq!(run.metrics.messages, 0);
    }

    #[test]
    fn deterministic_across_repeats() {
        let wg = WeightedGraph::random_weights(&generators::gnp_connected(24, 0.25, 2), 1..=4, 2);
        let a = distributed_mst(&wg, &MstConfig::default()).unwrap();
        let b = distributed_mst(&wg, &MstConfig::default()).unwrap();
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.fragment, b.fragment);
    }
}
