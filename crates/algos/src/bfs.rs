//! Single-source (partial) BFS as a BCONGEST algorithm.
//!
//! This is the "standard BFS algorithm" the paper assumes in Theorem 1.4: each node
//! broadcasts exactly once, on first receiving a BFS exploration message. A depth limit
//! makes it a *partial* BFS, and a start delay makes it schedulable by the random-delays
//! technique.

use congest_engine::{BcongestAlgorithm, LocalView};
use congest_graph::NodeId;

/// Single-source BFS: computes hop distance and a BFS parent for every node within
/// `depth_limit` of `source`. Broadcast complexity: at most one broadcast per reached
/// node.
///
/// # Examples
///
/// ```
/// use congest_algos::bfs::Bfs;
/// use congest_engine::{run_bcongest, RunOptions};
/// use congest_graph::{generators, NodeId};
///
/// let g = generators::path(4);
/// let run = run_bcongest(&Bfs::new(NodeId::new(0)), &g, None, &RunOptions::default()).unwrap();
/// assert_eq!(run.outputs[3].dist, Some(3));
/// assert_eq!(run.outputs[3].parent, Some(NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Bfs {
    source: NodeId,
    depth_limit: u32,
    start_round: usize,
}

impl Bfs {
    /// Full BFS from `source`, starting at round 0.
    pub fn new(source: NodeId) -> Self {
        Self {
            source,
            depth_limit: u32::MAX,
            start_round: 0,
        }
    }

    /// Partial BFS: exploration stops at `depth_limit` hops.
    pub fn with_depth_limit(mut self, limit: u32) -> Self {
        self.depth_limit = limit;
        self
    }

    /// Delayed start: the source broadcasts in round `start_round` (the random-delays
    /// technique of Theorem 1.4 schedules many BFS instances this way).
    pub fn with_start_round(mut self, start_round: usize) -> Self {
        self.start_round = start_round;
        self
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The depth limit.
    pub fn depth_limit(&self) -> u32 {
        self.depth_limit
    }
}

/// Output of [`Bfs`] at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsOutput {
    /// Hop distance from the source (`None` if unreached / beyond the depth limit).
    pub dist: Option<u32>,
    /// BFS tree parent (`None` at the source and at unreached nodes).
    pub parent: Option<NodeId>,
}

/// Per-node state of [`Bfs`].
#[derive(Clone, Debug)]
pub struct BfsState {
    dist: Option<u32>,
    parent: Option<NodeId>,
    sent: bool,
}

impl BcongestAlgorithm for Bfs {
    type State = BfsState;
    type Msg = u32; // the sender's distance
    type Output = BfsOutput;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init(&self, view: &LocalView<'_>) -> BfsState {
        if view.node() == self.source {
            BfsState {
                dist: Some(0),
                parent: None,
                sent: false,
            }
        } else {
            BfsState {
                dist: None,
                parent: None,
                sent: false,
            }
        }
    }

    fn broadcast(&self, s: &BfsState, round: usize) -> Option<u32> {
        // A node at distance d broadcasts exactly once, in round start + d — the
        // lock-step wavefront of a synchronous BFS. Nodes at the depth limit do not
        // expand further.
        match s.dist {
            Some(d) if !s.sent && d < self.depth_limit => {
                (round >= self.start_round + d as usize).then_some(d)
            }
            _ => None,
        }
    }

    fn on_broadcast_sent(&self, s: &mut BfsState, _round: usize) {
        s.sent = true;
    }

    fn receive(&self, s: &mut BfsState, _round: usize, msgs: &[(NodeId, u32)]) {
        if s.dist.is_some() {
            return; // first arrival wins; the wavefront never improves on itself
        }
        // All same-round arrivals carry the same distance in a synchronous run; pick
        // the smallest sender ID for determinism.
        let (&(from, d), _) = msgs
            .iter()
            .map(|m| (m, (m.1, m.0)))
            .min_by_key(|&(_, key)| key)
            .expect("receive is only called with messages");
        if d < self.depth_limit {
            s.dist = Some(d + 1);
            s.parent = Some(from);
        }
    }

    fn is_done(&self, s: &BfsState) -> bool {
        s.sent || s.dist.is_none()
    }

    fn output(&self, s: &BfsState) -> BfsOutput {
        BfsOutput {
            dist: s.dist,
            parent: s.parent,
        }
    }

    fn next_activity(&self, s: &BfsState, after: usize) -> Option<usize> {
        match s.dist {
            Some(d) if !s.sent && d < self.depth_limit => {
                Some(after.max(self.start_round + d as usize))
            }
            _ => None,
        }
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        self.start_round + (self.depth_limit as usize).min(n) + 2
    }

    fn output_words(&self, _out: &BfsOutput) -> usize {
        1 // (dist, parent) is a constant number of IDs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::{generators, reference};

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnp_connected(40, 0.08, seed);
            let src = NodeId::new((seed as usize * 7) % 40);
            let run = run_bcongest(&Bfs::new(src), &g, None, &RunOptions::default()).unwrap();
            let want = reference::bfs_distances(&g, src);
            for v in g.nodes() {
                assert_eq!(run.outputs[v.index()].dist, want[v.index()], "node {v:?}");
            }
        }
    }

    #[test]
    fn broadcast_complexity_is_reached_nodes() {
        let g = generators::gnp_connected(30, 0.1, 2);
        let run =
            run_bcongest(&Bfs::new(NodeId::new(0)), &g, None, &RunOptions::default()).unwrap();
        // Every node broadcasts exactly once except depth-limit leaves (none here).
        // The last BFS level does broadcast (they don't know they're last).
        assert_eq!(run.metrics.broadcasts, 30);
        // Message complexity is Σ deg = 2m.
        assert_eq!(run.metrics.messages, 2 * g.m() as u64);
    }

    #[test]
    fn depth_limit_truncates() {
        let g = generators::path(6);
        let algo = Bfs::new(NodeId::new(0)).with_depth_limit(2);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        assert_eq!(run.outputs[2].dist, Some(2));
        assert_eq!(run.outputs[3].dist, None);
        // Nodes at distance == limit don't broadcast: nodes 0,1 broadcast only.
        assert_eq!(run.metrics.broadcasts, 2);
    }

    #[test]
    fn delayed_start_shifts_rounds() {
        let g = generators::path(4);
        let algo = Bfs::new(NodeId::new(0)).with_start_round(5);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        assert_eq!(run.outputs[3].dist, Some(3));
        // Wavefront: nodes 0..3 broadcast in rounds 5..8 (node 3 does not know it is last).
        assert_eq!(run.metrics.rounds, 9);
    }

    #[test]
    fn parents_form_bfs_tree() {
        let g = generators::grid(4, 4);
        let run =
            run_bcongest(&Bfs::new(NodeId::new(0)), &g, None, &RunOptions::default()).unwrap();
        for v in g.nodes().skip(1) {
            let out = &run.outputs[v.index()];
            let p = out.parent.unwrap();
            assert!(g.has_edge(v, p));
            assert_eq!(run.outputs[p.index()].dist.unwrap() + 1, out.dist.unwrap());
        }
    }
}
