//! Israeli–Itai randomized maximal matching in BCONGEST (`O(log n)` rounds w.h.p.) —
//! the preprocessing step of the Ahmadi–Kuhn–Oshman maximum-matching algorithm
//! (Appendix A.1 uses it to compute the upper bound `s = 2|M̂| ≥ s*`).
//!
//! Each phase has three rounds:
//! 1. every free node with free neighbors *proposes* to a random free neighbor (the
//!    target is a pure function of seed, phase and the current free-neighbor set, so
//!    the broadcast schedule is self-driven);
//! 2. every free node that received proposals *accepts* the smallest-ID proposer;
//! 3. newly matched nodes broadcast `MatchedNow` so neighbors update their
//!    free-neighbor sets.

use congest_engine::{BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode};
use congest_graph::{rng, NodeId};
use std::collections::BTreeSet;

/// Messages of the Israeli–Itai algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMsg {
    /// "I propose to the node with this ID."
    Propose(NodeId),
    /// "I accept the proposal of the node with this ID."
    Accept(NodeId),
    /// "I am now matched."
    MatchedNow,
}

impl Wire for MatchMsg {}

impl WireEncode for MatchMsg {
    // Lane 0 is the variant tag; lane 1 the partner ID (zero for MatchedNow).
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        match self {
            MatchMsg::Propose(v) => {
                out[0] = 0;
                out[1] = v.raw();
            }
            MatchMsg::Accept(v) => {
                out[0] = 1;
                out[1] = v.raw();
            }
            MatchMsg::MatchedNow => {
                out[0] = 2;
                out[1] = 0;
            }
        }
    }
}

impl WireDecode for MatchMsg {
    fn decode(lanes: &[u32]) -> Self {
        match lanes[0] {
            0 => MatchMsg::Propose(NodeId::from(lanes[1])),
            1 => MatchMsg::Accept(NodeId::from(lanes[1])),
            2 => MatchMsg::MatchedNow,
            tag => unreachable!("invalid MatchMsg tag {tag}"),
        }
    }
}

/// Israeli–Itai randomized maximal matching.
#[derive(Clone, Copy, Debug, Default)]
pub struct IsraeliItai;

/// Per-node state.
#[derive(Clone, Debug)]
pub struct IiState {
    partner: Option<NodeId>,
    free_neighbors: BTreeSet<NodeId>,
    my_id: NodeId,
    seed: u64,
    /// Phase of the last proposal sent.
    proposed_phase: Option<usize>,
    /// Whom this node proposed to in that phase.
    proposed_to: Option<NodeId>,
    /// Pending acceptance: (phase, proposer).
    accept_phase: Option<usize>,
    accept_to: Option<NodeId>,
    accept_sent: bool,
    /// Phase in which this node became matched (MatchedNow goes out in its round 2).
    matched_phase: Option<usize>,
    matched_sent: bool,
}

const SUBROUNDS: usize = 3;

impl IiState {
    /// Sender/receiver role for `phase` (a fresh coin per phase). Senders propose and
    /// never accept; receivers accept and never propose — this is what makes the
    /// handshake race-free: a receiver commits when accepting, and the accepted sender
    /// (who proposed to exactly one node) always honours it.
    fn is_sender(&self, phase: usize) -> bool {
        rng::derive(self.seed, 0x4949_1000 ^ phase as u64) & 1 == 1
    }

    /// The proposal target for `phase`: a uniform pick from the current free-neighbor
    /// set. Pure, so `broadcast` and `on_broadcast_sent` agree on it.
    fn target(&self, phase: usize) -> Option<NodeId> {
        if self.free_neighbors.is_empty() {
            return None;
        }
        let k = (rng::derive(self.seed, 0x4949_0000 ^ phase as u64) as usize)
            % self.free_neighbors.len();
        self.free_neighbors.iter().nth(k).copied()
    }

    fn wants_to_propose(&self, phase: usize) -> bool {
        self.is_sender(phase)
            && self.partner.is_none()
            && !self.free_neighbors.is_empty()
            && self.proposed_phase != Some(phase)
    }
}

impl BcongestAlgorithm for IsraeliItai {
    type State = IiState;
    type Msg = MatchMsg;
    type Output = Option<NodeId>;

    fn name(&self) -> &'static str {
        "israeli-itai"
    }

    fn init(&self, view: &LocalView<'_>) -> IiState {
        IiState {
            partner: None,
            free_neighbors: view.neighbors().iter().copied().collect(),
            my_id: view.node(),
            seed: view.seed(),
            proposed_phase: None,
            proposed_to: None,
            accept_phase: None,
            accept_to: None,
            accept_sent: false,
            matched_phase: None,
            matched_sent: false,
        }
    }

    fn broadcast(&self, s: &IiState, round: usize) -> Option<MatchMsg> {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => s
                .wants_to_propose(phase)
                .then(|| s.target(phase).map(MatchMsg::Propose))
                .flatten(),
            1 => (s.accept_phase == Some(phase) && !s.accept_sent)
                .then(|| s.accept_to.map(MatchMsg::Accept))
                .flatten(),
            _ => {
                (s.matched_phase == Some(phase) && !s.matched_sent).then_some(MatchMsg::MatchedNow)
            }
        }
    }

    fn on_broadcast_sent(&self, s: &mut IiState, round: usize) {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => {
                s.proposed_phase = Some(phase);
                s.proposed_to = s.target(phase);
            }
            1 => s.accept_sent = true,
            _ => s.matched_sent = true,
        }
    }

    fn receive(&self, s: &mut IiState, round: usize, msgs: &[(NodeId, MatchMsg)]) {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => {
                // Receivers accept the smallest-ID proposer (if still free).
                if s.partner.is_none() && !s.is_sender(phase) {
                    let mut best: Option<NodeId> = None;
                    for &(from, m) in msgs {
                        if m == MatchMsg::Propose(s.my_id)
                            && s.free_neighbors.contains(&from)
                            && best.is_none_or(|b| from < b)
                        {
                            best = Some(from);
                        }
                    }
                    if let Some(p) = best {
                        s.partner = Some(p);
                        s.accept_phase = Some(phase);
                        s.accept_to = Some(p);
                        s.accept_sent = false;
                        s.matched_phase = Some(phase);
                        s.matched_sent = false;
                    }
                }
            }
            1 => {
                if s.partner.is_none() && s.proposed_phase == Some(phase) {
                    if let Some(target) = s.proposed_to {
                        for &(from, m) in msgs {
                            if from == target && m == MatchMsg::Accept(s.my_id) {
                                s.partner = Some(target);
                                s.matched_phase = Some(phase);
                                s.matched_sent = false;
                            }
                        }
                    }
                }
            }
            _ => {
                for &(from, m) in msgs {
                    if m == MatchMsg::MatchedNow {
                        s.free_neighbors.remove(&from);
                    }
                }
            }
        }
    }

    fn is_done(&self, s: &IiState) -> bool {
        (s.partner.is_some() || s.free_neighbors.is_empty())
            && (s.accept_phase.is_none() || s.accept_sent)
            && (s.matched_phase.is_none() || s.matched_sent)
    }

    fn output(&self, s: &IiState) -> Option<NodeId> {
        s.partner
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        let log = (usize::BITS - n.max(2).leading_zeros()) as usize;
        SUBROUNDS * (40 * log + 40)
    }

    fn output_words(&self, _out: &Option<NodeId>) -> usize {
        1
    }
}

/// Extracts the matched pairs from per-node outputs, checking mutual consistency.
///
/// # Panics
///
/// Panics if outputs are inconsistent (u says partner v, but v disagrees).
pub fn matching_pairs(outputs: &[Option<NodeId>]) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for (i, &p) in outputs.iter().enumerate() {
        let u = NodeId::new(i);
        if let Some(v) = p {
            assert_eq!(
                outputs[v.index()],
                Some(u),
                "inconsistent matching at {u:?}"
            );
            if u < v {
                pairs.push((u, v));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::{generators, reference};

    #[test]
    fn maximal_on_families() {
        for (i, g) in [
            generators::gnp_connected(40, 0.1, 2),
            generators::complete(15),
            generators::path(20),
            generators::cycle(21),
            generators::star(12),
            generators::random_bipartite_connected(10, 12, 0.3, 3),
        ]
        .iter()
        .enumerate()
        {
            let opts = RunOptions {
                seed: 100 + i as u64,
                ..RunOptions::default()
            };
            let run = run_bcongest(&IsraeliItai, g, None, &opts).unwrap();
            let pairs = matching_pairs(&run.outputs);
            assert!(
                reference::is_maximal_matching(g, &pairs),
                "family {i}: {pairs:?}"
            );
        }
    }

    #[test]
    fn rounds_are_logarithmic_in_practice() {
        let g = generators::gnp_connected(60, 0.1, 7);
        let run = run_bcongest(&IsraeliItai, &g, None, &RunOptions::default()).unwrap();
        // O(log n) phases of 3 rounds; allow a generous constant.
        assert!(
            run.metrics.rounds <= 3 * 40 * 6,
            "rounds = {}",
            run.metrics.rounds
        );
    }

    #[test]
    fn edgeless_graph_finishes_instantly() {
        let g = congest_graph::Graph::from_edges(5, &[]);
        let run = run_bcongest(&IsraeliItai, &g, None, &RunOptions::default()).unwrap();
        assert!(run.outputs.iter().all(Option::is_none));
        assert_eq!(run.metrics.rounds, 0);
    }

    #[test]
    fn single_edge_matches() {
        let g = congest_graph::Graph::from_edges(2, &[(0, 1)]);
        let run = run_bcongest(&IsraeliItai, &g, None, &RunOptions::default()).unwrap();
        assert_eq!(run.outputs[0], Some(NodeId::new(1)));
        assert_eq!(run.outputs[1], Some(NodeId::new(0)));
    }
}
