//! # congest-algos
//!
//! Distributed BCONGEST algorithms: the "payloads" the paper's simulations run, plus
//! the primitives they compose.
//!
//! * [`bfs`] — single-source (partial, delayed) BFS;
//! * [`bfs_collection`] — many BFS under random delays (Theorem 1.4), aggregation-based;
//! * [`apsp_weighted`] — exact weighted APSP via weight-delayed Dijkstra (the
//!   Bernstein–Nanongkai substitute for Theorem 1.1);
//! * [`gossip`] — one-shot point-to-point gossip with an order-sensitive checksum
//!   (the delivery-order probe of the workload registry);
//! * [`leader`] — leader election / BFS tree / node counting (preprocessing);
//! * [`mis`] — Luby's maximal independent set (a classic broadcast-based algorithm);
//! * [`matching_maximal`] — Israeli–Itai randomized maximal matching;
//! * [`matching_bipartite`] — Ahmadi–Kuhn–Oshman exact bipartite maximum matching
//!   (Appendix A.1, the payload of Corollary 2.8);
//! * [`mst`] — message-efficient minimum spanning trees (controlled-GHS merging over
//!   the engine's tree primitives), the "Beyond APSP" workload family.

pub mod apsp_weighted;
pub mod bfs;
pub mod bfs_collection;
pub mod gossip;
pub mod leader;
pub mod matching_bipartite;
pub mod matching_maximal;
pub mod mis;
pub mod mst;
