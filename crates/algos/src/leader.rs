//! Leader election, BFS-tree construction and node counting — the preprocessing every
//! simulation starts with (§2.2 step 1: "compute and ensure all nodes know n").
//!
//! [`LeaderElect`] floods the minimum ID with distance tracking, which simultaneously
//! elects the minimum-ID node and hands every node a parent in that node's BFS tree.
//! [`setup_network`] packages the whole preprocessing: election, subtree counting
//! (convergecast) and broadcasting `n`, with realized metrics.
//!
//! The paper cites Kutten et al. \[25\] for an `O(m log n)`-message election; flooding
//! with re-broadcast-only-on-improvement is our accounted substitute (see DESIGN.md §2).

use congest_engine::{
    run_bcongest, BcongestAlgorithm, EngineError, Forest, LocalView, Metrics, RunOptions, Wire,
    WireDecode, WireEncode,
};
use congest_graph::{Graph, NodeId};

/// Message: (candidate leader ID, sender's distance from it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderMsg {
    /// Smallest ID known to the sender.
    pub leader: u32,
    /// Sender's (candidate) distance from that node.
    pub dist: u32,
}

impl Wire for LeaderMsg {}

impl WireEncode for LeaderMsg {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        out[0] = self.leader;
        out[1] = self.dist;
    }
}

impl WireDecode for LeaderMsg {
    fn decode(lanes: &[u32]) -> Self {
        Self {
            leader: lanes[0],
            dist: lanes[1],
        }
    }
}

/// Min-ID flooding with BFS-parent tracking.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaderElect;

/// Per-node election state.
#[derive(Clone, Debug)]
pub struct LeaderState {
    best: u32,
    dist: u32,
    parent: Option<NodeId>,
    dirty: bool,
}

/// Election output at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderOutput {
    /// The elected leader (the minimum ID in the network).
    pub leader: NodeId,
    /// Hop distance from the leader.
    pub dist: u32,
    /// Parent towards the leader (`None` at the leader).
    pub parent: Option<NodeId>,
}

impl BcongestAlgorithm for LeaderElect {
    type State = LeaderState;
    type Msg = LeaderMsg;
    type Output = LeaderOutput;

    fn name(&self) -> &'static str {
        "leader-elect"
    }

    fn init(&self, view: &LocalView<'_>) -> LeaderState {
        LeaderState {
            best: view.node().raw(),
            dist: 0,
            parent: None,
            dirty: true,
        }
    }

    fn broadcast(&self, s: &LeaderState, _round: usize) -> Option<LeaderMsg> {
        s.dirty.then_some(LeaderMsg {
            leader: s.best,
            dist: s.dist,
        })
    }

    fn on_broadcast_sent(&self, s: &mut LeaderState, _round: usize) {
        s.dirty = false;
    }

    fn receive(&self, s: &mut LeaderState, _round: usize, msgs: &[(NodeId, LeaderMsg)]) {
        // Adopt lexicographically better (leader, dist+1); ties by sender ID keep the
        // tree deterministic.
        let mut sorted: Vec<&(NodeId, LeaderMsg)> = msgs.iter().collect();
        sorted.sort_unstable_by_key(|(from, m)| (m.leader, m.dist, *from));
        for &&(from, m) in &sorted {
            let cand = (m.leader, m.dist + 1);
            if cand < (s.best, s.dist) {
                s.best = m.leader;
                s.dist = m.dist + 1;
                s.parent = Some(from);
                s.dirty = true;
            }
        }
    }

    fn is_done(&self, s: &LeaderState) -> bool {
        !s.dirty
    }

    fn output(&self, s: &LeaderState) -> LeaderOutput {
        LeaderOutput {
            leader: NodeId::from(s.best),
            dist: s.dist,
            parent: s.parent,
        }
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        2 * n + 4
    }

    fn output_words(&self, _out: &LeaderOutput) -> usize {
        1
    }

    /// Self-heal: the topology changed, so the node's current best may now be
    /// beatable (a new edge arrived) or need re-announcing to a freshly
    /// re-initialized neighbor — re-arm the flood. Sound under *additive*
    /// churn (edges coming up): min-ID flooding is monotone, so re-flooding
    /// from current bests converges to the full-graph election.
    fn on_fault(&self, s: &mut LeaderState, _round: usize) {
        s.dirty = true;
    }
}

/// The result of network preprocessing: an elected leader, its BFS tree, and the cost
/// of establishing them plus counting/broadcasting `n`.
#[derive(Clone, Debug)]
pub struct NetworkSetup {
    /// The leader (minimum-ID node).
    pub leader: NodeId,
    /// A BFS tree of the graph rooted at the leader.
    pub tree: Forest,
    /// Realized cost: election + convergecast of the node count + broadcast of `n`.
    pub metrics: Metrics,
}

/// Elects a leader, builds its BFS tree, counts nodes (convergecast) and broadcasts `n`
/// (downcast flood), all with realized accounting.
///
/// # Errors
///
/// Propagates engine errors (round-limit, invalid forest — neither can occur on a
/// connected graph).
pub fn setup_network(g: &Graph, seed: u64) -> Result<NetworkSetup, EngineError> {
    setup_network_with(g, seed, &congest_engine::ExecutorConfig::default())
}

/// [`setup_network`] with an explicit executor for the election run's per-node
/// phases. Setup results are identical at every thread count.
///
/// # Errors
///
/// Propagates engine errors, like [`setup_network`].
pub fn setup_network_with(
    g: &Graph,
    seed: u64,
    exec: &congest_engine::ExecutorConfig,
) -> Result<NetworkSetup, EngineError> {
    let opts = RunOptions {
        seed,
        exec: exec.clone(),
        ..RunOptions::default()
    };
    let run = run_bcongest(&LeaderElect, g, None, &opts)?;
    let mut metrics = run.metrics;

    let parents: Vec<Option<NodeId>> = run.outputs.iter().map(|o| o.parent).collect();
    let tree = Forest::from_parents(g, parents)?;
    let leader = run.outputs.first().map_or(NodeId::new(0), |o| o.leader);

    // Convergecast the subtree counts (one word per tree edge, leaves-to-root), then
    // every root floods its tree's count back down (one word per tree edge) — on a
    // connected graph that is the leader broadcasting `n`. Both go through the
    // engine's tree primitives, so the costs are the realized `depth` rounds /
    // `n - 1` messages of the obvious schedule.
    let count = congest_engine::treeops::convergecast_with(
        g,
        &tree,
        vec![1u64; g.n()],
        |a, b| a + b,
        None,
        exec,
    )?;
    metrics.merge_sequential(&count.metrics);
    let payloads: Vec<(NodeId, u64)> = tree
        .roots()
        .iter()
        .copied()
        .zip(count.at_root.iter().copied())
        .collect();
    let bcast = congest_engine::treeops::broadcast_with(g, &tree, payloads, None, exec)?;
    metrics.merge_sequential(&bcast.metrics);

    Ok(NetworkSetup {
        leader,
        tree,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    #[test]
    fn elects_minimum_and_builds_bfs_tree() {
        let g = generators::gnp_connected(35, 0.1, 4);
        let setup = setup_network(&g, 1).unwrap();
        assert_eq!(setup.leader, NodeId::new(0));
        // Tree is a BFS tree: depth_of == BFS distance.
        let want = reference::bfs_distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(
                setup.tree.depth_of(v),
                want[v.index()].unwrap(),
                "depth of {v:?}"
            );
        }
        assert_eq!(setup.tree.roots(), &[NodeId::new(0)]);
    }

    #[test]
    fn metrics_within_flooding_budget() {
        let g = generators::gnp_connected(30, 0.15, 8);
        let setup = setup_network(&g, 2).unwrap();
        // Messages: flooding is O(m · improvements); improvements per node are small.
        // Generous check: within 8·m·log n plus the two tree passes.
        let bound = 8 * g.m() as u64 * 6 + 2 * (g.n() as u64 - 1);
        assert!(
            setup.metrics.messages <= bound,
            "messages = {}",
            setup.metrics.messages
        );
        assert!(setup.metrics.rounds >= u64::from(setup.tree.depth()));
    }

    #[test]
    fn self_heals_under_up_only_edge_churn() {
        use congest_engine::{FaultEvent, FaultPlan, FaultResponse};
        let g = generators::path(6);
        let clean = run_bcongest(&LeaderElect, &g, None, &RunOptions::default()).unwrap();
        // The 2–3 bridge is down from the start and comes up at round 6, after
        // both halves have quiesced on their local minima; `on_fault` re-arms
        // the flood and the election converges to the full-graph result.
        let bridge = g
            .edge_between(NodeId::new(2), NodeId::new(3))
            .expect("path edge");
        let opts = RunOptions {
            faults: Some(
                FaultPlan::new(FaultResponse::SelfHeal)
                    .at(0, FaultEvent::EdgeDown(bridge))
                    .at(6, FaultEvent::EdgeUp(bridge)),
            ),
            ..RunOptions::default()
        };
        let healed = run_bcongest(&LeaderElect, &g, None, &opts).unwrap();
        assert_eq!(healed.outputs, clean.outputs);
        assert!(healed.metrics.dropped_messages > 0, "round-0 sends dropped");
        assert!(healed.metrics.rounds > clean.metrics.rounds);
    }

    #[test]
    fn restart_elects_per_component_minima_after_crashes() {
        use congest_engine::faults::masked_components;
        use congest_engine::{FaultEvent, FaultPlan, FaultResponse};
        let g = generators::path(7);
        let plan = FaultPlan::new(FaultResponse::Restart).at(0, FaultEvent::Crash(NodeId::new(3)));
        let mask = plan.final_mask(&g);
        let opts = RunOptions {
            faults: Some(plan),
            ..RunOptions::default()
        };
        let run = run_bcongest(&LeaderElect, &g, None, &opts).unwrap();
        let want = masked_components(&g, &mask);
        for v in g.nodes() {
            if let Some(leader) = want[v.index()] {
                assert_eq!(run.outputs[v.index()].leader, leader, "leader at {v:?}");
            }
        }
    }

    #[test]
    fn works_on_a_path() {
        let g = generators::path(10);
        let setup = setup_network(&g, 3).unwrap();
        assert_eq!(setup.leader, NodeId::new(0));
        assert_eq!(setup.tree.depth(), 9);
        // Election on a path: node i adopts 0 at round i; rounds ≈ n.
        assert!(setup.metrics.rounds >= 9);
    }
}
