//! Exact bipartite maximum matching in BCONGEST — the Ahmadi–Kuhn–Oshman algorithm
//! (paper Appendix A.1), the payload of Corollary 2.8.
//!
//! Structure (one big state machine; every node derives the same absolute-round
//! schedule, first from `n` and then from the matching bound `s`):
//!
//! 1. **Prelude** — elect a leader + BFS tree (min-ID flood), learn tree children,
//!    compute a maximal matching `M̂` (Israeli–Itai), convergecast the matched-node
//!    count `s = 2|M̂| ≥ s*`, and broadcast `s` to everyone.
//! 2. **Phases** `i = 0..s-1`, each with four stages of length `b_i = Θ(⌈s/(s-i)⌉)`:
//!    * **explore** — free nodes flood alternating-path waves (odd hops over
//!      non-matching edges, even hops over matching edges; each node propagates only
//!      the first wave it receives). Completions are detected when a wave reaches a
//!      free node, or when two waves cross on an edge (both endpoints broadcast over
//!      it in the same round);
//!    * **backward** — completion labels (lexicographically canonical 4-tuples
//!      `(source_a, source_b, edge_a, edge_b)`) propagate back along wave-predecessor
//!      chains; each node adopts only the smallest label it sees, so the globally
//!      smallest label always survives;
//!    * **probe** — the smaller endpoint of the smallest completed label walks the
//!      recorded path to the other endpoint, verifying every hop still holds the label
//!      (this is what makes concurrent augmentations of overlapping paths impossible);
//!    * **commit** — the far endpoint walks back, toggling matched/unmatched along the
//!      augmenting path (the symmetric difference `M ⊕ P`).
//!
//! Hopcroft–Karp's short-augmenting-path bound (quoted as a corollary in the paper)
//! guarantees the growing budgets `b_i` always suffice, so after phase `s-1` the
//! matching is maximum. Total: `O(n log n)` rounds w.h.p. and `O(n)` broadcasts per
//! phase ⇒ broadcast complexity `O(n²)` — exactly what Corollary 2.8 feeds into
//! Theorem 2.1.

use congest_engine::{BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode};
use congest_graph::{rng, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A canonical augmenting-path label: `(sa, sb)` are the two free endpoints (wave
/// sources), `(ea, eb)` the endpoints of the detection edge on the `sa`/`sb` side
/// respectively. Canonical form has `sa < sb`; labels are compared lexicographically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathLabel {
    sa: u32,
    sb: u32,
    ea: u32,
    eb: u32,
}

impl PathLabel {
    fn canonical(sa: u32, ea: u32, sb: u32, eb: u32) -> Self {
        if sa <= sb {
            Self { sa, sb, ea, eb }
        } else {
            Self {
                sa: sb,
                sb: sa,
                ea: eb,
                eb: ea,
            }
        }
    }
}

/// Messages of the AKO algorithm. Every variant carries a constant number of IDs and
/// therefore fits in one `O(log n)`-bit message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AkoMsg {
    /// Prelude: min-ID flooding (candidate leader, sender's distance).
    Leader { leader: u32, dist: u32 },
    /// Prelude: announce the BFS-tree parent (so parents learn their children).
    ParentIs(NodeId),
    /// Israeli–Itai proposal.
    Propose(NodeId),
    /// Israeli–Itai acceptance.
    Accept(NodeId),
    /// Israeli–Itai "I'm matched now".
    MatchedNow,
    /// Convergecast: subtree count of matched nodes.
    Count(u32),
    /// Broadcast of the matching bound `s`.
    SizeIs(u32),
    /// Exploration wave for the BFS from free node `src`; `via_matching` tells
    /// receivers which edge type this hop is allowed to use.
    Wave { src: u32, via_matching: bool },
    /// Backward propagation of a completed label, addressed to `to`.
    Backward { label: PathLabel, to: NodeId },
    /// Forward probe of the smallest label, addressed to `to`.
    Probe { label: PathLabel, to: NodeId },
    /// Commit walk (augmentation), addressed to `to`.
    Commit { label: PathLabel, to: NodeId },
}

impl Wire for AkoMsg {}

impl WireEncode for AkoMsg {
    // Lane 0 is the variant tag; lanes 1–5 carry up to a `PathLabel` plus an
    // addressee (the widest variants); narrower variants leave the rest zero.
    const LANES: usize = 6;
    fn encode(&self, out: &mut [u32]) {
        out.fill(0);
        match *self {
            AkoMsg::Leader { leader, dist } => {
                out[0] = 0;
                out[1] = leader;
                out[2] = dist;
            }
            AkoMsg::ParentIs(v) => {
                out[0] = 1;
                out[1] = v.raw();
            }
            AkoMsg::Propose(v) => {
                out[0] = 2;
                out[1] = v.raw();
            }
            AkoMsg::Accept(v) => {
                out[0] = 3;
                out[1] = v.raw();
            }
            AkoMsg::MatchedNow => out[0] = 4,
            AkoMsg::Count(c) => {
                out[0] = 5;
                out[1] = c;
            }
            AkoMsg::SizeIs(s) => {
                out[0] = 6;
                out[1] = s;
            }
            AkoMsg::Wave { src, via_matching } => {
                out[0] = 7;
                out[1] = src;
                out[2] = u32::from(via_matching);
            }
            AkoMsg::Backward { label, to } => Self::encode_labelled(8, label, to, out),
            AkoMsg::Probe { label, to } => Self::encode_labelled(9, label, to, out),
            AkoMsg::Commit { label, to } => Self::encode_labelled(10, label, to, out),
        }
    }
}

impl AkoMsg {
    fn encode_labelled(tag: u32, label: PathLabel, to: NodeId, out: &mut [u32]) {
        out[0] = tag;
        out[1] = label.sa;
        out[2] = label.sb;
        out[3] = label.ea;
        out[4] = label.eb;
        out[5] = to.raw();
    }

    fn decode_label(lanes: &[u32]) -> (PathLabel, NodeId) {
        (
            PathLabel {
                sa: lanes[1],
                sb: lanes[2],
                ea: lanes[3],
                eb: lanes[4],
            },
            NodeId::from(lanes[5]),
        )
    }
}

impl WireDecode for AkoMsg {
    fn decode(lanes: &[u32]) -> Self {
        match lanes[0] {
            0 => AkoMsg::Leader {
                leader: lanes[1],
                dist: lanes[2],
            },
            1 => AkoMsg::ParentIs(NodeId::from(lanes[1])),
            2 => AkoMsg::Propose(NodeId::from(lanes[1])),
            3 => AkoMsg::Accept(NodeId::from(lanes[1])),
            4 => AkoMsg::MatchedNow,
            5 => AkoMsg::Count(lanes[1]),
            6 => AkoMsg::SizeIs(lanes[1]),
            7 => AkoMsg::Wave {
                src: lanes[1],
                via_matching: lanes[2] != 0,
            },
            8 => {
                let (label, to) = Self::decode_label(lanes);
                AkoMsg::Backward { label, to }
            }
            9 => {
                let (label, to) = Self::decode_label(lanes);
                AkoMsg::Probe { label, to }
            }
            10 => {
                let (label, to) = Self::decode_label(lanes);
                AkoMsg::Commit { label, to }
            }
            tag => unreachable!("invalid AkoMsg tag {tag}"),
        }
    }
}

/// The Ahmadi–Kuhn–Oshman exact bipartite maximum matching algorithm.
///
/// The input graph must be bipartite (validated by the caller/tests; on non-bipartite
/// inputs the result is a matching, but not necessarily maximum).
#[derive(Clone, Copy, Debug, Default)]
pub struct BipartiteMatching;

/// The absolute-round schedule, derivable by every node from `n` (and later `s`).
#[derive(Clone, Copy, Debug)]
struct Schedule {
    n: usize,
}

impl Schedule {
    fn new(n: usize) -> Self {
        Self { n }
    }

    fn ii_phases(&self) -> usize {
        let log = (usize::BITS - self.n.max(2).leading_zeros()) as usize;
        8 * log + 16
    }

    /// End of leader election (min-ID flood stabilizes within n rounds).
    fn leader_end(&self) -> usize {
        self.n + 4
    }

    /// The round in which everyone announces their tree parent.
    fn parent_round(&self) -> usize {
        self.leader_end()
    }

    fn ii_start(&self) -> usize {
        self.parent_round() + 1
    }

    fn ii_end(&self) -> usize {
        self.ii_start() + 3 * self.ii_phases()
    }

    fn count_end(&self) -> usize {
        self.ii_end() + self.n + 4
    }

    fn prelude_end(&self) -> usize {
        self.count_end() + self.n + 4
    }

    /// Stage length of phase `i` when the bound is `s`.
    fn stage_len(&self, s: usize, i: usize) -> usize {
        4 * s.div_ceil(s - i) + 12
    }

    /// Cumulative phase starts (s + 1 entries, last = end of the algorithm).
    fn phase_starts(&self, s: usize) -> Vec<usize> {
        let mut starts = Vec::with_capacity(s + 1);
        let mut t = self.prelude_end();
        starts.push(t);
        for i in 0..s {
            t += 4 * self.stage_len(s, i);
            starts.push(t);
        }
        starts
    }
}

/// Which stage of a phase a round falls in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    Explore,
    Backward,
    Probe,
    Commit,
}

/// Per-phase scratch state, reset lazily at each phase boundary.
#[derive(Clone, Debug, Default)]
struct PhaseScratch {
    /// Which phase this scratch belongs to.
    phase: usize,
    /// Wave adopted by this node: (source, predecessor, round the wave arrived).
    wave_src: Option<u32>,
    wave_pred: Option<NodeId>,
    /// Round at which this node (re)broadcasts its wave, and with which edge type.
    wave_prop_round: Option<usize>,
    wave_via_matching: bool,
    wave_sent: bool,
    /// Backward initiations this node owes (label → first backward hop).
    backward_inits: BTreeMap<PathLabel, NodeId>,
    /// Smallest label this node has back-propagated (and to whom it must forward).
    back_label: Option<PathLabel>,
    back_succ: Option<NodeId>,
    back_sent_for: Option<PathLabel>,
    /// Labels whose Backward reached this node as a wave source (label → succ).
    completed_at_source: BTreeMap<PathLabel, NodeId>,
    probe_initiated: bool,
    commit_initiated: bool,
}

/// Per-node state of [`BipartiteMatching`].
#[derive(Clone, Debug)]
pub struct AkoState {
    me: NodeId,
    n: usize,
    seed: u64,
    degree: usize,
    // Leader election / tree.
    leader_best: u32,
    leader_dist: u32,
    leader_parent: Option<NodeId>,
    leader_dirty: bool,
    children: BTreeSet<NodeId>,
    parent_announced: bool,
    // Israeli–Itai.
    partner: Option<NodeId>,
    ii_free_neighbors: BTreeSet<NodeId>,
    ii_proposed_phase: Option<usize>,
    ii_proposed_to: Option<NodeId>,
    ii_accept_phase: Option<usize>,
    ii_accept_to: Option<NodeId>,
    ii_accept_sent: bool,
    ii_matched_phase: Option<usize>,
    ii_matched_sent: bool,
    // Counting.
    pending_children: BTreeSet<NodeId>,
    child_count_sum: u32,
    count_sent: bool,
    s_bound: Option<u32>,
    size_forwarded: bool,
    phase_starts: Vec<usize>,
    // Phases.
    scratch: PhaseScratch,
    /// Reactive sends (wave forwards, backward/probe/commit forwards).
    pending: VecDeque<AkoMsg>,
}

impl AkoState {
    fn sched(&self) -> Schedule {
        Schedule::new(self.n)
    }

    /// Phase/stage/offset of an absolute round, once `s` is known.
    fn locate(&self, round: usize) -> Option<(usize, Stage, usize)> {
        let s = self.s_bound? as usize;
        if s == 0 || self.phase_starts.is_empty() {
            return None;
        }
        let end = *self.phase_starts.last().expect("non-empty");
        if round < self.phase_starts[0] || round >= end {
            return None;
        }
        let phase = match self.phase_starts.binary_search(&round) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let len = self.sched().stage_len(s, phase);
        let off = round - self.phase_starts[phase];
        let stage = match off / len {
            0 => Stage::Explore,
            1 => Stage::Backward,
            2 => Stage::Probe,
            _ => Stage::Commit,
        };
        Some((phase, stage, off % len))
    }

    /// Lazily resets the per-phase scratch when entering a new phase.
    fn ensure_phase(&mut self, round: usize) {
        if let Some((phase, _, _)) = self.locate(round) {
            if self.scratch.phase != phase {
                self.scratch = PhaseScratch {
                    phase,
                    ..PhaseScratch::default()
                };
                self.pending.clear();
            }
        }
    }

    /// The scratch, viewed as empty if it belongs to an older phase.
    fn scratch_for(&self, round: usize) -> Option<&PhaseScratch> {
        let (phase, _, _) = self.locate(round)?;
        (self.scratch.phase == phase).then_some(&self.scratch)
    }

    fn is_free(&self) -> bool {
        self.partner.is_none()
    }

    /// Sender/receiver role for Israeli–Itai `phase` (see
    /// [`matching_maximal`](crate::matching_maximal) for why roles make the handshake
    /// race-free).
    fn ii_is_sender(&self, phase: usize) -> bool {
        rng::derive(self.seed, 0x414b_4f10 ^ phase as u64) & 1 == 1
    }

    /// The Israeli–Itai proposal target for `phase` — pure, so `broadcast` and
    /// `on_broadcast_sent` agree on it without a preparation tick.
    fn ii_target(&self, phase: usize) -> Option<NodeId> {
        if self.ii_free_neighbors.is_empty() {
            return None;
        }
        let k = (rng::derive(self.seed, 0x414b_4f00 ^ phase as u64) as usize)
            % self.ii_free_neighbors.len();
        self.ii_free_neighbors.iter().nth(k).copied()
    }

    /// Smallest completed label whose probe this node must initiate (it is the
    /// smaller endpoint `sa`). A free endpoint engages in at most one augmentation
    /// per phase, so both probe and commit initiation share the engagement gate.
    fn probe_duty(&self, round: usize) -> Option<(PathLabel, NodeId)> {
        let sc = self.scratch_for(round)?;
        if sc.probe_initiated || sc.commit_initiated {
            return None;
        }
        sc.completed_at_source
            .iter()
            .find(|(l, _)| l.sa == self.me.raw())
            .map(|(l, succ)| (*l, *succ))
    }

    /// Whether this node still owes its one backward-initiation broadcast. The
    /// backward target was recorded at detection time (the wave predecessor for
    /// crossing detections at relays; the final-hop sender for free-endpoint
    /// detections).
    fn backward_duty(&self, round: usize) -> Option<AkoMsg> {
        let sc = self.scratch_for(round)?;
        if sc.back_sent_for.is_some() {
            return None;
        }
        let (label, to) = sc.backward_inits.iter().next()?;
        Some(AkoMsg::Backward {
            label: *label,
            to: *to,
        })
    }
}

impl BcongestAlgorithm for BipartiteMatching {
    type State = AkoState;
    type Msg = AkoMsg;
    type Output = Option<NodeId>;

    fn name(&self) -> &'static str {
        "ako-bipartite-matching"
    }

    fn init(&self, view: &LocalView<'_>) -> AkoState {
        AkoState {
            me: view.node(),
            n: view.n(),
            seed: view.seed(),
            degree: view.degree(),
            leader_best: view.node().raw(),
            leader_dist: 0,
            leader_parent: None,
            leader_dirty: true,
            children: BTreeSet::new(),
            parent_announced: false,
            partner: None,
            ii_free_neighbors: view.neighbors().iter().copied().collect(),
            ii_proposed_phase: None,
            ii_proposed_to: None,
            ii_accept_phase: None,
            ii_accept_to: None,
            ii_accept_sent: false,
            ii_matched_phase: None,
            ii_matched_sent: false,
            pending_children: BTreeSet::new(),
            child_count_sum: 0,
            count_sent: false,
            s_bound: None,
            size_forwarded: false,
            phase_starts: Vec::new(),
            scratch: PhaseScratch::default(),
            pending: VecDeque::new(),
        }
    }

    fn broadcast(&self, s: &AkoState, round: usize) -> Option<AkoMsg> {
        let sched = s.sched();
        if round < sched.leader_end() {
            return s.leader_dirty.then_some(AkoMsg::Leader {
                leader: s.leader_best,
                dist: s.leader_dist,
            });
        }
        if round == sched.parent_round() {
            return (!s.parent_announced && s.degree > 0)
                .then(|| AkoMsg::ParentIs(s.leader_parent.unwrap_or(s.me)));
        }
        if round < sched.ii_end() {
            let rel = round.checked_sub(sched.ii_start())?;
            let phase = rel / 3;
            return match rel % 3 {
                0 => (s.ii_is_sender(phase)
                    && s.partner.is_none()
                    && !s.ii_free_neighbors.is_empty()
                    && s.ii_proposed_phase != Some(phase))
                .then(|| s.ii_target(phase).map(AkoMsg::Propose))
                .flatten(),
                1 => (s.ii_accept_phase == Some(phase) && !s.ii_accept_sent)
                    .then(|| s.ii_accept_to.map(AkoMsg::Accept))
                    .flatten(),
                _ => (s.ii_matched_phase == Some(phase) && !s.ii_matched_sent)
                    .then_some(AkoMsg::MatchedNow),
            };
        }
        if round < sched.count_end() {
            // Convergecast: send once all children reported (leaves: immediately).
            if !s.count_sent && s.pending_children.is_empty() && s.leader_parent.is_some() {
                let own = u32::from(s.partner.is_some());
                return Some(AkoMsg::Count(s.child_count_sum + own));
            }
            // Root computes s at the end of the window (handled in receive/sent hooks).
            return None;
        }
        if round < sched.prelude_end() {
            // Broadcast of s: the root starts, everyone forwards once.
            if !s.size_forwarded {
                if let Some(sv) = s.s_bound {
                    return Some(AkoMsg::SizeIs(sv));
                }
            }
            return None;
        }
        // Phase rounds.
        let (_phase, stage, off) = s.locate(round)?;
        match stage {
            Stage::Explore => {
                // Free nodes start waves at stage round 0.
                if off == 0 {
                    let already = s.scratch_for(round).is_some_and(|sc| sc.wave_sent);
                    return (s.is_free() && s.degree > 0 && !already).then(|| AkoMsg::Wave {
                        src: s.me.raw(),
                        via_matching: false,
                    });
                }
                // Matched nodes relay their adopted wave at the scheduled round.
                let sc = s.scratch_for(round)?;
                if !sc.wave_sent && sc.wave_prop_round == Some(round) {
                    return Some(AkoMsg::Wave {
                        src: sc.wave_src.expect("wave scheduled implies adopted"),
                        via_matching: sc.wave_via_matching,
                    });
                }
                None
            }
            Stage::Backward => {
                if let Some(m) = s.backward_duty(round) {
                    return Some(m);
                }
                s.pending
                    .front()
                    .copied()
                    .filter(|m| matches!(m, AkoMsg::Backward { .. }))
            }
            Stage::Probe => {
                if let Some((label, succ)) = s.probe_duty(round) {
                    return Some(AkoMsg::Probe { label, to: succ });
                }
                s.pending
                    .front()
                    .copied()
                    .filter(|m| matches!(m, AkoMsg::Probe { .. }))
            }
            Stage::Commit => s
                .pending
                .front()
                .copied()
                .filter(|m| matches!(m, AkoMsg::Commit { .. })),
        }
    }

    fn on_broadcast_sent(&self, s: &mut AkoState, round: usize) {
        let sched = s.sched();
        if round < sched.leader_end() {
            s.leader_dirty = false;
            return;
        }
        if round == sched.parent_round() {
            s.parent_announced = true;
            return;
        }
        if round < sched.ii_end() {
            let rel = round - sched.ii_start();
            let phase = rel / 3;
            match rel % 3 {
                0 => {
                    s.ii_proposed_phase = Some(phase);
                    s.ii_proposed_to = s.ii_target(phase);
                }
                1 => s.ii_accept_sent = true,
                _ => s.ii_matched_sent = true,
            }
            return;
        }
        if round < sched.count_end() {
            s.count_sent = true;
            return;
        }
        if round < sched.prelude_end() {
            s.size_forwarded = true;
            return;
        }
        s.ensure_phase(round);
        let Some((_, stage, off)) = s.locate(round) else {
            return;
        };
        match stage {
            Stage::Explore => {
                if off == 0 && s.is_free() {
                    s.scratch.wave_src = Some(s.me.raw());
                    s.scratch.wave_prop_round = Some(round);
                    s.scratch.wave_via_matching = false;
                    s.scratch.wave_sent = true;
                } else if s.scratch.wave_prop_round == Some(round) && !s.scratch.wave_sent {
                    s.scratch.wave_sent = true;
                } else {
                    s.pending.pop_front();
                }
            }
            Stage::Backward => {
                if let Some(m @ AkoMsg::Backward { label, .. }) = s.backward_duty(round) {
                    // The duty send happened.
                    let _ = m;
                    s.scratch.back_sent_for = Some(label);
                } else {
                    s.pending.pop_front();
                }
            }
            Stage::Probe => {
                if s.probe_duty(round).is_some() {
                    s.scratch.probe_initiated = true;
                } else {
                    s.pending.pop_front();
                }
            }
            Stage::Commit => {
                if let Some(AkoMsg::Commit { to, .. }) = s.pending.pop_front() {
                    // Sending a commit over a formerly non-matching path edge makes
                    // it matched. (If this node already absorbed its new partner at
                    // receive time, the outgoing edge was the formerly-matched one
                    // and its removal is recorded at the receiving end.)
                    if s.partner.is_none() {
                        s.partner = Some(to);
                    }
                }
            }
        }
    }

    fn receive(&self, s: &mut AkoState, round: usize, msgs: &[(NodeId, AkoMsg)]) {
        let sched = s.sched();
        let mut sorted: Vec<&(NodeId, AkoMsg)> = msgs.iter().collect();
        sorted.sort_unstable_by_key(|(from, _)| *from);

        if round < sched.leader_end() {
            for &&(from, m) in &sorted {
                if let AkoMsg::Leader { leader, dist } = m {
                    if (leader, dist + 1) < (s.leader_best, s.leader_dist) {
                        s.leader_best = leader;
                        s.leader_dist = dist + 1;
                        s.leader_parent = Some(from);
                        s.leader_dirty = true;
                    }
                }
            }
            return;
        }
        if round == sched.parent_round() {
            for &&(from, m) in &sorted {
                if m == AkoMsg::ParentIs(s.me) {
                    s.children.insert(from);
                    s.pending_children.insert(from);
                }
            }
            return;
        }
        if round < sched.ii_end() {
            let rel = round - sched.ii_start();
            let phase = rel / 3;
            match rel % 3 {
                0 => {
                    if s.partner.is_none() && !s.ii_is_sender(phase) {
                        let mut best: Option<NodeId> = None;
                        for &&(from, m) in &sorted {
                            if m == AkoMsg::Propose(s.me)
                                && s.ii_free_neighbors.contains(&from)
                                && best.is_none_or(|b| from < b)
                            {
                                best = Some(from);
                            }
                        }
                        if let Some(p) = best {
                            s.partner = Some(p);
                            s.ii_accept_phase = Some(phase);
                            s.ii_accept_to = Some(p);
                            s.ii_accept_sent = false;
                            s.ii_matched_phase = Some(phase);
                            s.ii_matched_sent = false;
                        }
                    }
                }
                1 => {
                    if s.partner.is_none() && s.ii_proposed_phase == Some(phase) {
                        if let Some(target) = s.ii_proposed_to {
                            for &&(from, m) in &sorted {
                                if from == target && m == AkoMsg::Accept(s.me) {
                                    s.partner = Some(target);
                                    s.ii_matched_phase = Some(phase);
                                    s.ii_matched_sent = false;
                                }
                            }
                        }
                    }
                }
                _ => {
                    for &&(from, m) in &sorted {
                        if m == AkoMsg::MatchedNow {
                            s.ii_free_neighbors.remove(&from);
                        }
                    }
                }
            }
            return;
        }
        if round < sched.count_end() {
            for &&(from, m) in &sorted {
                if let AkoMsg::Count(c) = m {
                    if s.pending_children.remove(&from) {
                        s.child_count_sum += c;
                    }
                }
            }
            // The leader (root, no parent) learns s once all children reported.
            if s.leader_parent.is_none() && s.pending_children.is_empty() && s.s_bound.is_none() {
                let own = u32::from(s.partner.is_some());
                let total = s.child_count_sum + own;
                s.s_bound = Some(total);
                s.phase_starts = s.sched().phase_starts(total as usize);
            }
            return;
        }
        if round < sched.prelude_end() {
            for &&(_, m) in &sorted {
                if let AkoMsg::SizeIs(sv) = m {
                    if s.s_bound.is_none() {
                        s.s_bound = Some(sv);
                        s.phase_starts = s.sched().phase_starts(sv as usize);
                    }
                }
            }
            return;
        }

        // ---- Phase rounds ----
        s.ensure_phase(round);
        let Some((_, stage, _off)) = s.locate(round) else {
            return;
        };
        match stage {
            Stage::Explore => receive_explore(s, round, &sorted),
            Stage::Backward => receive_backward(s, &sorted),
            Stage::Probe => receive_probe(s, &sorted),
            Stage::Commit => receive_commit(s, &sorted),
        }
    }

    fn is_done(&self, s: &AkoState) -> bool {
        s.pending.is_empty() && s.s_bound.is_some()
    }

    fn output(&self, s: &AkoState) -> Option<NodeId> {
        s.partner
    }

    fn next_activity(&self, s: &AkoState, after: usize) -> Option<usize> {
        let sched = s.sched();
        if s.leader_dirty && after < sched.leader_end() {
            return Some(after);
        }
        if !s.parent_announced && s.degree > 0 && after <= sched.parent_round() {
            return Some(sched.parent_round().max(after));
        }
        if after < sched.ii_end() {
            let proposing = s.partner.is_none() && !s.ii_free_neighbors.is_empty();
            let flushing = (s.ii_accept_phase.is_some() && !s.ii_accept_sent)
                || (s.ii_matched_phase.is_some() && !s.ii_matched_sent);
            if proposing || flushing {
                return Some(after.max(sched.ii_start()));
            }
        }
        if !s.count_sent
            && s.leader_parent.is_some()
            && s.pending_children.is_empty()
            && after < sched.count_end()
        {
            return Some(after.max(sched.ii_end()));
        }
        if !s.size_forwarded && s.s_bound.is_some() && after < sched.prelude_end() {
            return Some(after.max(sched.count_end()));
        }
        // Before s is known we cannot schedule phases; stay quiet until woken.
        let sv = s.s_bound? as usize;
        if sv == 0 {
            return None;
        }
        let end = *s.phase_starts.last().expect("schedule computed with s");
        if after >= end {
            return None;
        }
        if !s.pending.is_empty()
            || s.backward_duty(after).is_some()
            || s.probe_duty(after).is_some()
        {
            return Some(after);
        }
        if let Some(sc) = s.scratch_for(after) {
            if let Some(r) = sc.wave_prop_round {
                if !sc.wave_sent && r >= after {
                    return Some(r);
                }
            }
        }
        // Otherwise: free nodes wake at the next explore-stage start.
        if s.is_free() && s.degree > 0 {
            let next_start = s
                .phase_starts
                .iter()
                .find(|&&t| t >= after)
                .copied()
                .filter(|&t| t < end);
            return next_start;
        }
        None
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        let sched = Schedule::new(n);
        // Worst case s = n (even though s ≤ n always, and usually much smaller).
        let mut total = sched.prelude_end();
        for i in 0..n {
            total += 4 * sched.stage_len(n, i);
        }
        total + 64
    }

    fn output_words(&self, _out: &Option<NodeId>) -> usize {
        1
    }
}

/// Edge-toggle at the receiving end of a commit hop: if the edge was matched it is
/// removed; otherwise it becomes this node's new matching edge (any stale partner
/// pointer is corrected when the commit walk traverses that formerly-matched edge,
/// which alternation guarantees is the very next hop).
fn toggle_partner(partner: &mut Option<NodeId>, other: NodeId) {
    if *partner == Some(other) {
        *partner = None;
    } else {
        *partner = Some(other);
    }
}

fn receive_explore(s: &mut AkoState, round: usize, sorted: &[&(NodeId, AkoMsg)]) {
    // Did I broadcast a wave this very round? (needed for crossing detection)
    let my_broadcast = s
        .scratch
        .wave_sent
        .then_some(())
        .and(s.scratch.wave_prop_round)
        .filter(|&r| r == round)
        .and(
            s.scratch
                .wave_src
                .map(|src| (src, s.scratch.wave_via_matching)),
        );
    let mut adoption: Option<(u32, NodeId)> = None;

    for &&(from, m) in sorted {
        let AkoMsg::Wave { src, via_matching } = m else {
            continue;
        };
        // Edge-type validity.
        let from_is_partner = s.partner == Some(from);
        if via_matching != from_is_partner {
            continue;
        }
        if src == s.me.raw() {
            continue; // a wave never re-enters its own source
        }
        // Crossing detection: both endpoints broadcast over this edge this round.
        if let Some((my_src, my_via)) = my_broadcast {
            if my_via == via_matching && my_src != src {
                let label = PathLabel::canonical(my_src, s.me.raw(), src, from.raw());
                // My side's probe successor is the crossing partner; my side's
                // backward walk starts at my wave predecessor (None at sources,
                // whose side is trivially complete).
                let backward_to = s.scratch.wave_pred;
                record_completion(s, label, from, backward_to);
                continue;
            }
        }
        if s.is_free() {
            // Completion: a wave reached a free node over a non-matching edge. The
            // far side's backward walk starts at the final-hop sender.
            if !via_matching {
                let label = PathLabel::canonical(src, from.raw(), s.me.raw(), s.me.raw());
                record_completion(s, label, from, Some(from));
            }
            continue;
        }
        // Matched node: candidates for adoption are collected; the smallest
        // (src, from) wave this round wins (the paper's ID tie-breaking).
        if s.scratch.wave_src.is_none() {
            adoption = match adoption {
                Some((s0, f0)) if (s0, f0) <= (src, from) => Some((s0, f0)),
                _ => Some((src, from)),
            };
        }
    }
    if let Some((src, from)) = adoption {
        if s.scratch.wave_src.is_none() {
            let via_matching = s.partner == Some(from);
            s.scratch.wave_src = Some(src);
            s.scratch.wave_pred = Some(from);
            s.scratch.wave_via_matching = !via_matching; // alternate edge type
            s.scratch.wave_prop_round = Some(round + 1);
            s.scratch.wave_sent = false;
        }
    }
}

/// Records a detected completion.
///
/// * `probe_succ` — the neighbor a probe from this node would visit next;
/// * `backward_to` — where this node must send the Backward message for the *other*
///   side of the path (`None` when the other side's detector handles it).
///
/// Wave sources record the label as already backward-complete on their own side;
/// matched relays only owe the backward initiation.
fn record_completion(
    s: &mut AkoState,
    label: PathLabel,
    probe_succ: NodeId,
    backward_to: Option<NodeId>,
) {
    let me = s.me.raw();
    if me == label.sa || me == label.sb {
        s.scratch
            .completed_at_source
            .entry(label)
            .or_insert(probe_succ);
        if let Some(t) = backward_to {
            s.scratch.backward_inits.entry(label).or_insert(t);
        }
    } else {
        let t = backward_to.expect("matched relays always have a wave predecessor");
        s.scratch.backward_inits.entry(label).or_insert(t);
    }
}

fn receive_backward(s: &mut AkoState, sorted: &[&(NodeId, AkoMsg)]) {
    for &&(from, m) in sorted {
        let AkoMsg::Backward { label, to } = m else {
            continue;
        };
        if to != s.me {
            continue;
        }
        let me = s.me.raw();
        if me == label.sa || me == label.sb {
            // Reached a free endpoint: record completion (succ = backward sender).
            s.scratch.completed_at_source.entry(label).or_insert(from);
            continue;
        }
        // Adopt if strictly smaller than anything seen; forward towards my pred.
        if s.scratch.back_label.is_none_or(|cur| label < cur) {
            s.scratch.back_label = Some(label);
            s.scratch.back_succ = Some(from);
            if let Some(pred) = s.scratch.wave_pred {
                s.pending.push_back(AkoMsg::Backward { label, to: pred });
            }
        }
    }
}

fn receive_probe(s: &mut AkoState, sorted: &[&(NodeId, AkoMsg)]) {
    for &&(from, m) in sorted {
        let AkoMsg::Probe { label, to } = m else {
            continue;
        };
        if to != s.me {
            continue;
        }
        let me = s.me.raw();
        let _ = from;
        if me == label.sb {
            // Probe complete: initiate the commit walk back towards sa — unless this
            // endpoint is already engaged in another augmentation this phase.
            if !s.scratch.commit_initiated && !s.scratch.probe_initiated {
                s.scratch.commit_initiated = true;
                let next = if me == label.eb {
                    // I'm also the detection-edge endpoint (mode-A completion).
                    Some(NodeId::from(label.ea))
                } else {
                    s.scratch.completed_at_source.get(&label).copied()
                };
                if let Some(next) = next {
                    s.pending.push_back(AkoMsg::Commit { label, to: next });
                }
            }
            continue;
        }
        // Forward along the recorded path.
        let next = if me == label.ea {
            Some(NodeId::from(label.eb))
        } else if s.scratch.wave_src == Some(label.sb) {
            s.scratch.wave_pred
        } else if s.scratch.back_label == Some(label) {
            s.scratch.back_succ
        } else {
            None // path lost the race at this node: drop, fail safely
        };
        if let Some(next) = next {
            s.pending.push_back(AkoMsg::Probe { label, to: next });
        }
    }
}

fn receive_commit(s: &mut AkoState, sorted: &[&(NodeId, AkoMsg)]) {
    for &&(from, m) in sorted {
        let AkoMsg::Commit { label, to } = m else {
            continue;
        };
        if to != s.me {
            continue;
        }
        // Receiving a commit toggles the just-traversed edge.
        toggle_partner(&mut s.partner, from);
        let me = s.me.raw();
        if me == label.sa {
            continue; // augmentation complete
        }
        let next = if me == label.eb {
            Some(NodeId::from(label.ea))
        } else if s.scratch.wave_src == Some(label.sb) && s.scratch.back_succ.is_some() {
            s.scratch.back_succ
        } else {
            s.scratch.wave_pred
        };
        if let Some(next) = next {
            s.pending.push_back(AkoMsg::Commit { label, to: next });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::{generators, reference};

    /// Packed-codec roundtrip over every variant — lives here (not in the
    /// crate's proptest suite) because `PathLabel`'s fields are private.
    #[test]
    fn ako_codec_roundtrips_every_variant() {
        let label = PathLabel::canonical(3, 7, 5, u32::MAX);
        let to = NodeId::new(9);
        let msgs = [
            AkoMsg::Leader {
                leader: 4,
                dist: u32::MAX,
            },
            AkoMsg::ParentIs(NodeId::new(2)),
            AkoMsg::Propose(NodeId::new(0)),
            AkoMsg::Accept(NodeId::new(77)),
            AkoMsg::MatchedNow,
            AkoMsg::Count(123),
            AkoMsg::SizeIs(u32::MAX),
            AkoMsg::Wave {
                src: 6,
                via_matching: true,
            },
            AkoMsg::Wave {
                src: 0,
                via_matching: false,
            },
            AkoMsg::Backward { label, to },
            AkoMsg::Probe { label, to },
            AkoMsg::Commit { label, to },
        ];
        let mut lanes = [0u32; AkoMsg::LANES];
        for m in msgs {
            m.encode(&mut lanes);
            assert_eq!(AkoMsg::decode(&lanes), m);
            assert_eq!(AkoMsg::decode(&lanes).words(), m.words());
        }
    }

    #[test]
    #[should_panic(expected = "invalid AkoMsg tag")]
    fn ako_codec_rejects_invalid_tags() {
        AkoMsg::decode(&[99, 0, 0, 0, 0, 0]);
    }

    fn run_and_check(g: &congest_graph::Graph, seed: u64) {
        let opts = RunOptions {
            seed,
            ..RunOptions::default()
        };
        let run = run_bcongest(&BipartiteMatching, g, None, &opts).unwrap();
        let pairs = crate::matching_maximal::matching_pairs(&run.outputs);
        assert!(
            reference::is_matching(g, &pairs),
            "not a matching: {pairs:?}"
        );
        let want = reference::hopcroft_karp(g).expect("test graphs are bipartite");
        assert_eq!(pairs.len(), want, "matching size mismatch");
    }

    #[test]
    fn single_edge() {
        run_and_check(&congest_graph::Graph::from_edges(2, &[(0, 1)]), 1);
    }

    #[test]
    fn even_cycles() {
        run_and_check(&generators::cycle(6), 2);
        run_and_check(&generators::cycle(10), 3);
    }

    #[test]
    fn paths() {
        run_and_check(&generators::path(2), 4);
        run_and_check(&generators::path(5), 5);
        run_and_check(&generators::path(8), 6);
    }

    #[test]
    fn stars_and_trees() {
        run_and_check(&generators::star(7), 7);
        run_and_check(&generators::binary_tree(11), 8);
        run_and_check(&generators::random_tree(14, 9), 9);
    }

    #[test]
    fn random_bipartite_graphs() {
        for seed in 0..4 {
            let g = generators::random_bipartite_connected(6, 7, 0.3, seed);
            run_and_check(&g, 20 + seed);
        }
    }

    #[test]
    fn grid_is_bipartite() {
        run_and_check(&generators::grid(4, 3), 31);
    }
}
