//! One-shot neighborhood gossip in point-to-point CONGEST — the workspace's
//! canonical *order-sensitive* delivery probe.
//!
//! Every node sends its ID to each neighbor once and folds everything it hears
//! into a non-commutative checksum, so the output depends on the exact inbox
//! order the engine delivers. Any backend that reorders, drops, or duplicates a
//! message changes some node's checksum — which is why the workload registry
//! runs this over the full delivery-backend matrix.
//!
//! Unlike the broadcast algorithms, gossip has a closed-form local oracle:
//! the engine contract delivers round-`r` inboxes in ascending sender order,
//! so [`expected_gossip`] replays the fold per node without running the engine
//! at all. The registry uses it as the differential check.

use congest_engine::{CongestAlgorithm, LocalView, SurvivorMask};
use congest_graph::{Graph, NodeId};

/// The checksum multiplier (Knuth's MMIX LCG constant): any fixed odd constant
/// works, it only has to make the fold order-sensitive.
const MIX: u64 = 6364136223846793005;

/// One-shot gossip: flood each node's ID one hop with per-neighbor messages,
/// output an order-sensitive checksum over everything heard.
#[derive(Clone, Copy, Debug, Default)]
pub struct GossipOnce;

/// Per-node state of [`GossipOnce`].
#[derive(Clone, Debug)]
pub struct GossipState {
    neighbors: Vec<NodeId>,
    pending: bool,
    heard: u64,
}

/// Folds one received `(from, payload)` pair into the running checksum.
/// Shared by the state machine and the local oracle so they cannot drift.
fn fold(heard: u64, from: NodeId, w: u32, round: usize) -> u64 {
    heard
        .wrapping_mul(MIX)
        .wrapping_add(u64::from(from.raw()) ^ u64::from(w) ^ round as u64)
}

impl CongestAlgorithm for GossipOnce {
    type State = GossipState;
    type Msg = u32;
    type Output = u64;

    fn name(&self) -> &'static str {
        "gossip-once"
    }
    fn init(&self, view: &LocalView<'_>) -> GossipState {
        GossipState {
            neighbors: view.neighbors().to_vec(),
            pending: true,
            heard: u64::from(view.node().raw()),
        }
    }
    fn sends(&self, s: &GossipState, _round: usize) -> Vec<(NodeId, u32)> {
        if !s.pending {
            return Vec::new();
        }
        s.neighbors
            .iter()
            .map(|&u| (u, (s.heard & 0xffff_ffff) as u32))
            .collect()
    }
    fn on_sent(&self, s: &mut GossipState, _round: usize) {
        s.pending = false;
    }
    fn receive(&self, s: &mut GossipState, round: usize, msgs: &[(NodeId, u32)]) {
        // Deliberately order-sensitive fold: a reordered inbox would change
        // the checksum.
        for &(from, w) in msgs {
            s.heard = fold(s.heard, from, w, round);
        }
    }
    fn is_done(&self, s: &GossipState) -> bool {
        !s.pending
    }
    fn output(&self, s: &GossipState) -> u64 {
        s.heard
    }
    fn round_bound(&self, n: usize, _m: usize) -> usize {
        n + 2
    }
}

/// The closed-form oracle: what [`GossipOnce`] must output at every node.
///
/// Everyone sends in round 0 and inboxes arrive in ascending sender order
/// (the engine's delivery contract), so node `v` hears `(u, u)` for each
/// neighbor `u` in ascending ID order, folded onto its own ID.
pub fn expected_gossip(g: &Graph) -> Vec<u64> {
    g.nodes()
        .map(|v| {
            let mut senders: Vec<NodeId> = g.neighbors(v).to_vec();
            senders.sort_unstable();
            senders
                .into_iter()
                .fold(u64::from(v.raw()), |heard, u| fold(heard, u, u.raw(), 0))
        })
        .collect()
}

/// The fault-aware oracle: what [`GossipOnce`] outputs at every **live** node
/// after a [`congest_engine::FaultResponse::Restart`] plan whose last fault
/// fires at `round`.
///
/// Restart wipes all live state at each fault round, so the final checksum is
/// exactly one masked exchange folded at the last fault round: node `v` hears
/// `(u, u)` for each neighbor `u` whose edge the mask
/// [allows](SurvivorMask::allows), in ascending ID order. Crashed nodes keep
/// frozen (unspecified) state — the oracle returns `None` for them and the
/// differential check skips them.
pub fn expected_gossip_masked(g: &Graph, mask: &SurvivorMask, round: usize) -> Vec<Option<u64>> {
    g.nodes()
        .map(|v| {
            if !mask.node_up[v.index()] {
                return None;
            }
            let mut senders: Vec<NodeId> = g
                .incident(v)
                .filter(|&(e, _)| mask.allows(g, e))
                .map(|(_, u)| u)
                .collect();
            senders.sort_unstable();
            Some(senders.into_iter().fold(u64::from(v.raw()), |heard, u| {
                fold(heard, u, u.raw(), round)
            }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_congest, RunOptions};
    use congest_graph::generators;

    #[test]
    fn matches_local_oracle_on_families() {
        for g in [
            generators::gnp_connected(40, 0.15, 3),
            generators::path(17),
            generators::star(9),
            generators::cycle(12),
            generators::complete(8),
        ] {
            let run = run_congest(&GossipOnce, &g, None, &RunOptions::default()).unwrap();
            assert_eq!(run.outputs, expected_gossip(&g));
            // Exactly one message per edge direction.
            assert_eq!(run.metrics.messages, 2 * g.m() as u64);
        }
    }

    #[test]
    fn masked_oracle_matches_restarted_faulty_run() {
        use congest_engine::{FaultEvent, FaultPlan, FaultResponse};
        let g = generators::gnp_connected(24, 0.2, 5);
        // A crash at round 0 and an edge lost at round 2: the round-2 restart
        // re-gossips on the doubly-masked topology.
        let plan = FaultPlan::new(FaultResponse::Restart)
            .at(0, FaultEvent::Crash(NodeId::new(5)))
            .at(2, FaultEvent::EdgeDown(congest_graph::EdgeId::new(0)));
        let mask = plan.final_mask(&g);
        let last = plan.last_fault_round().unwrap();
        let opts = RunOptions {
            faults: Some(plan),
            ..RunOptions::default()
        };
        let run = run_congest(&GossipOnce, &g, None, &opts).unwrap();
        let want = expected_gossip_masked(&g, &mask, last);
        for v in g.nodes() {
            if let Some(w) = want[v.index()] {
                assert_eq!(run.outputs[v.index()], w, "checksum at {v:?}");
            }
        }
        assert!(run.metrics.dropped_messages > 0);
        // All-up mask at round 0 degenerates to the fault-free oracle.
        let all_up = SurvivorMask::all_up(&g);
        let base: Vec<u64> = expected_gossip_masked(&g, &all_up, 0)
            .into_iter()
            .map(Option::unwrap)
            .collect();
        assert_eq!(base, expected_gossip(&g));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        // Folding two distinct contributions in swapped order gives a
        // different sum.
        let a = fold(fold(7, NodeId::new(1), 5, 0), NodeId::new(2), 9, 0);
        let b = fold(fold(7, NodeId::new(2), 9, 0), NodeId::new(1), 5, 0);
        assert_ne!(a, b);
    }
}
