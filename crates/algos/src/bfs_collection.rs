//! A collection of BFS algorithms executed together in BCONGEST with random start
//! delays — the executable form of Theorem 1.4, and the workhorse behind the paper's
//! unweighted-APSP trade-off (Lemmas 3.22/3.23).
//!
//! Every node owns one send queue and broadcasts at most one `(bfs, dist)` pair per
//! round, scheduled by "ideal time" `delay_j + dist` (the random-delay schedule).
//! Queueing can delay a wavefront, so a node may first learn a non-shortest distance;
//! correctness is restored by *re-broadcast on improvement* (a Bellman–Ford safety net
//! that fires rarely — the tests measure how rarely). The collection is
//! aggregation-based (Definition 3.1): messages to one node in one round are reduced to
//! the per-BFS minimum, and Theorem 1.4(ii) keeps the number of distinct BFS per
//! node-round at `O(log n)` w.h.p., so aggregates stay `Õ(1)` words.

use congest_engine::{
    AggregationAlgorithm, BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode,
};
use congest_graph::{rng, NodeId};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One BFS exploration message: which BFS, and the sender's distance in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsMsg {
    /// Index of the BFS instance (into [`BfsCollection::sources`]).
    pub bfs: u32,
    /// The sender's distance from that BFS's source.
    pub dist: u32,
}

impl Wire for BfsMsg {} // two IDs: one word

impl WireEncode for BfsMsg {
    const LANES: usize = 2;
    fn encode(&self, out: &mut [u32]) {
        out[0] = self.bfs;
        out[1] = self.dist;
    }
}

impl WireDecode for BfsMsg {
    fn decode(lanes: &[u32]) -> Self {
        Self {
            bfs: lanes[0],
            dist: lanes[1],
        }
    }
}

/// A collection of `ℓ ≤ n` BFS algorithms with per-instance start delays and an
/// optional shared depth limit.
///
/// # Examples
///
/// ```
/// use congest_algos::bfs_collection::BfsCollection;
/// use congest_engine::{run_bcongest, RunOptions};
/// use congest_graph::{generators, NodeId, reference};
///
/// let g = generators::gnp_connected(20, 0.15, 3);
/// let sources: Vec<NodeId> = g.nodes().collect();
/// let algo = BfsCollection::new(sources).with_random_delays(42);
/// let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
/// // Node 5's distance vector matches sequential BFS from each source.
/// let want = reference::all_pairs_bfs(&g);
/// for s in 0..20 {
///     assert_eq!(run.outputs[5].entries[s].dist, want[s][5]);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct BfsCollection {
    sources: Vec<NodeId>,
    delays: Vec<usize>,
    depth_limit: u32,
}

impl BfsCollection {
    /// A collection with all delays zero.
    pub fn new(sources: Vec<NodeId>) -> Self {
        let delays = vec![0; sources.len()];
        Self {
            sources,
            delays,
            depth_limit: u32::MAX,
        }
    }

    /// Assigns each BFS a uniform random delay in `[0, ℓ)` (Theorem 1.4's shared
    /// randomness; all nodes must use the same `seed`).
    pub fn with_random_delays(mut self, seed: u64) -> Self {
        let mut r = rng::seeded(rng::derive(seed, 0xde1a_5001));
        let l = self.sources.len().max(1);
        self.delays = (0..self.sources.len())
            .map(|_| rand::Rng::random_range(&mut r, 0..l))
            .collect();
        self
    }

    /// Explicit delays (must be one per source).
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != sources.len()`.
    pub fn with_delays(mut self, delays: Vec<usize>) -> Self {
        assert_eq!(delays.len(), self.sources.len());
        self.delays = delays;
        self
    }

    /// Truncates every BFS at `limit` hops (the partial BFS of Lemma 3.23).
    pub fn with_depth_limit(mut self, limit: u32) -> Self {
        self.depth_limit = limit;
        self
    }

    /// The BFS sources.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The per-instance start delays.
    pub fn delays(&self) -> &[usize] {
        &self.delays
    }

    /// The shared depth limit.
    pub fn depth_limit(&self) -> u32 {
        self.depth_limit
    }

    /// The dilation of the collection: each partial BFS runs for at most
    /// `min(depth_limit, n)` rounds in isolation.
    pub fn dilation(&self, n: usize) -> usize {
        (self.depth_limit as usize).min(n)
    }
}

/// Per-BFS result at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsEntry {
    /// Hop distance from this BFS's source (`None`: unreached within the limit).
    pub dist: Option<u32>,
    /// Parent in this BFS's tree.
    pub parent: Option<NodeId>,
}

/// Output of the collection at one node: one entry per BFS instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectionOutput {
    /// Indexed by BFS instance.
    pub entries: Vec<BfsEntry>,
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct CollectionState {
    dist: Vec<Option<u32>>,
    parent: Vec<Option<NodeId>>,
    /// Distance at which each BFS was last broadcast by this node.
    sent_dist: Vec<Option<u32>>,
    /// Pending broadcasts: (ideal round = delay + dist, bfs index).
    /// Invariant: `(delay_j + dist[j], j)` is queued iff `dist[j]` is set and differs
    /// from `sent_dist[j]` (and is below the depth limit).
    queue: BTreeSet<(usize, u32)>,
    /// Number of re-broadcasts caused by improvements after a send (statistics).
    pub rebroadcasts: u64,
}

impl BfsCollection {
    fn enqueue(&self, s: &mut CollectionState, j: u32) {
        let d = s.dist[j as usize].expect("enqueue requires a distance");
        if d < self.depth_limit {
            s.queue.insert((self.delays[j as usize] + d as usize, j));
        }
    }

    fn dequeue_if_present(&self, s: &mut CollectionState, j: u32, old_dist: u32) {
        s.queue
            .remove(&(self.delays[j as usize] + old_dist as usize, j));
    }
}

impl BcongestAlgorithm for BfsCollection {
    type State = CollectionState;
    type Msg = BfsMsg;
    type Output = CollectionOutput;

    fn name(&self) -> &'static str {
        "bfs-collection"
    }

    fn init(&self, view: &LocalView<'_>) -> CollectionState {
        let l = self.sources.len();
        let mut s = CollectionState {
            dist: vec![None; l],
            parent: vec![None; l],
            sent_dist: vec![None; l],
            queue: BTreeSet::new(),
            rebroadcasts: 0,
        };
        for (j, &src) in self.sources.iter().enumerate() {
            if src == view.node() {
                s.dist[j] = Some(0);
                self.enqueue(&mut s, j as u32);
            }
        }
        s
    }

    fn broadcast(&self, s: &CollectionState, round: usize) -> Option<BfsMsg> {
        let &(ready, j) = s.queue.first()?;
        (ready <= round).then(|| BfsMsg {
            bfs: j,
            dist: s.dist[j as usize].expect("queued BFS has a distance"),
        })
    }

    fn on_broadcast_sent(&self, s: &mut CollectionState, _round: usize) {
        let (_, j) = s.queue.pop_first().expect("a broadcast was just collected");
        if s.sent_dist[j as usize].is_some() {
            s.rebroadcasts += 1;
        }
        s.sent_dist[j as usize] = s.dist[j as usize];
    }

    fn receive(&self, s: &mut CollectionState, _round: usize, msgs: &[(NodeId, BfsMsg)]) {
        // Deterministic processing order: by (bfs, dist, sender).
        let mut sorted: Vec<&(NodeId, BfsMsg)> = msgs.iter().collect();
        sorted.sort_unstable_by_key(|(from, m)| (m.bfs, m.dist, *from));
        for &&(from, m) in &sorted {
            let j = m.bfs as usize;
            let cand = m.dist + 1;
            if cand > self.depth_limit {
                continue;
            }
            let better = s.dist[j].is_none_or(|d| cand < d);
            if !better {
                continue;
            }
            if let Some(old) = s.dist[j] {
                self.dequeue_if_present(s, m.bfs, old);
            }
            s.dist[j] = Some(cand);
            s.parent[j] = Some(from);
            // (Re-)schedule the broadcast unless this exact distance already went out.
            if s.sent_dist[j] != Some(cand) {
                self.enqueue(s, m.bfs);
            }
        }
    }

    fn is_done(&self, s: &CollectionState) -> bool {
        s.queue.is_empty()
    }

    fn output(&self, s: &CollectionState) -> CollectionOutput {
        CollectionOutput {
            entries: s
                .dist
                .iter()
                .zip(&s.parent)
                .map(|(&dist, &parent)| BfsEntry { dist, parent })
                .collect(),
        }
    }

    fn next_activity(&self, s: &CollectionState, after: usize) -> Option<usize> {
        s.queue.first().map(|&(ready, _)| after.max(ready))
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        let max_delay = self.delays.iter().copied().max().unwrap_or(0);
        // Õ(ℓ + dilation) w.h.p. (Theorem 1.4) plus generous slack for re-broadcasts.
        8 * (max_delay + self.sources.len() + self.dilation(n)) + 64
    }

    fn output_words(&self, out: &CollectionOutput) -> usize {
        out.entries.len().max(1)
    }
}

impl AggregationAlgorithm for BfsCollection {
    fn aggregate(
        &self,
        _receiver: NodeId,
        _round: usize,
        msgs: Vec<(NodeId, BfsMsg)>,
    ) -> Vec<(NodeId, BfsMsg)> {
        // Per BFS instance, only the minimum distance matters; ties broken by sender ID
        // so that simulated and direct runs pick identical parents.
        let mut best: BTreeMap<u32, (u32, NodeId)> = BTreeMap::new();
        for (from, m) in msgs {
            let entry = best.entry(m.bfs).or_insert((m.dist, from));
            if (m.dist, from) < *entry {
                *entry = (m.dist, from);
            }
        }
        best.into_iter()
            .map(|(bfs, (dist, from))| (from, BfsMsg { bfs, dist }))
            .collect()
    }

    fn aggregate_budget(&self, n: usize) -> usize {
        // Theorem 1.4(ii): O(log n) distinct BFS per node-round w.h.p.
        let log = (usize::BITS - n.max(2).leading_zeros()) as usize;
        (8 * log).min(self.sources.len().max(1))
    }
}

/// Extracts, for BFS `j`, the parent vector over all nodes from a run's outputs.
pub fn parents_of_bfs(outputs: &[CollectionOutput], j: usize) -> Vec<Option<NodeId>> {
    outputs.iter().map(|o| o.entries[j].parent).collect()
}

/// Extracts, for BFS `j`, the distance vector over all nodes.
pub fn dists_of_bfs(outputs: &[CollectionOutput], j: usize) -> Vec<Option<u32>> {
    outputs.iter().map(|o| o.entries[j].dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, run_bcongest_observed, RunOptions};
    use congest_graph::{generators, reference};

    #[test]
    fn all_sources_match_reference() {
        let g = generators::gnp_connected(30, 0.1, 7);
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(9);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for v in g.nodes() {
            for (s, row) in want.iter().enumerate() {
                assert_eq!(
                    run.outputs[v.index()].entries[s].dist,
                    row[v.index()],
                    "dist({s},{v:?})"
                );
            }
        }
    }

    #[test]
    fn depth_limited_collection_truncates() {
        let g = generators::path(8);
        let algo = BfsCollection::new(g.nodes().collect())
            .with_depth_limit(3)
            .with_random_delays(1);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for v in g.nodes() {
            for (s, row) in want.iter().enumerate() {
                let expect = row[v.index()].filter(|&d| d <= 3);
                assert_eq!(run.outputs[v.index()].entries[s].dist, expect);
            }
        }
    }

    #[test]
    fn broadcast_complexity_near_n_per_source() {
        // B should be ~ n per full BFS (one broadcast per (node, bfs) pair), with few
        // re-broadcasts.
        let g = generators::gnp_connected(25, 0.15, 3);
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(5);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        let n = g.n() as u64;
        assert!(run.metrics.broadcasts >= n * (n - 1) / 2);
        // Allow 30% slack for re-broadcasts; measured slack is usually ~0-2%.
        assert!(
            run.metrics.broadcasts <= n * n * 13 / 10,
            "B = {} for n = {n}",
            run.metrics.broadcasts
        );
    }

    #[test]
    fn completion_within_theorem_1_4_bound() {
        let g = generators::gnp_connected(40, 0.1, 11);
        let l = g.n();
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(13);
        let run = run_bcongest(&algo, &g, None, &RunOptions::default()).unwrap();
        let dilation = algo.dilation(g.n()) as u64;
        // Õ(ℓ + dilation): use a generous constant; the bench measures the real ratio.
        assert!(
            run.metrics.rounds <= 8 * (l as u64 + dilation),
            "rounds = {}",
            run.metrics.rounds
        );
    }

    #[test]
    fn distinct_bfs_per_round_is_logarithmic() {
        let g = generators::gnp_connected(50, 0.15, 17);
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(19);
        let mut max_distinct = 0usize;
        let _ = run_bcongest_observed(
            &algo,
            &g,
            None,
            &RunOptions::default(),
            |_node, _round, inbox| {
                let mut ids: Vec<u32> = inbox.iter().map(|(_, m)| m.bfs).collect();
                ids.sort_unstable();
                ids.dedup();
                max_distinct = max_distinct.max(ids.len());
            },
        )
        .unwrap();
        // Theorem 1.4(ii): O(log n). log2(50) ≈ 5.6; allow constant 6.
        assert!(
            max_distinct <= 6 * 6,
            "max distinct BFS per node-round = {max_distinct}"
        );
    }

    #[test]
    fn aggregation_keeps_min_per_bfs() {
        let algo = BfsCollection::new(vec![NodeId::new(0), NodeId::new(1)]);
        let msgs = vec![
            (NodeId::new(3), BfsMsg { bfs: 0, dist: 5 }),
            (NodeId::new(2), BfsMsg { bfs: 0, dist: 3 }),
            (NodeId::new(4), BfsMsg { bfs: 1, dist: 1 }),
            (NodeId::new(5), BfsMsg { bfs: 0, dist: 3 }),
        ];
        let agg = algo.aggregate(NodeId::new(9), 0, msgs);
        assert_eq!(agg.len(), 2);
        assert!(agg.contains(&(NodeId::new(2), BfsMsg { bfs: 0, dist: 3 })));
        assert!(agg.contains(&(NodeId::new(4), BfsMsg { bfs: 1, dist: 1 })));
    }

    #[test]
    fn aggregation_is_partition_invariant() {
        // Definition 3.1: receive(M) == receive(∪ agg(M_i)) for any partition.
        let g = generators::gnp_connected(20, 0.2, 23);
        let algo = BfsCollection::new(g.nodes().collect());
        let msgs: Vec<(NodeId, BfsMsg)> = (0..10)
            .map(|i| {
                (
                    NodeId::new(i + 1),
                    BfsMsg {
                        bfs: (i % 3) as u32,
                        dist: (10 - i) as u32,
                    },
                )
            })
            .collect();
        let view = congest_engine::LocalView::new(&g, None, NodeId::new(0), 1);
        let mut direct = algo.init(&view);
        algo.receive(&mut direct, 4, &msgs);

        let mut parts = algo.init(&view);
        let (a, b) = msgs.split_at(4);
        let mut union: Vec<(NodeId, BfsMsg)> = algo.aggregate(NodeId::new(0), 4, a.to_vec());
        union.extend(algo.aggregate(NodeId::new(0), 4, b.to_vec()));
        algo.receive(&mut parts, 4, &union);

        assert_eq!(algo.output(&direct), algo.output(&parts));
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let a = BfsCollection::new((0..10).map(NodeId::new).collect()).with_random_delays(3);
        let b = BfsCollection::new((0..10).map(NodeId::new).collect()).with_random_delays(3);
        assert_eq!(a.delays(), b.delays());
    }
}
