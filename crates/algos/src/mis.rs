//! Luby's maximal independent set in BCONGEST — the paper's introductory example of a
//! broadcast-based algorithm whose message complexity (`Θ(m)` per phase) far exceeds
//! its broadcast complexity (`O(n)` per phase), making it a natural Theorem 2.1
//! payload.
//!
//! Each phase has three rounds:
//! 1. every undecided node broadcasts a fresh random priority (a pure function of its
//!    seed and the phase number, so the broadcast schedule is self-driven);
//! 2. local priority minima join the MIS and broadcast `Join`;
//! 3. nodes adjacent to a joiner leave and broadcast `Leave` (so neighbors can update
//!    their undecided-neighbor sets).

use congest_engine::{BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode};
use congest_graph::{rng, NodeId};
use std::collections::BTreeSet;

/// Messages of Luby's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisMsg {
    /// Phase priority draw.
    Priority(u64),
    /// "I joined the MIS."
    Join,
    /// "I left (a neighbor joined)."
    Leave,
}

impl Wire for MisMsg {}

impl WireEncode for MisMsg {
    // Lane 0 is the variant tag; lanes 1–2 carry the priority (Join/Leave
    // leave them zero).
    const LANES: usize = 3;
    fn encode(&self, out: &mut [u32]) {
        match self {
            MisMsg::Priority(p) => {
                out[0] = 0;
                p.encode(&mut out[1..]);
            }
            MisMsg::Join => {
                out[0] = 1;
                out[1] = 0;
                out[2] = 0;
            }
            MisMsg::Leave => {
                out[0] = 2;
                out[1] = 0;
                out[2] = 0;
            }
        }
    }
}

impl WireDecode for MisMsg {
    fn decode(lanes: &[u32]) -> Self {
        match lanes[0] {
            0 => MisMsg::Priority(u64::decode(&lanes[1..])),
            1 => MisMsg::Join,
            2 => MisMsg::Leave,
            tag => unreachable!("invalid MisMsg tag {tag}"),
        }
    }
}

/// Node decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisDecision {
    /// Still undecided (only possible if the round guard is hit).
    Undecided,
    /// In the independent set.
    In,
    /// Dominated by an MIS neighbor.
    Out,
}

/// Luby's randomized MIS.
#[derive(Clone, Copy, Debug, Default)]
pub struct LubyMis;

/// Per-node state.
#[derive(Clone, Debug)]
pub struct MisState {
    decision: MisDecision,
    /// Neighbors still undecided.
    undecided: BTreeSet<NodeId>,
    my_id: NodeId,
    seed: u64,
    /// Last phase in which the priority was broadcast.
    priority_sent_phase: Option<usize>,
    /// Phase in which this node joined (its `Join` goes out in that phase's round 1).
    join_phase: Option<usize>,
    join_sent: bool,
    /// Phase in which this node left (its `Leave` goes out in that phase's round 2).
    leave_phase: Option<usize>,
    leave_sent: bool,
}

const SUBROUNDS: usize = 3;

impl MisState {
    /// This node's priority for `phase` — a pure function, so `broadcast` needs no
    /// preparation tick.
    fn priority(&self, phase: usize) -> u64 {
        rng::derive(self.seed, 0x4d49_5000 ^ phase as u64)
    }
}

impl BcongestAlgorithm for LubyMis {
    type State = MisState;
    type Msg = MisMsg;
    type Output = MisDecision;

    fn name(&self) -> &'static str {
        "luby-mis"
    }

    fn init(&self, view: &LocalView<'_>) -> MisState {
        let undecided: BTreeSet<NodeId> = view.neighbors().iter().copied().collect();
        MisState {
            decision: if undecided.is_empty() {
                MisDecision::In // isolated nodes join immediately
            } else {
                MisDecision::Undecided
            },
            undecided,
            my_id: view.node(),
            seed: view.seed(),
            priority_sent_phase: None,
            join_phase: None,
            join_sent: false,
            leave_phase: None,
            leave_sent: false,
        }
    }

    fn broadcast(&self, s: &MisState, round: usize) -> Option<MisMsg> {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => (s.decision == MisDecision::Undecided
                && !s.undecided.is_empty()
                && s.priority_sent_phase != Some(phase))
            .then(|| MisMsg::Priority(s.priority(phase))),
            1 => (s.join_phase == Some(phase) && !s.join_sent).then_some(MisMsg::Join),
            _ => (s.leave_phase == Some(phase) && !s.leave_sent).then_some(MisMsg::Leave),
        }
    }

    fn on_broadcast_sent(&self, s: &mut MisState, round: usize) {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => s.priority_sent_phase = Some(phase),
            1 => s.join_sent = true,
            _ => s.leave_sent = true,
        }
    }

    fn receive(&self, s: &mut MisState, round: usize, msgs: &[(NodeId, MisMsg)]) {
        let phase = round / SUBROUNDS;
        match round % SUBROUNDS {
            0 => {
                if s.decision != MisDecision::Undecided {
                    return;
                }
                // Senders of priorities are undecided by definition of the schedule.
                let best = msgs
                    .iter()
                    .filter_map(|&(from, m)| match m {
                        MisMsg::Priority(p) => Some((p, from)),
                        _ => None,
                    })
                    .min();
                let me = (s.priority(phase), s.my_id);
                if best.is_none_or(|b| me < b) {
                    s.decision = MisDecision::In;
                    s.join_phase = Some(phase);
                    s.join_sent = false;
                }
            }
            1 => {
                let mut neighbor_joined = false;
                for &(from, m) in msgs {
                    if m == MisMsg::Join {
                        s.undecided.remove(&from);
                        neighbor_joined = true;
                    }
                }
                if neighbor_joined && s.decision == MisDecision::Undecided {
                    s.decision = MisDecision::Out;
                    s.leave_phase = Some(phase);
                    s.leave_sent = false;
                }
            }
            _ => {
                for &(from, m) in msgs {
                    if m == MisMsg::Leave {
                        s.undecided.remove(&from);
                    }
                }
                // All neighbors decided Out ⇒ joining is safe, and nobody needs to be
                // told (every neighbor is already decided).
                if s.decision == MisDecision::Undecided && s.undecided.is_empty() {
                    s.decision = MisDecision::In;
                }
            }
        }
    }

    fn is_done(&self, s: &MisState) -> bool {
        s.decision != MisDecision::Undecided
            && (s.join_phase.is_none() || s.join_sent)
            && (s.leave_phase.is_none() || s.leave_sent)
    }

    fn output(&self, s: &MisState) -> MisDecision {
        s.decision
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        let log = (usize::BITS - n.max(2).leading_zeros()) as usize;
        SUBROUNDS * (20 * log + 20)
    }

    fn output_words(&self, _out: &MisDecision) -> usize {
        1
    }
}

/// Validates that `decisions` is a maximal independent set of `g`.
pub fn is_valid_mis(g: &congest_graph::Graph, decisions: &[MisDecision]) -> bool {
    // Independence.
    for (_, u, v) in g.edges() {
        if decisions[u.index()] == MisDecision::In && decisions[v.index()] == MisDecision::In {
            return false;
        }
    }
    // Maximality & decidedness: every node is In, or Out with an In neighbor.
    for v in g.nodes() {
        match decisions[v.index()] {
            MisDecision::In => {}
            MisDecision::Out => {
                if !g
                    .neighbors(v)
                    .iter()
                    .any(|u| decisions[u.index()] == MisDecision::In)
                {
                    return false;
                }
            }
            MisDecision::Undecided => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::generators;

    #[test]
    fn valid_mis_on_families() {
        for (i, g) in [
            generators::gnp_connected(40, 0.1, 1),
            generators::complete(12),
            generators::path(17),
            generators::star(9),
            generators::grid(6, 5),
        ]
        .iter()
        .enumerate()
        {
            let opts = RunOptions {
                seed: i as u64,
                ..RunOptions::default()
            };
            let run = run_bcongest(&LubyMis, g, None, &opts).unwrap();
            assert!(is_valid_mis(g, &run.outputs), "family {i}");
        }
    }

    #[test]
    fn complete_graph_has_one_in() {
        let g = generators::complete(10);
        let run = run_bcongest(&LubyMis, &g, None, &RunOptions::default()).unwrap();
        let ins = run
            .outputs
            .iter()
            .filter(|&&d| d == MisDecision::In)
            .count();
        assert_eq!(ins, 1);
    }

    #[test]
    fn isolated_nodes_join() {
        let g = congest_graph::Graph::from_edges(3, &[(0, 1)]);
        let run = run_bcongest(&LubyMis, &g, None, &RunOptions::default()).unwrap();
        assert_eq!(run.outputs[2], MisDecision::In);
    }

    #[test]
    fn broadcast_complexity_much_less_than_messages_on_dense() {
        let g = generators::complete(20);
        let run = run_bcongest(&LubyMis, &g, None, &RunOptions::default()).unwrap();
        // Dense graph: messages = Θ(B · n); the gap Theorem 2.1 exploits.
        assert!(run.metrics.messages >= run.metrics.broadcasts * 10);
    }

    #[test]
    fn different_seeds_give_valid_but_possibly_different_sets() {
        let g = generators::gnp_connected(30, 0.15, 5);
        for seed in 0..5 {
            let opts = RunOptions {
                seed,
                ..RunOptions::default()
            };
            let run = run_bcongest(&LubyMis, &g, None, &opts).unwrap();
            assert!(is_valid_mis(&g, &run.outputs), "seed {seed}");
        }
    }
}
