//! Property-based tests for the distributed algorithms: exactness against
//! sequential oracles and validity of randomized outputs across arbitrary seeds.

use congest_algos::apsp_weighted::{WApspMsg, WeightedApsp};
use congest_algos::bfs::Bfs;
use congest_algos::bfs_collection::{BfsCollection, BfsMsg};
use congest_algos::leader::LeaderMsg;
use congest_algos::matching_maximal::{matching_pairs, IsraeliItai, MatchMsg};
use congest_algos::mis::{is_valid_mis, LubyMis, MisMsg};
use congest_algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_engine::{run_bcongest, RunOptions, WireDecode};
use congest_graph::{generators, reference, NodeId, WeightedGraph};
use proptest::prelude::*;

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn bfs_exact_on_arbitrary_connected_graphs(seed in 0u64..500, n in 8usize..36) {
        let g = generators::gnp_connected(n, 0.15, seed);
        let src = NodeId::new(seed as usize % n);
        let run = run_bcongest(&Bfs::new(src), &g, None, &opts(seed)).unwrap();
        let want = reference::bfs_distances(&g, src);
        for v in g.nodes() {
            prop_assert_eq!(run.outputs[v.index()].dist, want[v.index()]);
        }
    }

    #[test]
    fn bfs_collection_exact_with_arbitrary_delays(seed in 0u64..200, delay_seed in 0u64..50) {
        let g = generators::gnp_connected(18, 0.2, seed);
        let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(delay_seed);
        let run = run_bcongest(&algo, &g, None, &opts(seed)).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, out) in run.outputs.iter().enumerate() {
            for (s, entry) in out.entries.iter().enumerate() {
                prop_assert_eq!(entry.dist, want[s][v]);
            }
        }
    }

    #[test]
    fn weighted_apsp_exact_with_arbitrary_weights(seed in 0u64..200, wmax in 1u64..12) {
        let g = generators::gnp_connected(14, 0.25, seed);
        let wg = WeightedGraph::random_weights(&g, 0..=wmax, seed);
        let algo = WeightedApsp::new(wg.max_weight());
        let run = run_bcongest(&algo, &g, Some(wg.weights()), &opts(seed)).unwrap();
        let want = reference::all_pairs_dijkstra(&wg);
        for (v, out) in run.outputs.iter().enumerate() {
            for (s, &d) in out.dist.iter().enumerate() {
                prop_assert_eq!(d, want[s][v]);
            }
        }
    }

    #[test]
    fn mis_valid_for_any_seed(seed in 0u64..500) {
        let g = generators::gnp_connected(24, 0.2, seed % 7);
        let run = run_bcongest(&LubyMis, &g, None, &opts(seed)).unwrap();
        prop_assert!(is_valid_mis(&g, &run.outputs));
    }

    #[test]
    fn israeli_itai_maximal_for_any_seed(seed in 0u64..500) {
        let g = generators::gnp_connected(22, 0.2, seed % 5);
        let run = run_bcongest(&IsraeliItai, &g, None, &opts(seed)).unwrap();
        let pairs = matching_pairs(&run.outputs);
        prop_assert!(reference::is_maximal_matching(&g, &pairs));
    }

    #[test]
    fn mst_is_a_spanning_tree_matching_the_oracle(seed in 0u64..300, n in 8usize..32, wmax in 1u64..20) {
        // Arbitrary weights, duplicates included: the output must be a spanning tree
        // (n−1 edges, acyclic, connecting) and exactly the Kruskal/Prim forest under
        // the (weight, EdgeId) order.
        let g = generators::gnp_connected(n, 0.2, seed);
        let wg = WeightedGraph::random_weights(&g, 1..=wmax, seed);
        let run = distributed_mst(&wg, &MstConfig::default()).unwrap();
        prop_assert_eq!(run.edges.len(), n - 1);
        prop_assert!(reference::is_spanning_forest(&g, &run.edges));
        let want = reference::mst_kruskal(&wg);
        prop_assert_eq!(&run.edges, &want.edges);
        prop_assert_eq!(run.total_weight, want.total_weight);
        prop_assert_eq!(want, reference::mst_prim(&wg));
    }

    #[test]
    fn mst_messages_stay_within_the_configured_budget(seed in 0u64..300, n in 8usize..32) {
        // The Õ(m) bound, installed as a *hard* budget: the run fails rather than
        // overspends, so success is the property.
        let g = generators::gnp_connected(n, 0.25, seed);
        let wg = WeightedGraph::random_unique_weights(&g, seed);
        let budget = message_bound(g.n(), g.m());
        let cfg = MstConfig { message_budget: Some(budget), ..Default::default() };
        let run = distributed_mst(&wg, &cfg).unwrap();
        prop_assert!(run.metrics.messages <= budget);
        prop_assert!(run.complete);
    }

    #[test]
    fn bfs_tree_parents_consistent(seed in 0u64..200) {
        let g = generators::gnp_connected(20, 0.2, seed);
        let run = run_bcongest(&Bfs::new(NodeId::new(0)), &g, None, &opts(seed)).unwrap();
        for v in g.nodes().skip(1) {
            if let Some(p) = run.outputs[v.index()].parent {
                prop_assert!(g.has_edge(v, p));
                prop_assert_eq!(
                    run.outputs[p.index()].dist.unwrap() + 1,
                    run.outputs[v.index()].dist.unwrap()
                );
            }
        }
    }

    #[test]
    fn algo_message_codecs_roundtrip(a in 0u32..=u32::MAX, b in 0u32..=u32::MAX, d in 0u64..=u64::MAX, tag in 0u32..3) {
        // Every runner message type of this crate survives the flat plane's
        // packed encode→decode identically, with word accounting intact.
        codec_roundtrip(LeaderMsg { leader: a, dist: b })?;
        codec_roundtrip(BfsMsg { bfs: a, dist: b })?;
        codec_roundtrip(WApspMsg { source: a, dist: d })?;
        codec_roundtrip(match tag {
            0 => MisMsg::Priority(d),
            1 => MisMsg::Join,
            _ => MisMsg::Leave,
        })?;
        codec_roundtrip(match tag {
            0 => MatchMsg::Propose(NodeId::from(a)),
            1 => MatchMsg::Accept(NodeId::from(a)),
            _ => MatchMsg::MatchedNow,
        })?;
    }
}

/// Encode→decode must be the identity, and the decoded value must charge the
/// same number of CONGEST words.
fn codec_roundtrip<T: WireDecode + PartialEq + std::fmt::Debug>(v: T) -> Result<(), TestCaseError> {
    let mut lanes = vec![0u32; T::LANES];
    v.encode(&mut lanes);
    let back = T::decode(&lanes);
    prop_assert_eq!(back.words(), v.words());
    prop_assert_eq!(back, v);
    Ok(())
}
