//! Property-based tests for the graph substrate.

use congest_graph::{generators, reference, Graph, NodeId, WeightedGraph};
use proptest::prelude::*;

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..(n * 2))
}

proptest! {
    #[test]
    fn csr_degree_sums_to_twice_m(edges in arb_edges(12)) {
        let g = Graph::from_edges(12, &edges);
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn adjacency_is_symmetric(edges in arb_edges(10)) {
        let g = Graph::from_edges(10, &edges);
        for (_, u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert!(g.neighbors(u).contains(&v));
            prop_assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn edge_between_agrees_with_edges(edges in arb_edges(10)) {
        let g = Graph::from_edges(10, &edges);
        for (e, u, v) in g.edges() {
            prop_assert_eq!(g.edge_between(u, v), Some(e));
            prop_assert_eq!(g.edge_between(v, u), Some(e));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(seed in 0u64..50) {
        let g = generators::gnp_connected(25, 0.12, seed);
        let dist = reference::bfs_distances(&g, NodeId::new(0));
        for (_, u, v) in g.edges() {
            let du = dist[u.index()].unwrap();
            let dv = dist[v.index()].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1);
        }
    }

    #[test]
    fn dijkstra_relaxed_on_all_edges(seed in 0u64..30) {
        let g = generators::gnp_connected(20, 0.15, seed);
        let wg = WeightedGraph::random_weights(&g, 1..=20, seed);
        let dist = reference::dijkstra(&wg, NodeId::new(0));
        for (e, u, v) in g.edges() {
            let du = dist[u.index()].unwrap();
            let dv = dist[v.index()].unwrap();
            let w = wg.weight(e);
            prop_assert!(du <= dv + w);
            prop_assert!(dv <= du + w);
        }
    }

    #[test]
    fn bfs_limited_is_truncation(seed in 0u64..20, limit in 0u32..6) {
        let g = generators::gnp_connected(18, 0.15, seed);
        let full = reference::bfs_distances(&g, NodeId::new(0));
        let lim = reference::bfs_limited(&g, NodeId::new(0), limit);
        for v in g.nodes() {
            let f = full[v.index()].unwrap();
            if f <= limit {
                prop_assert_eq!(lim[v.index()], Some(f));
            } else {
                prop_assert_eq!(lim[v.index()], None);
            }
        }
    }

    #[test]
    fn hopcroft_karp_is_monotone_under_edge_addition(seed in 0u64..20) {
        let g1 = generators::random_bipartite(8, 8, 0.2, seed);
        let g2 = generators::random_bipartite(8, 8, 0.5, seed); // superset-ish density
        let m1 = reference::hopcroft_karp(&g1).unwrap();
        let m2 = reference::hopcroft_karp(&g2).unwrap();
        // Not literally a superset, but matching sizes stay within [0, 8].
        prop_assert!(m1 <= 8 && m2 <= 8);
    }

    #[test]
    fn random_tree_is_spanning_tree(n in 2usize..40, seed in 0u64..20) {
        let t = generators::random_tree(n, seed);
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(reference::is_connected(&t));
    }
}
