//! # congest-graph
//!
//! Graph substrate for the CONGEST APSP reproduction (Dufoulon et al., PODC 2025):
//!
//! * [`Graph`] — a simple undirected CSR graph (the communication network);
//! * [`WeightedGraph`] — non-negative integer edge weights;
//! * [`generators`] — seeded graph families (paths, grids, G(n,p), barbells, …);
//! * [`mod@reference`] — centralized oracle algorithms (BFS, Dijkstra, Hopcroft–Karp, …)
//!   used to verify the distributed implementations;
//! * [`dot`] — GraphViz export (Figure 1 reproduction);
//! * [`rng`] — deterministic seed derivation used by every randomized component.
//!
//! ## Example
//!
//! ```
//! use congest_graph::{generators, reference, NodeId};
//!
//! let g = generators::gnp_connected(50, 0.1, 1);
//! let dist = reference::bfs_distances(&g, NodeId::new(0));
//! assert!(dist.iter().all(|d| d.is_some())); // connected
//! ```

mod builder;
pub mod dot;
pub mod generators;
mod graph;
mod ids;
pub mod reference;
pub mod rng;
mod weighted;

pub use builder::{edge_subgraph, induced_subgraph_same_ids, nodes_in_set, GraphBuilder};
pub use graph::Graph;
pub use ids::{ClusterId, EdgeId, NodeId};
pub use weighted::{WeightCountError, WeightedGraph};
