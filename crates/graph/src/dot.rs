//! GraphViz DOT export, with optional cluster coloring — used to reproduce the paper's
//! Figure 1 (an LDC decomposition with highlighted inter-cluster communication edges).

use crate::ids::EdgeId;
use crate::Graph;
use std::fmt::Write as _;

/// Styling of one edge in [`to_dot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EdgeStyle {
    /// Normal edge.
    #[default]
    Plain,
    /// Bold edge (Figure 1 uses bold for the inter-cluster edges in `F`).
    Bold,
    /// Dashed edge (Figure 1 uses dashed for inter-cluster edges *not* in `F`).
    Dashed,
}

/// Options for DOT rendering.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Cluster index per node; nodes sharing an index are drawn in the same color and
    /// grouped in a GraphViz `subgraph cluster_<i>`.
    pub cluster_of: Option<Vec<usize>>,
    /// Per-edge styles (indexed by [`EdgeId`]); missing entries default to plain.
    pub edge_style: Option<Vec<EdgeStyle>>,
    /// Graph label.
    pub label: Option<String>,
}

const PALETTE: &[&str] = &[
    "#a6cee3", "#1f78b4", "#b2df8a", "#33a02c", "#fb9a99", "#e31a1c", "#fdbf6f", "#ff7f00",
    "#cab2d6", "#6a3d9a", "#ffff99", "#b15928",
];

/// Renders `g` as a GraphViz DOT string.
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, dot};
///
/// let g = generators::cycle(4);
/// let s = dot::to_dot(&g, &dot::DotOptions::default());
/// assert!(s.starts_with("graph G {"));
/// assert!(s.contains("0 -- 1"));
/// ```
pub fn to_dot(g: &Graph, opts: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("graph G {\n");
    if let Some(label) = &opts.label {
        let _ = writeln!(out, "  label=\"{}\";", label.replace('"', "'"));
    }
    out.push_str("  node [shape=circle, style=filled, fillcolor=white];\n");

    if let Some(cluster_of) = &opts.cluster_of {
        let max_cluster = cluster_of.iter().copied().max().unwrap_or(0);
        for c in 0..=max_cluster {
            let members: Vec<usize> = (0..g.n()).filter(|&v| cluster_of[v] == c).collect();
            if members.is_empty() {
                continue;
            }
            let color = PALETTE[c % PALETTE.len()];
            let _ = writeln!(out, "  subgraph cluster_{c} {{");
            let _ = writeln!(out, "    style=rounded; color=\"{color}\";");
            for v in members {
                let _ = writeln!(out, "    {v} [fillcolor=\"{color}\"];");
            }
            out.push_str("  }\n");
        }
    }

    for (e, u, v) in g.edges() {
        let style = style_for(opts, e);
        let attr = match style {
            EdgeStyle::Plain => "",
            EdgeStyle::Bold => " [style=bold, penwidth=2.5]",
            EdgeStyle::Dashed => " [style=dashed]",
        };
        let _ = writeln!(out, "  {} -- {}{attr};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

fn style_for(opts: &DotOptions, e: EdgeId) -> EdgeStyle {
    opts.edge_style
        .as_ref()
        .and_then(|s| s.get(e.index()).copied())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn plain_render() {
        let g = generators::path(3);
        let s = to_dot(&g, &DotOptions::default());
        assert!(s.contains("0 -- 1"));
        assert!(s.contains("1 -- 2"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn clustered_render() {
        let g = generators::cycle(4);
        let opts = DotOptions {
            cluster_of: Some(vec![0, 0, 1, 1]),
            edge_style: Some(vec![EdgeStyle::Bold, EdgeStyle::Plain, EdgeStyle::Dashed]),
            label: Some("figure 1".into()),
        };
        let s = to_dot(&g, &opts);
        assert!(s.contains("subgraph cluster_0"));
        assert!(s.contains("subgraph cluster_1"));
        assert!(s.contains("style=bold"));
        assert!(s.contains("style=dashed"));
        assert!(s.contains("label=\"figure 1\""));
    }
}
