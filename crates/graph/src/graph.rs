//! The core undirected graph type, stored in compressed sparse row (CSR) form.
//!
//! [`Graph`] is the communication network of the CONGEST model: simple (no self-loops, no
//! parallel edges), undirected, with nodes identified by the dense range `0..n`.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// A simple undirected graph in CSR form.
///
/// Construction goes through [`Graph::from_edges`] (or [`GraphBuilder`](crate::GraphBuilder)
/// for incremental construction). Adjacency lists are sorted by neighbor ID, enabling
/// `O(log deg)` edge lookups.
///
/// # Examples
///
/// ```
/// use congest_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// assert!(g.edge_between(NodeId::new(0), NodeId::new(1)).is_some());
/// assert!(g.edge_between(NodeId::new(0), NodeId::new(2)).is_none());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
    adj_edge: Vec<EdgeId>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list given as `(u, v)` index pairs.
    ///
    /// Duplicate edges (in either orientation) and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint index is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut canon: Vec<(usize, usize)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| {
                assert!(
                    u < n && v < n,
                    "edge endpoint out of range: ({u},{v}) with n={n}"
                );
                if u < v {
                    (u, v)
                } else {
                    (v, u)
                }
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();

        let edges: Vec<(NodeId, NodeId)> = canon
            .iter()
            .map(|&(u, v)| (NodeId::new(u), NodeId::new(v)))
            .collect();

        let mut deg = vec![0usize; n];
        for &(u, v) in &canon {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![NodeId::default(); acc];
        let mut adj_edge = vec![EdgeId::default(); acc];
        for (i, &(u, v)) in canon.iter().enumerate() {
            let e = EdgeId::new(i);
            adj[cursor[u]] = NodeId::new(v);
            adj_edge[cursor[u]] = e;
            cursor[u] += 1;
            adj[cursor[v]] = NodeId::new(u);
            adj_edge[cursor[v]] = e;
            cursor[v] += 1;
        }
        // Canonical edges are sorted by (u, v), so each node's adjacency built this way is
        // already sorted by neighbor for the `u`-side entries but interleaved for the
        // `v`-side; sort each list to enable binary search.
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(NodeId, EdgeId)> = adj[range.clone()]
                .iter()
                .copied()
                .zip(adj_edge[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(nb, _)| nb);
            for (k, (nb, e)) in pairs.into_iter().enumerate() {
                adj[offsets[v] + k] = nb;
                adj_edge[offsets[v] + k] = e;
            }
        }

        Self {
            n,
            offsets,
            adj,
            adj_edge,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The neighbors of `v`, sorted by node ID.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The edge IDs incident to `v`, parallel to [`Graph::neighbors`].
    #[inline]
    pub fn incident_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.adj_edge[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Iterates over `(edge, neighbor)` pairs incident to `v`.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.incident_edges(v)
            .iter()
            .copied()
            .zip(self.neighbors(v).iter().copied())
    }

    /// The endpoints of edge `e`, in canonical order (`u < v`).
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        debug_assert!(a == v || b == v, "{v:?} is not an endpoint of {e:?}");
        if a == v {
            b
        } else {
            a
        }
    }

    /// Returns the edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (small, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(small);
        nbrs.binary_search(&target)
            .ok()
            .map(|k| self.incident_edges(small)[k])
    }

    /// Whether `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId::new)
    }

    /// Iterates over all edges as `(EdgeId, u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Total input size of the graph in "words" as the simulations account it: each node's
    /// input is its incident edge list, so the total is `Σ_v (deg(v) + O(1)) = 2m + n`.
    pub fn input_words(&self) -> usize {
        2 * self.m() + self.n()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.input_words(), 2 * 3 + 3);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(4, 2), (4, 0), (4, 3), (4, 1)]);
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(4))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edge_lookup() {
        let g = triangle();
        let e = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        assert_eq!(g.endpoints(e), (NodeId::new(1), NodeId::new(2)));
        assert_eq!(g.other_endpoint(e, NodeId::new(1)), NodeId::new(2));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(0)));
    }

    #[test]
    fn incident_pairs_consistent() {
        let g = triangle();
        for v in g.nodes() {
            for (e, u) in g.incident(v) {
                assert_eq!(g.other_endpoint(e, v), u);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(g.degree(NodeId::new(2)), 0);
        assert_eq!(g.neighbors(NodeId::new(3)).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }
}
