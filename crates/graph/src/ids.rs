//! Strongly-typed identifiers for nodes, edges and clusters.
//!
//! All identifiers are thin `u32` newtypes (graphs in this workspace are well below the
//! 4-billion-node mark) that exist to prevent the classic index-confusion bugs between
//! node indices, edge indices and cluster indices — see C-NEWTYPE in the Rust API
//! guidelines.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "id out of range");
                Self(index as u32)
            }

            /// Returns the identifier as a `usize` index, suitable for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifier of a node (vertex) of the communication graph.
    ///
    /// In the CONGEST model every node has a unique ID from a polynomial-size space; we use
    /// the dense range `0..n`, which is what the paper's renaming step (before Lemma 3.22)
    /// produces anyway.
    NodeId,
    "v"
);
id_type!(
    /// Identifier of an undirected edge of the communication graph.
    ///
    /// Edges are stored once (with canonical `u < v` endpoint order); both directions share
    /// the same `EdgeId`. Per-direction accounting is handled by the engine.
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a cluster within one clustering (one level of a hierarchy, or one MPX
    /// decomposition).
    ClusterId,
    "C"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = NodeId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.raw(), 17);
        assert_eq!(NodeId::from(17u32), v);
        assert_eq!(u32::from(v), 17);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(2) < NodeId::new(10));
        assert!(EdgeId::new(0) < EdgeId::new(1));
    }

    #[test]
    fn debug_display_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "v3");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
        assert_eq!(format!("{:?}", EdgeId::new(4)), "e4");
        assert_eq!(format!("{:?}", ClusterId::new(5)), "C5");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default().index(), 0);
    }
}
