//! Sequential reference algorithms used as correctness oracles for the distributed
//! implementations: BFS, Dijkstra, connectivity, diameter, Hopcroft–Karp matching,
//! and minimum spanning forests (Kruskal and Prim).
//!
//! Everything here is centralized and straightforward — the point is trustworthiness,
//! not speed (though all are the standard near-linear implementations).

use crate::ids::{EdgeId, NodeId};
use crate::{Graph, WeightedGraph};
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Hop distance used throughout: `None` means unreachable.
pub type HopDist = Option<u32>;
/// Weighted distance: `None` means unreachable.
pub type WDist = Option<u64>;

/// Breadth-first search from `src`: returns hop distances to every node.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<HopDist> {
    bfs_limited(g, src, u32::MAX)
}

/// BFS truncated at depth `limit`: nodes farther than `limit` hops report `None`.
pub fn bfs_limited(g: &Graph, src: NodeId, limit: u32) -> Vec<HopDist> {
    let mut dist: Vec<HopDist> = vec![None; g.n()];
    let mut q = VecDeque::new();
    dist[src.index()] = Some(0);
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        if d >= limit {
            continue;
        }
        for &u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                q.push_back(u);
            }
        }
    }
    dist
}

/// BFS returning parents (`parent[src] = None`; unreached nodes also `None`).
/// Parent choice is the smallest-ID neighbor at the previous level, making the tree
/// deterministic.
pub fn bfs_tree(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let dist = bfs_distances(g, src);
    let mut parent = vec![None; g.n()];
    for v in g.nodes() {
        if v == src {
            continue;
        }
        if let Some(d) = dist[v.index()] {
            parent[v.index()] = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|u| dist[u.index()] == Some(d - 1));
        }
    }
    parent
}

/// All-pairs hop distances by running BFS from every node. `O(nm)`.
pub fn all_pairs_bfs(g: &Graph) -> Vec<Vec<HopDist>> {
    g.nodes().map(|s| bfs_distances(g, s)).collect()
}

/// Dijkstra from `src` on non-negative weights.
pub fn dijkstra(wg: &WeightedGraph, src: NodeId) -> Vec<WDist> {
    let n = wg.n();
    let mut dist: Vec<WDist> = vec![None; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[src.index()] = Some(0);
    heap.push(std::cmp::Reverse((0, src.raw())));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        let v = NodeId::from(v);
        if dist[v.index()] != Some(d) {
            continue;
        }
        for (_, u, w) in wg.incident(v) {
            let nd = d + w;
            if dist[u.index()].is_none_or(|old| nd < old) {
                dist[u.index()] = Some(nd);
                heap.push(std::cmp::Reverse((nd, u.raw())));
            }
        }
    }
    dist
}

/// All-pairs weighted distances by running Dijkstra from every node.
pub fn all_pairs_dijkstra(wg: &WeightedGraph) -> Vec<Vec<WDist>> {
    wg.graph().nodes().map(|s| dijkstra(wg, s)).collect()
}

/// Connected components: returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.n()];
    let mut count = 0;
    for s in g.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let mut q = VecDeque::new();
        comp[s.index()] = count;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = count;
                    q.push_back(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Eccentricity of `src` (max hop distance to a reachable node); `None` if some node is
/// unreachable.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut max = 0;
    for d in dist {
        max = max.max(d?);
    }
    Some(max)
}

/// Exact hop diameter (`None` if disconnected). `O(nm)`.
pub fn diameter(g: &Graph) -> Option<u32> {
    let mut max = 0;
    for v in g.nodes() {
        max = max.max(eccentricity(g, v)?);
    }
    Some(max)
}

/// A proper 2-coloring of a bipartite graph: `sides[v] ∈ {0, 1}`, or `None` if the graph
/// contains an odd cycle. Isolated nodes get side 0.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut side = vec![u8::MAX; g.n()];
    for s in g.nodes() {
        if side[s.index()] != u8::MAX {
            continue;
        }
        side[s.index()] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if side[u.index()] == u8::MAX {
                    side[u.index()] = 1 - side[v.index()];
                    q.push_back(u);
                } else if side[u.index()] == side[v.index()] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Maximum matching size in a bipartite graph via Hopcroft–Karp. `O(m √n)`.
///
/// Returns `None` if the graph is not bipartite.
pub fn hopcroft_karp(g: &Graph) -> Option<usize> {
    let side = bipartition(g)?;
    let left: Vec<NodeId> = g.nodes().filter(|v| side[v.index()] == 0).collect();
    let mut match_of: Vec<Option<NodeId>> = vec![None; g.n()];
    let mut total = 0;

    loop {
        // BFS layering from free left vertices.
        let mut layer: Vec<Option<u32>> = vec![None; g.n()];
        let mut q = VecDeque::new();
        for &v in &left {
            if match_of[v.index()].is_none() {
                layer[v.index()] = Some(0);
                q.push_back(v);
            }
        }
        let mut found_free_right = false;
        while let Some(v) = q.pop_front() {
            let d = layer[v.index()].expect("queued nodes are layered");
            for &u in g.neighbors(v) {
                // v is on the left; u on the right. Advance along non-matching edge to u,
                // then along u's matching edge back to the left.
                if layer[u.index()].is_some() {
                    continue;
                }
                layer[u.index()] = Some(d + 1);
                match match_of[u.index()] {
                    None => found_free_right = true,
                    Some(w) => {
                        if layer[w.index()].is_none() {
                            layer[w.index()] = Some(d + 2);
                            q.push_back(w);
                        }
                    }
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS phase: vertex-disjoint augmenting paths along the layering.
        fn try_augment(
            g: &Graph,
            v: NodeId,
            layer: &mut [Option<u32>],
            match_of: &mut [Option<NodeId>],
        ) -> bool {
            let d = match layer[v.index()] {
                Some(d) => d,
                None => return false,
            };
            layer[v.index()] = None; // visit once per phase
            for &u in g.neighbors(v) {
                if layer[u.index()] != Some(d + 1) {
                    continue;
                }
                layer[u.index()] = None;
                let extend = match match_of[u.index()] {
                    None => true,
                    Some(w) => try_augment(g, w, layer, match_of),
                };
                if extend {
                    match_of[u.index()] = Some(v);
                    match_of[v.index()] = Some(u);
                    return true;
                }
            }
            false
        }
        for &v in &left {
            if match_of[v.index()].is_none() && try_augment(g, v, &mut layer, &mut match_of) {
                total += 1;
            }
        }
    }
    Some(total)
}

/// A minimum spanning forest computed by a sequential oracle.
///
/// Edge weights need not be distinct: ties are broken by [`EdgeId`], i.e. all MSF
/// algorithms in this workspace minimize under the **total order `(weight, EdgeId)`**,
/// which makes the minimum spanning forest *unique* — [`mst_kruskal`], [`mst_prim`]
/// and the distributed GHS implementation all return the same edge set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstOracle {
    /// The forest's edges, sorted ascending by [`EdgeId`].
    pub edges: Vec<EdgeId>,
    /// Sum of the edge weights.
    pub total_weight: u64,
}

/// A tiny union-find (path halving + union by representative minimum), shared by the
/// MSF oracles and the trade-off's central finisher. Keeping the minimum index as the
/// representative makes component labels deterministic — load-bearing for the
/// `(weight, EdgeId)` tie-break contract.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton classes `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    /// The representative (minimum member) of `x`'s class.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the two classes; returns `false` if they were already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
        true
    }
}

/// Kruskal's minimum spanning forest under the `(weight, EdgeId)` total order.
pub fn mst_kruskal(wg: &WeightedGraph) -> MstOracle {
    let g = wg.graph();
    let mut order: Vec<EdgeId> = (0..g.m()).map(EdgeId::new).collect();
    order.sort_unstable_by_key(|&e| (wg.weight(e), e.index()));
    let mut uf = UnionFind::new(g.n());
    let mut edges = Vec::new();
    let mut total_weight = 0u64;
    for e in order {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index()) {
            edges.push(e);
            total_weight += wg.weight(e);
        }
    }
    edges.sort_unstable();
    MstOracle {
        edges,
        total_weight,
    }
}

/// Prim's minimum spanning forest under the `(weight, EdgeId)` total order — one run
/// per connected component, started at each component's minimum-ID node.
///
/// An independent implementation of the same object as [`mst_kruskal`]; the
/// differential tests assert both agree edge-for-edge.
pub fn mst_prim(wg: &WeightedGraph) -> MstOracle {
    let g = wg.graph();
    let mut in_tree = vec![false; g.n()];
    let mut edges = Vec::new();
    let mut total_weight = 0u64;
    for s in g.nodes() {
        if in_tree[s.index()] {
            continue;
        }
        in_tree[s.index()] = true;
        // Lazy-deletion heap keyed by the tie-breaking total order.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        for (e, _, w) in wg.incident(s) {
            heap.push(std::cmp::Reverse((w, e.index())));
        }
        while let Some(std::cmp::Reverse((w, ei))) = heap.pop() {
            let e = EdgeId::new(ei);
            let (u, v) = g.endpoints(e);
            let grown = match (in_tree[u.index()], in_tree[v.index()]) {
                (true, false) => v,
                (false, true) => u,
                _ => continue, // stale entry: both endpoints already in the tree
            };
            in_tree[grown.index()] = true;
            edges.push(e);
            total_weight += w;
            for (ne, nb, nw) in wg.incident(grown) {
                if !in_tree[nb.index()] {
                    heap.push(std::cmp::Reverse((nw, ne.index())));
                }
            }
        }
    }
    edges.sort_unstable();
    MstOracle {
        edges,
        total_weight,
    }
}

/// Whether `edges` is a spanning forest of `g`: acyclic, and connecting exactly the
/// connected components of `g` (i.e. a spanning tree per component).
pub fn is_spanning_forest(g: &Graph, edges: &[EdgeId]) -> bool {
    let mut uf = UnionFind::new(g.n());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        if !uf.union(u.index(), v.index()) {
            return false; // cycle
        }
    }
    // Acyclic with `n - components(g)` edges ⇔ spanning forest.
    g.n().saturating_sub(connected_components(g).1) == edges.len()
}

/// Validates that `pairs` is a matching of `g` (edges exist, endpoints distinct across pairs).
pub fn is_matching(g: &Graph, pairs: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; g.n()];
    for &(u, v) in pairs {
        if !g.has_edge(u, v) || used[u.index()] || used[v.index()] {
            return false;
        }
        used[u.index()] = true;
        used[v.index()] = true;
    }
    true
}

/// Validates maximality: no edge has both endpoints unmatched.
pub fn is_maximal_matching(g: &Graph, pairs: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(g, pairs) {
        return false;
    }
    let mut used = vec![false; g.n()];
    for &(u, v) in pairs {
        used[u.index()] = true;
        used[v.index()] = true;
    }
    g.edges()
        .all(|(_, u, v)| used[u.index()] || used[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let d2 = bfs_limited(&g, NodeId::new(0), 2);
        assert_eq!(d2, vec![Some(0), Some(1), Some(2), None, None]);
    }

    #[test]
    fn bfs_tree_parents_valid() {
        let g = generators::grid(3, 3);
        let parent = bfs_tree(&g, NodeId::new(0));
        let dist = bfs_distances(&g, NodeId::new(0));
        assert!(parent[0].is_none());
        for v in g.nodes().skip(1) {
            let p = parent[v.index()].unwrap();
            assert!(g.has_edge(v, p));
            assert_eq!(dist[p.index()].unwrap() + 1, dist[v.index()].unwrap());
        }
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = generators::gnp_connected(30, 0.15, 11);
        let wg = WeightedGraph::unit(&g);
        for s in g.nodes() {
            let wd = dijkstra(&wg, s);
            let hd = bfs_distances(&g, s);
            for v in g.nodes() {
                assert_eq!(wd[v.index()], hd[v.index()].map(|d| d as u64));
            }
        }
    }

    #[test]
    fn dijkstra_weighted_path() {
        let g = generators::path(4);
        let wg = WeightedGraph::from_weights(g, vec![2, 3, 10]).unwrap();
        let d = dijkstra(&wg, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(2), Some(5), Some(15)]);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
        assert_eq!(diameter(&generators::path(6)), Some(5));
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert!(!is_connected(&g));
        assert_eq!(connected_components(&g).1, 3);
    }

    #[test]
    fn bipartition_detects_odd_cycle() {
        assert!(bipartition(&generators::cycle(5)).is_none());
        assert!(bipartition(&generators::cycle(6)).is_some());
    }

    #[test]
    fn hopcroft_karp_perfect_on_even_cycle() {
        assert_eq!(hopcroft_karp(&generators::cycle(8)), Some(4));
    }

    #[test]
    fn hopcroft_karp_star() {
        // A star is bipartite; max matching is one edge.
        assert_eq!(hopcroft_karp(&generators::star(6)), Some(1));
    }

    #[test]
    fn hopcroft_karp_random_bipartite_vs_greedy_bound() {
        let g = generators::random_bipartite(12, 12, 0.3, 5);
        let hk = hopcroft_karp(&g).unwrap();
        // Any maximal matching is at least half the maximum.
        assert!(hk <= 12);
        assert!(hk >= 1);
    }

    #[test]
    fn kruskal_and_prim_agree_with_unique_weights() {
        for seed in 0..5u64 {
            let g = generators::gnp_connected(24, 0.2, seed);
            let wg = WeightedGraph::random_unique_weights(&g, seed);
            let k = mst_kruskal(&wg);
            let p = mst_prim(&wg);
            assert_eq!(k, p, "seed {seed}");
            assert_eq!(k.edges.len(), g.n() - 1);
            assert!(is_spanning_forest(&g, &k.edges));
        }
    }

    #[test]
    fn kruskal_and_prim_agree_under_heavy_ties() {
        // All-equal weights: the (weight, EdgeId) order must fully disambiguate.
        for g in [
            generators::gnp_connected(20, 0.3, 3),
            generators::grid(5, 4),
            generators::complete(8),
        ] {
            let wg = WeightedGraph::unit(&g);
            let k = mst_kruskal(&wg);
            assert_eq!(k, mst_prim(&wg));
            assert_eq!(k.total_weight, (g.n() - 1) as u64);
        }
    }

    #[test]
    fn mst_on_weighted_path_is_the_path() {
        let g = generators::path(4);
        let wg = WeightedGraph::from_weights(g.clone(), vec![5, 1, 9]).unwrap();
        let k = mst_kruskal(&wg);
        assert_eq!(k.edges.len(), 3);
        assert_eq!(k.total_weight, 15);
        assert!(is_spanning_forest(&g, &k.edges));
    }

    #[test]
    fn spanning_forest_of_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 2)]);
        let wg = WeightedGraph::from_weights(g.clone(), vec![2, 3, 1, 10]).unwrap();
        let k = mst_kruskal(&wg);
        // Components {0,1,2} and {3,4}: a spanning forest has 2 + 1 edges.
        assert_eq!(k.edges.len(), 3);
        assert_eq!(k, mst_prim(&wg));
        assert!(is_spanning_forest(&g, &k.edges));
        // Dropping an edge or adding a cycle both fail validation.
        assert!(!is_spanning_forest(&g, &k.edges[..2]));
        let all: Vec<EdgeId> = (0..g.m()).map(EdgeId::new).collect();
        assert!(!is_spanning_forest(&g, &all));
    }

    #[test]
    fn matching_validators() {
        let g = generators::cycle(6);
        let m = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(3), NodeId::new(4)),
        ];
        assert!(is_matching(&g, &m));
        assert!(!is_maximal_matching(&g, &m[..1]));
        let full = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
            (NodeId::new(4), NodeId::new(5)),
        ];
        assert!(is_maximal_matching(&g, &full));
    }
}
