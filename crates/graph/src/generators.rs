//! Seeded graph generators for every family used by the tests, examples and experiments.
//!
//! All generators are deterministic in their seed. Families were chosen to stress the
//! quantities the paper cares about: dense graphs (`m = Θ(n²)`, where message-optimality
//! matters most), high-diameter graphs (where round complexity matters), and mixtures
//! (`barbell`: two cliques joined by a long path — dense *and* high-diameter, the
//! worst case for "round-optimal but message-wasteful" baselines).

use crate::rng::{derive, seeded};
use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Path graph `P_n`: nodes `0..n` in a line.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(
        n,
        &(0..n.saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect::<Vec<_>>(),
    )
}

/// Cycle graph `C_n` (requires `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, &(1..n).map(|i| (0, i)).collect::<Vec<_>>())
}

/// `w × h` grid graph (4-neighborhood). Node `(x, y)` has index `y*w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                edges.push((i, i + 1));
            }
            if y + 1 < h {
                edges.push((i, i + w));
            }
        }
    }
    Graph::from_edges(w * h, &edges)
}

/// Complete balanced binary tree with `n` nodes (node `i`'s parent is `(i-1)/2`).
pub fn binary_tree(n: usize) -> Graph {
    Graph::from_edges(n, &(1..n).map(|i| (i, (i - 1) / 2)).collect::<Vec<_>>())
}

/// Uniform random labelled tree on `n` nodes (random Prüfer-like attachment: node `i`
/// attaches to a uniform node in `0..i`).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut r = seeded(derive(seed, 0x7265_6531));
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i, r.random_range(0..i))).collect();
    Graph::from_edges(n, &edges)
}

/// Sparse connected graph in `O(n + extra_edges)` time: a uniform random
/// recursive tree (expected depth `O(log n)`, so rounds stay low at any `n`)
/// plus `extra_edges` uniform random chords. Self-loop chords are skipped and
/// the builder dedups parallel edges, so `m` lands slightly below
/// `n - 1 + extra_edges`. This is the large-`n` generator behind the scale
/// bench — the `gnp*` family costs `Θ(n²)` to sample and is unusable past
/// ~10⁴ nodes.
pub fn sparse_connected(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut r = seeded(derive(seed, 0x7370_6172));
    let mut b = GraphBuilder::new(n);
    b.add_edges((1..n).map(|i| (i, r.random_range(0..i))));
    for _ in 0..extra_edges {
        let u = r.random_range(0..n);
        let v = r.random_range(0..n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` (possibly disconnected).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = seeded(derive(seed, 0x676e_7001));
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if r.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Connected Erdős–Rényi: `G(n, p)` unioned with a uniform random spanning tree, so the
/// result is always connected but keeps G(n,p)'s degree/edge statistics for `p ≫ 1/n`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let gp = gnp(n, p, seed);
    b.add_edges(gp.edges().map(|(_, u, v)| (u.index(), v.index())));
    let tree = random_tree(n, derive(seed, 0x676e_7002));
    b.add_edges(tree.edges().map(|(_, u, v)| (u.index(), v.index())));
    b.build()
}

/// Barbell: two cliques `K_k` joined by a path of `path_len` extra nodes.
///
/// Dense *and* high-diameter — the family where "round-optimal but `Θ(mn)`-message"
/// baselines waste the most messages. Total nodes: `2k + path_len`.
pub fn barbell(k: usize, path_len: usize) -> Graph {
    assert!(k >= 1, "cliques need at least one node");
    let n = 2 * k + path_len;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u, v));
        }
    }
    let right = k + path_len;
    for u in right..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    // Path from node k-1 through the middle nodes to node `right`.
    let mut prev = k - 1;
    for mid in k..right {
        edges.push((prev, mid));
        prev = mid;
    }
    edges.push((prev, right));
    Graph::from_edges(n, &edges)
}

/// Connected caveman graph: `cliques` cliques of `size` nodes each, arranged in a ring
/// with one edge between consecutive cliques. A natural "clustered" family for the
/// decomposition experiments.
pub fn caveman(cliques: usize, size: usize) -> Graph {
    assert!(cliques >= 1 && size >= 1);
    let n = cliques * size;
    let mut edges = Vec::new();
    for c in 0..cliques {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push((base + u, base + v));
            }
        }
        if cliques > 1 {
            let next = ((c + 1) % cliques) * size;
            edges.push((base, next));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Random bipartite graph: left nodes `0..nl`, right nodes `nl..nl+nr`, each cross pair is
/// an edge with probability `p`. Isolated nodes are possible (matching algorithms must
/// handle them).
pub fn random_bipartite(nl: usize, nr: usize, p: f64, seed: u64) -> Graph {
    let mut r = seeded(derive(seed, 0x6269_7001));
    let mut edges = Vec::new();
    for u in 0..nl {
        for v in 0..nr {
            if r.random::<f64>() < p {
                edges.push((u, nl + v));
            }
        }
    }
    Graph::from_edges(nl + nr, &edges)
}

/// Connected random bipartite graph: like [`random_bipartite`] but augmented with a
/// bipartiteness-preserving random spanning structure (left `i` — right `i mod nr`,
/// right `j` — left `j mod nl` chains) so it is connected.
pub fn random_bipartite_connected(nl: usize, nr: usize, p: f64, seed: u64) -> Graph {
    assert!(nl >= 1 && nr >= 1);
    let mut b = GraphBuilder::new(nl + nr);
    let g = random_bipartite(nl, nr, p, seed);
    b.add_edges(g.edges().map(|(_, u, v)| (u.index(), v.index())));
    // A bipartite double chain: L0-R0-L1-R1-… touches every node.
    let chain = nl.max(nr);
    for i in 0..chain {
        let l = i % nl;
        let rr = i % nr;
        b.add_edge(l, nl + rr);
        if i + 1 < chain {
            b.add_edge((i + 1) % nl, nl + rr);
        }
    }
    b.build()
}

/// Random `d`-regular-ish graph via the configuration model (simple-graph rejection of
/// self-loops/multi-edges, then connectivity patched with a path). Degrees are `≤ d` and
/// close to `d` for `n·d` even.
pub fn random_regularish(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be below n");
    let mut r = seeded(derive(seed, 0x7265_6702));
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(&mut r);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    // Patch connectivity with a path (adds ≤ n-1 edges; keeps max degree ≤ d+2).
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1);
    }
    b.build()
}

/// Preferential-attachment power-law graph (Barabási–Albert flavour): nodes
/// arrive one at a time and attach to `attach` distinct existing nodes chosen
/// proportionally to degree (sampled from the stub list, so early nodes become
/// hubs). Always connected; degree distribution is heavy-tailed — the skewed
/// family where per-node fan-out is maximally unbalanced across shards.
///
/// # Panics
///
/// Panics if `n < 2` or `attach == 0`.
pub fn power_law(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(n >= 2, "power_law needs at least 2 nodes");
    assert!(attach >= 1, "each arrival must attach somewhere");
    let mut r = seeded(derive(seed, 0x706f_7701));
    let mut b = GraphBuilder::new(n);
    // One entry per edge endpoint: sampling uniformly from `stubs` is sampling
    // nodes proportionally to their current degree.
    let mut stubs: Vec<usize> = vec![0, 1];
    b.add_edge(0, 1);
    for v in 2..n {
        let want = attach.min(v);
        let mut targets: Vec<usize> = Vec::with_capacity(want);
        while targets.len() < want {
            let t = stubs[r.random_range(0..stubs.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            stubs.push(v);
            stubs.push(t);
        }
    }
    b.build()
}

/// Hub-and-spoke topology: `hubs` hub nodes forming a clique, each carrying
/// `spokes_per_hub` degree-1 leaves (leaf `j` hangs off hub `j % hubs`).
/// Total nodes: `hubs * (1 + spokes_per_hub)`; hubs are nodes `0..hubs`.
/// Deterministic by construction (no randomness). The extreme skew case:
/// almost all traffic funnels through the hub clique.
///
/// # Panics
///
/// Panics if `hubs == 0`.
pub fn hub_and_spoke(hubs: usize, spokes_per_hub: usize) -> Graph {
    assert!(hubs >= 1, "need at least one hub");
    let n = hubs * (1 + spokes_per_hub);
    let mut edges = Vec::new();
    for h in 0..hubs {
        for h2 in (h + 1)..hubs {
            edges.push((h, h2));
        }
    }
    for s in 0..hubs * spokes_per_hub {
        edges.push((s % hubs, hubs + s));
    }
    Graph::from_edges(n, &edges)
}

/// The lower-bound-flavoured family from Abboud–Censor-Hillel–Khoury \[1\]-style
/// constructions: a sparse core of two node sets with a perfect matching "bit gadget"
/// bridged by a path. Used here simply as a sparse, high-diameter stress instance.
pub fn sparse_bridge(k: usize, bridge_len: usize) -> Graph {
    // Left column 0..k, right column k..2k, matched pairwise through a shared path.
    let n = 2 * k + bridge_len;
    let mut edges = Vec::new();
    for i in 0..k.saturating_sub(1) {
        edges.push((i, i + 1));
        edges.push((k + i, k + i + 1));
    }
    let start = 2 * k;
    if bridge_len > 0 {
        edges.push((k - 1, start));
        for i in 0..bridge_len - 1 {
            edges.push((start + i, start + i + 1));
        }
        edges.push((start + bridge_len - 1, 2 * k - 1));
    } else {
        edges.push((k - 1, 2 * k - 1));
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn sparse_connected_is_connected_sparse_and_shallow() {
        let g = sparse_connected(5000, 2500, 3);
        assert!(reference::is_connected(&g));
        assert!(g.m() >= 4999, "tree backbone survives dedup");
        assert!(g.m() <= 4999 + 2500);
        // The recursive-tree backbone keeps the graph low-diameter: BFS from
        // node 0 must reach everything within O(log n) ≪ n hops.
        let dist = reference::bfs_distances(&g, crate::NodeId::new(0));
        let ecc = dist.iter().map(|d| d.expect("connected")).max().unwrap();
        assert!(ecc <= 64, "eccentricity {ecc} is not logarithmic");
        // Determinism: same parameters, same graph.
        assert_eq!(g, sparse_connected(5000, 2500, 3));
    }

    #[test]
    fn path_and_cycle_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(reference::diameter(&path(5)), Some(4));
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(7);
        assert_eq!(g.m(), 21);
        assert_eq!(reference::diameter(&g), Some(1));
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(crate::NodeId::new(0)), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // vertical 3*3, horizontal 2*4
        assert_eq!(reference::diameter(&g), Some(2 + 3));
    }

    #[test]
    fn trees_are_trees() {
        for seed in 0..5 {
            let t = random_tree(20, seed);
            assert_eq!(t.m(), 19);
            assert!(reference::is_connected(&t));
        }
        let b = binary_tree(15);
        assert_eq!(b.m(), 14);
        assert!(reference::is_connected(&b));
    }

    #[test]
    fn gnp_connected_is_connected() {
        for seed in 0..5 {
            let g = gnp_connected(40, 0.05, seed);
            assert!(reference::is_connected(&g));
        }
    }

    #[test]
    fn gnp_deterministic() {
        let a = gnp(30, 0.2, 9);
        let b = gnp(30, 0.2, 9);
        assert_eq!(a.m(), b.m());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 3);
        assert_eq!(g.n(), 13);
        assert!(reference::is_connected(&g));
        // Diameter is path through the bridge: 1 + (3+1) + 1 = 6? ends of cliques:
        // clique-node -> k-1 (1 hop) -> 3 mid nodes + 1 -> right edge -> clique node.
        assert_eq!(reference::diameter(&g), Some(6));
    }

    #[test]
    fn caveman_connected() {
        let g = caveman(4, 5);
        assert_eq!(g.n(), 20);
        assert!(reference::is_connected(&g));
    }

    #[test]
    fn bipartite_families_are_bipartite() {
        let g = random_bipartite(8, 6, 0.4, 3);
        assert!(reference::bipartition(&g).is_some());
        let gc = random_bipartite_connected(8, 6, 0.4, 3);
        assert!(reference::bipartition(&gc).is_some());
        assert!(reference::is_connected(&gc));
    }

    #[test]
    fn regularish_degrees_bounded() {
        let g = random_regularish(30, 4, 1);
        assert!(reference::is_connected(&g));
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn power_law_is_connected_skewed_and_deterministic() {
        for &(n, attach) in &[(56usize, 2usize), (256, 3)] {
            let g = power_law(n, attach, 21);
            assert_eq!(g.n(), n);
            assert!(reference::is_connected(&g));
            // Heavy tail: the hubbiest node dominates the attachment floor.
            assert!(g.max_degree() >= 3 * attach);
            assert_eq!(g, power_law(n, attach, 21), "seeded determinism");
        }
        assert_ne!(power_law(56, 2, 21), power_law(56, 2, 22));
    }

    #[test]
    fn hub_and_spoke_shape() {
        let g = hub_and_spoke(4, 6);
        assert_eq!(g.n(), 4 * 7);
        // Clique edges + one edge per leaf.
        assert_eq!(g.m(), 4 * 3 / 2 + 4 * 6);
        assert!(reference::is_connected(&g));
        // Every hub carries its clique links plus its share of leaves.
        for h in 0..4 {
            assert_eq!(g.degree(crate::NodeId::new(h)), 3 + 6);
        }
        assert_eq!(g, hub_and_spoke(4, 6), "structural determinism");
    }

    #[test]
    fn sparse_bridge_connected() {
        let g = sparse_bridge(6, 4);
        assert!(reference::is_connected(&g));
        assert_eq!(g.n(), 16);
    }
}
