//! Deterministic, seedable randomness helpers.
//!
//! Every randomized component in this workspace takes an explicit `u64` seed and derives
//! sub-seeds with [`fn@derive`], so whole distributed executions are reproducible — which is
//! what lets the test suite assert that a *simulated* run of an algorithm (Theorems 2.1,
//! 3.9, 3.10) produces output identical to a *direct* run with the same seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from `(seed, salt)` using the SplitMix64 finalizer.
///
/// Distinct salts give (for all practical purposes) independent streams, so components can
/// share one master seed without correlating their random choices.
pub fn derive(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a per-node seed: used to give each node of a distributed algorithm its own
/// private random stream from one master seed.
pub fn node_seed(seed: u64, node_index: usize) -> u64 {
    derive(derive(seed, 0x6e6f_6465), node_index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = (0..8)
            .map({
                let mut r = seeded(1);
                move |_| r.random()
            })
            .collect();
        let b: Vec<u32> = (0..8)
            .map({
                let mut r = seeded(1);
                move |_| r.random()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn derive_separates_salts() {
        assert_ne!(derive(7, 1), derive(7, 2));
        assert_ne!(derive(7, 1), derive(8, 1));
        assert_eq!(derive(7, 1), derive(7, 1));
    }

    #[test]
    fn node_seeds_distinct() {
        let s: Vec<u64> = (0..100).map(|i| node_seed(3, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
    }
}
