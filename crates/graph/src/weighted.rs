//! Weighted graphs: a [`Graph`] plus non-negative integer edge weights.
//!
//! The paper's Theorem 1.1 allows polynomially-bounded weights; we use `u64` weights
//! (`0..=W` with `W = poly(n)`). See DESIGN.md §2 for why weights are restricted to
//! non-negative values on undirected graphs.

use crate::ids::{EdgeId, NodeId};
use crate::rng;
use crate::Graph;
use rand::Rng;
use std::fmt;
use std::ops::RangeInclusive;

/// A weighted undirected graph: topology plus one `u64` weight per edge.
///
/// # Examples
///
/// ```
/// use congest_graph::{Graph, WeightedGraph, NodeId};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let wg = WeightedGraph::from_weights(g, vec![5, 7]).unwrap();
/// let e = wg.graph().edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
/// assert_eq!(wg.weight(e), 5);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u64>,
}

/// Error returned when the weight vector does not match the edge count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightCountError {
    /// Number of edges in the graph.
    pub edges: usize,
    /// Number of weights supplied.
    pub weights: usize,
}

impl fmt::Display for WeightCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weight count {} does not match edge count {}",
            self.weights, self.edges
        )
    }
}

impl std::error::Error for WeightCountError {}

impl WeightedGraph {
    /// Wraps a graph with an explicit weight per edge (indexed by [`EdgeId`]).
    ///
    /// # Errors
    ///
    /// Returns [`WeightCountError`] if `weights.len() != graph.m()`.
    pub fn from_weights(graph: Graph, weights: Vec<u64>) -> Result<Self, WeightCountError> {
        if weights.len() != graph.m() {
            return Err(WeightCountError {
                edges: graph.m(),
                weights: weights.len(),
            });
        }
        Ok(Self { graph, weights })
    }

    /// All edges get weight 1 (so weighted distances equal hop distances).
    pub fn unit(graph: &Graph) -> Self {
        Self {
            weights: vec![1; graph.m()],
            graph: graph.clone(),
        }
    }

    /// Independent uniform random weights from `range`, seeded.
    ///
    /// Duplicate weights are possible (and common for narrow ranges), so quantities
    /// like "the minimum spanning tree" are only well-defined for consumers that break
    /// ties — everything in this workspace minimizes under the total order
    /// `(weight, EdgeId)` (see [`crate::reference::MstOracle`]). For instances where
    /// distinctness itself is wanted, use [`WeightedGraph::random_unique_weights`].
    pub fn random_weights(graph: &Graph, range: RangeInclusive<u64>, seed: u64) -> Self {
        let mut r = rng::seeded(rng::derive(seed, 0x5eed_0e19));
        let weights = (0..graph.m())
            .map(|_| r.random_range(range.clone()))
            .collect();
        Self {
            graph: graph.clone(),
            weights,
        }
    }

    /// Pairwise-distinct random weights: a seeded uniform permutation of `1..=m`
    /// assigned across the edges.
    ///
    /// With all weights distinct the minimum spanning tree is unique outright — no
    /// tie-breaking needed — which makes these instances the cleanest differential
    /// oracle inputs. The weights are exactly the set `{1, …, m}` (weight sums are
    /// predictable), shuffled deterministically in the seed.
    pub fn random_unique_weights(graph: &Graph, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        let mut r = rng::seeded(rng::derive(seed, 0x5eed_0e20));
        let mut weights: Vec<u64> = (1..=graph.m() as u64).collect();
        weights.shuffle(&mut r);
        Self {
            graph: graph.clone(),
            weights,
        }
    }

    /// The underlying topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// All weights, indexed by [`EdgeId`].
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Number of nodes (delegates to the topology).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of edges (delegates to the topology).
    #[inline]
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// The maximum edge weight (0 for edgeless graphs).
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Iterates over `(edge, neighbor, weight)` triples incident to `v`.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId, u64)> + '_ {
        self.graph
            .incident(v)
            .map(move |(e, u)| (e, u, self.weight(e)))
    }
}

impl fmt::Debug for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedGraph(n={}, m={}, max_w={})",
            self.n(),
            self.m(),
            self.max_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weights() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::unit(&g);
        assert!(wg.weights().iter().all(|&w| w == 1));
        assert_eq!(wg.max_weight(), 1);
    }

    #[test]
    fn mismatched_weights_error() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let err = WeightedGraph::from_weights(g, vec![1]).unwrap_err();
        assert_eq!(err.edges, 2);
        assert_eq!(err.weights, 1);
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let g = Graph::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let a = WeightedGraph::random_weights(&g, 3..=9, 42);
        let b = WeightedGraph::random_weights(&g, 3..=9, 42);
        assert_eq!(a.weights(), b.weights());
        assert!(a.weights().iter().all(|&w| (3..=9).contains(&w)));
        let c = WeightedGraph::random_weights(&g, 3..=9, 43);
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn unique_weights_are_a_permutation_and_deterministic() {
        let g = crate::generators::gnp_connected(20, 0.2, 4);
        let a = WeightedGraph::random_unique_weights(&g, 9);
        let b = WeightedGraph::random_unique_weights(&g, 9);
        assert_eq!(a.weights(), b.weights());
        let mut sorted = a.weights().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=g.m() as u64).collect::<Vec<_>>());
        let c = WeightedGraph::random_unique_weights(&g, 10);
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn incident_reports_weights() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let wg = WeightedGraph::from_weights(g, vec![4, 9]).unwrap();
        let mut seen: Vec<(usize, u64)> = wg
            .incident(NodeId::new(0))
            .map(|(_, u, w)| (u.index(), w))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 4), (2, 9)]);
    }
}
