//! Incremental construction of [`Graph`] values.

use crate::{Graph, NodeId};

/// Incremental builder for [`Graph`].
///
/// Collects edges (duplicates and self-loops are silently dropped at
/// [`build`](GraphBuilder::build) time) and produces a CSR [`Graph`].
///
/// # Examples
///
/// ```
/// use congest_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, it: I) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of nodes the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the (deduplicated) edge set already contains `{u, v}`.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges
            .iter()
            .any(|&(a, b)| (if a < b { (a, b) } else { (b, a) }) == key)
    }

    /// Finalizes the builder into a [`Graph`].
    pub fn build(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }

    /// Builds and asserts the result is connected; useful in tests and generators.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not connected.
    pub fn build_connected(&self) -> Graph {
        let g = self.build();
        assert!(
            crate::reference::is_connected(&g),
            "generated graph is not connected (n={}, m={})",
            g.n(),
            g.m()
        );
        g
    }
}

impl Extend<(usize, usize)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (usize, usize)>>(&mut self, iter: T) {
        self.add_edges(iter);
    }
}

/// Convenience: builds the subgraph of `g` induced by keeping only edges in `keep`.
///
/// Nodes are preserved (same IDs); edges not selected are dropped.
pub fn edge_subgraph(g: &Graph, keep: impl Fn(crate::EdgeId) -> bool) -> Graph {
    let edges: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(e, _, _)| keep(e))
        .map(|(_, u, v)| (u.index(), v.index()))
        .collect();
    Graph::from_edges(g.n(), &edges)
}

/// Convenience: builds the subgraph induced by a vertex set, *keeping original node IDs*
/// (nodes outside the set become isolated). This is what "strong diameter of a cluster"
/// computations need.
pub fn induced_subgraph_same_ids(g: &Graph, in_set: &[bool]) -> Graph {
    let edges: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(_, u, v)| in_set[u.index()] && in_set[v.index()])
        .map(|(_, u, v)| (u.index(), v.index()))
        .collect();
    Graph::from_edges(g.n(), &edges)
}

/// Returns the nodes of `g` for which `in_set` is true, as `NodeId`s.
pub fn nodes_in_set(in_set: &[bool]) -> Vec<NodeId> {
    in_set
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| NodeId::new(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.pending_edges(), 3);
        assert!(b.contains_edge(1, 0));
        assert!(!b.contains_edge(0, 3));
        let g = b.build_connected();
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn extend_works() {
        let mut b = GraphBuilder::new(3);
        b.extend(vec![(0, 1), (1, 2)]);
        assert_eq!(b.build().m(), 2);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn build_connected_panics_on_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let _ = b.build_connected();
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sub = induced_subgraph_same_ids(&g, &[true, true, false, true]);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 1); // only (0,1) survives
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let sub = edge_subgraph(&g, |e| e.index() != 0);
        assert_eq!(sub.m(), 2);
    }
}
