//! # congest-serve
//!
//! The **distance-oracle serving layer**: the production shape of the paper's
//! outputs. The Theorem 1.1/1.2 APSP matrices, the §3.3 landmark sketches and
//! the Lemma 3.22/3.23 BFS forests are built once under CONGEST message
//! budgets — and then their entire point is to be *queried*. This crate turns
//! any [`DistanceSource`] into a [`DistanceOracle`] with three query paths —
//! point lookup, batched lookup, and k-nearest-by-distance — behind an
//! LRU-style query cache with exact, deterministic hit/miss counters
//! ([`ServeMetrics`], the same accounting idiom as the engine's `Metrics`).
//!
//! The [`loadgen`] module drives an oracle with a **deterministic closed-loop
//! load generator** that sweeps request rate Internet-Computer-scalability
//! style (`initial_rps` → `target_rps` ramp) over scenario mixes (uniform,
//! hot-key skew, k-NN, batches; cold vs warmed cache), reporting p50/p95/p99
//! latency and achieved rps — `congest_bench::serve_bench` wraps it into the
//! committed `BENCH_serve.json`.
//!
//! Correctness is differential all the way down: every answer an oracle
//! serves is the source's answer (the cache can only change wall-clock and
//! counters, never bytes), and the load generator checks **every sampled
//! answer** against a sequential reference ([`loadgen::ExactReference`]) as
//! it runs. The root `tests/serve_conformance.rs` suite pins cached ≡
//! uncached and determinism across the executor matrix.
//!
//! ## Example
//!
//! ```
//! use apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
//! use congest_graph::{generators, NodeId, WeightedGraph};
//! use congest_serve::{Distance, DistanceOracle};
//!
//! let g = generators::gnp_connected(16, 0.25, 3);
//! let wg = WeightedGraph::random_weights(&g, 1..=6, 3);
//! let apsp = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
//!
//! let mut oracle = DistanceOracle::builder(apsp).cache_capacity(128).build();
//! let d = oracle.lookup(NodeId::new(0), NodeId::new(5));
//! assert!(matches!(d, Distance::Exact(_)));
//! let near = oracle.k_nearest(NodeId::new(0), 3);
//! assert_eq!(near.len(), 3);
//! assert_eq!(oracle.metrics().misses, 1); // the point lookup; k-NN scans the source
//! ```

pub mod loadgen;
mod oracle;

pub use apsp_core::distance::{Distance, DistanceSource};
pub use oracle::{DistanceOracle, DistanceOracleBuilder, ServeMetrics};
