//! The [`DistanceOracle`]: any [`DistanceSource`] behind an LRU query cache
//! with exact hit/miss/eviction counters.
//!
//! The cache is a **transparency layer**: answers are byte-identical with the
//! cache on, off, warm or cold (the root `tests/serve_conformance.rs` suite
//! pins cached ≡ uncached differentially) — only [`ServeMetrics`] and
//! wall-clock change. Eviction is exact LRU, implemented with a lazy
//! recency queue: every touch pushes a `(key, stamp)` entry, and eviction
//! pops stale entries until it finds the key whose stamp is current — O(1)
//! amortized, no linked lists, fully deterministic.

use apsp_core::distance::{Distance, DistanceSource};
use congest_graph::NodeId;
use std::collections::{HashMap, VecDeque};

/// Exact serving-side counters, in the same spirit as the engine's
/// `Metrics`: every field is deterministic for a given oracle + query
/// sequence (latency lives in the load generator's reports, not here, so
/// these counters participate in conformance equality).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Point lookups served (including each element of a batched lookup).
    pub lookups: u64,
    /// Batched-lookup calls served.
    pub batches: u64,
    /// k-nearest queries served.
    pub knn_queries: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to consult the source.
    pub misses: u64,
    /// Cache entries evicted to make room.
    pub evictions: u64,
}

impl ServeMetrics {
    /// Cache hit rate over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// One cached answer plus the recency stamp of its latest touch.
struct CacheSlot {
    answer: Distance,
    stamp: u64,
}

/// Exact-LRU cache over `(s, t)` query keys (lazy recency queue; see module
/// docs). Capacity 0 disables caching entirely.
struct LruCache {
    capacity: usize,
    map: HashMap<(usize, usize), CacheSlot>,
    recency: VecDeque<((usize, usize), u64)>,
    tick: u64,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            recency: VecDeque::new(),
            tick: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    fn get(&mut self, key: (usize, usize)) -> Option<Distance> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(&key)?;
        slot.stamp = tick;
        let answer = slot.answer;
        self.recency.push_back((key, tick));
        Some(answer)
    }

    /// Inserts `key`, evicting the least-recently-used entry if full.
    /// Returns whether an eviction happened.
    fn insert(&mut self, key: (usize, usize), answer: Distance) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        self.map.insert(
            key,
            CacheSlot {
                answer,
                stamp: self.tick,
            },
        );
        self.recency.push_back((key, self.tick));
        if self.map.len() <= self.capacity {
            return false;
        }
        // Pop recency entries until one is current — that key is the LRU.
        while let Some((old_key, stamp)) = self.recency.pop_front() {
            if self.map.get(&old_key).is_some_and(|s| s.stamp == stamp) {
                self.map.remove(&old_key);
                return true;
            }
        }
        unreachable!("a full cache always holds a current recency entry");
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.tick = 0;
    }
}

/// A queryable distance oracle: a [`DistanceSource`] behind an LRU query
/// cache, with [`ServeMetrics`] counters. Built with
/// [`DistanceOracle::builder`].
///
/// All three query paths return exactly what the source would return — the
/// cache never changes an answer, only whether the source is consulted.
pub struct DistanceOracle<S: DistanceSource> {
    source: S,
    cache: LruCache,
    metrics: ServeMetrics,
}

/// Typed fluent builder for [`DistanceOracle`] —
/// `DistanceOracle::builder(source).cache_capacity(c).build()`.
#[derive(Debug)]
pub struct DistanceOracleBuilder<S: DistanceSource> {
    source: S,
    cache_capacity: usize,
}

impl<S: DistanceSource> DistanceOracleBuilder<S> {
    /// Sets the query-cache capacity in entries (`0` disables the cache;
    /// the default is 1024).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builds the oracle.
    #[must_use]
    pub fn build(self) -> DistanceOracle<S> {
        DistanceOracle {
            source: self.source,
            cache: LruCache::new(self.cache_capacity),
            metrics: ServeMetrics::default(),
        }
    }
}

impl<S: DistanceSource> DistanceOracle<S> {
    /// Starts a typed builder over `source` (default: 1024 cache entries).
    pub fn builder(source: S) -> DistanceOracleBuilder<S> {
        DistanceOracleBuilder {
            source,
            cache_capacity: 1024,
        }
    }

    /// The underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Number of nodes served.
    pub fn n(&self) -> usize {
        self.source.n()
    }

    /// Whether every answer carries the exact-distance guarantee.
    pub fn is_exact(&self) -> bool {
        self.source.is_exact()
    }

    /// The exact serving counters so far.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Drops every cached entry (cold-start scenarios). Counters are kept —
    /// they are cumulative, like engine metrics.
    pub fn reset_cache(&mut self) {
        self.cache.clear();
    }

    /// The source's answer for `(s, t)` **bypassing** cache and counters —
    /// the uncached reference the conformance suite compares the served
    /// paths against.
    pub fn peek(&self, s: NodeId, t: NodeId) -> Distance {
        self.source.distance(s, t)
    }

    /// Serves one lookup through the cache, counting hit/miss/eviction.
    fn serve(&mut self, s: NodeId, t: NodeId) -> Distance {
        self.metrics.lookups += 1;
        let key = (s.index(), t.index());
        if let Some(answer) = self.cache.get(key) {
            self.metrics.hits += 1;
            return answer;
        }
        self.metrics.misses += 1;
        let answer = self.source.distance(s, t);
        if self.cache.insert(key, answer) {
            self.metrics.evictions += 1;
        }
        answer
    }

    /// Point lookup: the distance from `s` to `t`.
    pub fn lookup(&mut self, s: NodeId, t: NodeId) -> Distance {
        self.serve(s, t)
    }

    /// Batched lookup: answers in query order (each element served through
    /// the cache like a point lookup).
    pub fn lookup_batch(&mut self, queries: &[(NodeId, NodeId)]) -> Vec<Distance> {
        self.metrics.batches += 1;
        queries.iter().map(|&(s, t)| self.serve(s, t)).collect()
    }

    /// The `k` nodes nearest to `s` by served distance, ascending, ties
    /// broken by node id (so the ordering is total and deterministic).
    /// Excludes `s` itself and pairs the source does not cover; returns
    /// fewer than `k` entries only when fewer covered nodes exist.
    ///
    /// Scans the source directly — a full-row scan through the point cache
    /// would evict the working set a point-lookup mix built up, so the k-NN
    /// path deliberately bypasses it.
    pub fn k_nearest(&mut self, s: NodeId, k: usize) -> Vec<(NodeId, Distance)> {
        self.metrics.knn_queries += 1;
        let mut reached: Vec<(u64, usize, Distance)> = (0..self.source.n())
            .filter(|&t| t != s.index())
            .filter_map(|t| {
                let d = self.source.distance(s, NodeId::new(t));
                d.value().map(|v| (v, t, d))
            })
            .collect();
        reached.sort_unstable_by_key(|&(v, t, _)| (v, t));
        reached
            .into_iter()
            .take(k)
            .map(|(_, t, d)| (NodeId::new(t), d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_core::distance::MatrixSource;

    /// dist[t][s] for a 4-node path 0–1–2–3 with unit weights.
    fn path4() -> Vec<Vec<Option<u64>>> {
        (0..4usize)
            .map(|t| (0..4usize).map(|s| Some(s.abs_diff(t) as u64)).collect())
            .collect()
    }

    #[test]
    fn lookup_paths_agree_with_source() {
        let dist = path4();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&dist))
            .cache_capacity(2)
            .build();
        assert_eq!(
            oracle.lookup(NodeId::new(0), NodeId::new(3)),
            Distance::Exact(3)
        );
        let batch = oracle.lookup_batch(&[
            (NodeId::new(0), NodeId::new(3)),
            (NodeId::new(2), NodeId::new(1)),
        ]);
        assert_eq!(batch, vec![Distance::Exact(3), Distance::Exact(1)]);
        assert_eq!(oracle.metrics().lookups, 3);
        assert_eq!(oracle.metrics().batches, 1);
        assert_eq!(oracle.metrics().hits, 1); // the repeated (0,3)
        assert_eq!(oracle.metrics().misses, 2);
    }

    #[test]
    fn knn_orders_by_distance_then_node_id() {
        let dist = path4();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&dist)).build();
        let near = oracle.k_nearest(NodeId::new(1), 3);
        // d(1,0) = d(1,2) = 1 — the tie breaks toward the smaller node id.
        assert_eq!(
            near,
            vec![
                (NodeId::new(0), Distance::Exact(1)),
                (NodeId::new(2), Distance::Exact(1)),
                (NodeId::new(3), Distance::Exact(2)),
            ]
        );
        assert_eq!(oracle.metrics().knn_queries, 1);
        assert_eq!(oracle.metrics().lookups, 0); // bypasses the point paths
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let dist = path4();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&dist))
            .cache_capacity(2)
            .build();
        let (a, b, c) = (
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(0), NodeId::new(2)),
            (NodeId::new(0), NodeId::new(3)),
        );
        oracle.lookup(a.0, a.1); // miss, cache {a}
        oracle.lookup(b.0, b.1); // miss, cache {a, b}
        oracle.lookup(a.0, a.1); // hit — a becomes most recent
        oracle.lookup(c.0, c.1); // miss — evicts b (LRU), cache {a, c}
        assert_eq!(oracle.metrics().evictions, 1);
        oracle.lookup(a.0, a.1); // hit
        oracle.lookup(b.0, b.1); // miss — b was evicted
        assert_eq!(oracle.metrics().hits, 2);
        assert_eq!(oracle.metrics().misses, 4);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let dist = path4();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&dist))
            .cache_capacity(0)
            .build();
        for _ in 0..3 {
            oracle.lookup(NodeId::new(0), NodeId::new(3));
        }
        assert_eq!(oracle.metrics().hits, 0);
        assert_eq!(oracle.metrics().misses, 3);
        assert_eq!(oracle.metrics().evictions, 0);
    }

    #[test]
    fn reset_cache_forces_misses_but_keeps_counters() {
        let dist = path4();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&dist)).build();
        oracle.lookup(NodeId::new(0), NodeId::new(1));
        oracle.lookup(NodeId::new(0), NodeId::new(1));
        assert_eq!(oracle.metrics().hits, 1);
        oracle.reset_cache();
        oracle.lookup(NodeId::new(0), NodeId::new(1));
        assert_eq!(oracle.metrics().hits, 1);
        assert_eq!(oracle.metrics().misses, 2);
        assert_eq!(oracle.metrics().hit_rate(), 1.0 / 3.0);
    }
}
