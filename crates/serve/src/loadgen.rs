//! The deterministic closed-loop load generator: rps-ramp sweeps over
//! scenario mixes, with every sampled answer differential-checked as it is
//! served.
//!
//! The shape follows the Internet-Computer scalability harness (SNIPPETS.md
//! §2): a request-rate **ramp** from `initial_rps` up to `target_rps` in
//! `increment_rps` steps, each step issuing a paced request stream for a
//! fixed duration and reporting p50/p95/p99 service latency, the **achieved**
//! rps (which falls below the target once the oracle saturates), and cache
//! hit rates. The query *streams* are pure functions of the seed — reruns
//! issue byte-identical requests in byte-identical order — while latencies
//! are machine-dependent wall-clock, exactly like every other bench in the
//! workspace.
//!
//! Every answer is checked against an [`AnswerCheck`] (the sequential
//! reference) **outside** the per-request latency window, so a divergence
//! fails the run without skewing the percentiles.

use crate::oracle::DistanceOracle;
use apsp_core::distance::{Distance, DistanceSource};
use congest_graph::{reference, rng, Graph, NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::{Duration, Instant};

/// The request-rate ramp: `initial_rps`, then `+ increment_rps` per step,
/// capped at (and always including) `target_rps`.
#[derive(Clone, Debug)]
pub struct RampConfig {
    /// First step's request rate (requests per second).
    pub initial_rps: u64,
    /// Rate increase per step.
    pub increment_rps: u64,
    /// Final step's request rate.
    pub target_rps: u64,
    /// Wall-clock duration of each step, milliseconds (the step's request
    /// count is `rate × duration`, so higher-rate steps issue more work).
    pub step_duration_ms: u64,
}

impl RampConfig {
    /// The step rates of this ramp, ascending, `target_rps` always last.
    ///
    /// Degenerate configurations are clamped rather than rejected: a
    /// `target_rps` of 0 serves as 1 (a zero-rate step could never pace), and
    /// an `initial_rps` above `target_rps` is clamped **down** to the target —
    /// the ramp is defined as ascending, so an inverted pair means "just run
    /// the target step", not "silently drop the configured initial rate"
    /// (which is what the pre-clamp code did: the while loop never ran and
    /// `initial_rps` vanished from the sweep without a trace).
    pub fn steps(&self) -> Vec<u64> {
        let target = self.target_rps.max(1);
        let mut rates = Vec::new();
        let mut r = self.initial_rps.clamp(1, target);
        while r < target {
            rates.push(r);
            r = r.saturating_add(self.increment_rps.max(1));
        }
        rates.push(target);
        rates
    }
}

/// What one scenario's request stream looks like.
#[derive(Clone, Debug)]
pub enum QueryMix {
    /// Every request is a point lookup over uniformly random `(s, t)` pairs.
    Uniform,
    /// Point lookups with hot-key skew: with probability `hot_permille`/1000
    /// the pair is drawn from the first `hot_nodes` node ids only.
    HotKey {
        /// Size of the hot key set.
        hot_nodes: usize,
        /// Probability (in permille) that a request hits the hot set.
        hot_permille: u32,
    },
    /// Every request is a `k`-nearest query from a uniformly random source.
    Knn {
        /// Neighbours per query.
        k: usize,
    },
    /// Every request is a batched lookup of `size` uniformly random pairs.
    Batch {
        /// Pairs per batch.
        size: usize,
    },
}

/// One scenario: a named query mix plus its cache posture.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable report key, e.g. `"uniform-cold"`.
    pub name: String,
    /// The request stream's shape.
    pub mix: QueryMix,
    /// `true` replays the first step's stream once, untimed, before the ramp
    /// (warmed cache); `false` starts from an empty cache (cold start).
    pub warm_cache: bool,
}

/// Differential checker the load generator calls on **every** answer.
pub trait AnswerCheck {
    /// Validates one point/batched answer.
    ///
    /// # Errors
    ///
    /// Describes the divergence.
    fn check_point(&self, s: NodeId, t: NodeId, got: Distance) -> Result<(), String>;

    /// Validates one k-nearest answer.
    ///
    /// # Errors
    ///
    /// Describes the divergence.
    fn check_knn(&self, s: NodeId, k: usize, got: &[(NodeId, Distance)]) -> Result<(), String>;
}

/// The sequential reference for **exact** sources: a `want[s][t]` distance
/// matrix (all-pairs Dijkstra/BFS). Point answers must be byte-equal;
/// k-nearest answers must equal the reference ordering under the
/// `(distance, node id)` total order.
#[derive(Clone, Debug)]
pub struct ExactReference {
    want: Vec<Vec<Option<u64>>>,
}

impl ExactReference {
    /// Wraps a precomputed `want[s][t]` matrix.
    pub fn new(want: Vec<Vec<Option<u64>>>) -> Self {
        Self { want }
    }

    /// The sequential all-pairs Dijkstra reference for `wg`.
    pub fn dijkstra(wg: &WeightedGraph) -> Self {
        Self::new(reference::all_pairs_dijkstra(wg))
    }

    /// The sequential all-pairs BFS reference for `g`.
    pub fn bfs(g: &Graph) -> Self {
        Self::new(
            reference::all_pairs_bfs(g)
                .into_iter()
                .map(|row| row.into_iter().map(|d| d.map(u64::from)).collect())
                .collect(),
        )
    }

    /// The reference's own k-nearest answer from `s`.
    pub fn k_nearest(&self, s: NodeId, k: usize) -> Vec<(NodeId, u64)> {
        let mut reached: Vec<(u64, usize)> = self.want[s.index()]
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != s.index())
            .filter_map(|(t, &d)| d.map(|v| (v, t)))
            .collect();
        reached.sort_unstable();
        reached
            .into_iter()
            .take(k)
            .map(|(v, t)| (NodeId::new(t), v))
            .collect()
    }
}

impl AnswerCheck for ExactReference {
    fn check_point(&self, s: NodeId, t: NodeId, got: Distance) -> Result<(), String> {
        let want = match self.want[s.index()][t.index()] {
            Some(d) => Distance::Exact(d),
            None => Distance::Unknown,
        };
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "lookup({s:?},{t:?}) served {got:?}, reference {want:?}"
            ))
        }
    }

    fn check_knn(&self, s: NodeId, k: usize, got: &[(NodeId, Distance)]) -> Result<(), String> {
        let want = self.k_nearest(s, k);
        let got_flat: Vec<(NodeId, u64)> = got
            .iter()
            .map(|&(t, d)| {
                d.value()
                    .map(|v| (t, v))
                    .ok_or_else(|| format!("k_nearest({s:?},{k}) served uncovered node {t:?}"))
            })
            .collect::<Result<_, _>>()?;
        if got_flat == want {
            Ok(())
        } else {
            Err(format!(
                "k_nearest({s:?},{k}) served {got_flat:?}, reference {want:?}"
            ))
        }
    }
}

/// One ramp step's measurements.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The rate this step paced toward.
    pub target_rps: u64,
    /// Requests issued (a batch or k-NN query counts as one request).
    pub requests: u64,
    /// Point answers served (batch elements count individually; k-NN counts
    /// one per query).
    pub lookups: u64,
    /// Requests completed per second of step wall-clock.
    pub achieved_rps: f64,
    /// Median service latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile service latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_us: f64,
    /// Cache hits during this step.
    pub hits: u64,
    /// Cache misses during this step.
    pub misses: u64,
    /// Answers differential-checked during this step (every one).
    pub checked: u64,
}

impl StepReport {
    /// Cache hit rate of this step (0 when the step served no cached path).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// One scenario's full ramp.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario's report key.
    pub scenario: String,
    /// Whether the cache was warmed before the ramp.
    pub warmed: bool,
    /// One report per ramp step, ascending rate.
    pub steps: Vec<StepReport>,
}

/// One request of a scenario stream.
enum Request {
    Point(NodeId, NodeId),
    Knn(NodeId, usize),
    Batch(Vec<(NodeId, NodeId)>),
}

/// Draws the `i`-independent next request of `mix` from `r`.
fn draw(mix: &QueryMix, n: usize, r: &mut StdRng) -> Request {
    let pair = |r: &mut StdRng| {
        (
            NodeId::new(r.random_range(0..n)),
            NodeId::new(r.random_range(0..n)),
        )
    };
    match *mix {
        QueryMix::Uniform => {
            let (s, t) = pair(r);
            Request::Point(s, t)
        }
        QueryMix::HotKey {
            hot_nodes,
            hot_permille,
        } => {
            let hot = hot_nodes.clamp(1, n);
            if r.random_range(0u32..1000) < hot_permille {
                Request::Point(
                    NodeId::new(r.random_range(0..hot)),
                    NodeId::new(r.random_range(0..hot)),
                )
            } else {
                let (s, t) = pair(r);
                Request::Point(s, t)
            }
        }
        QueryMix::Knn { k } => Request::Knn(NodeId::new(r.random_range(0..n)), k),
        QueryMix::Batch { size } => Request::Batch((0..size).map(|_| pair(r)).collect()),
    }
}

/// Issues one request against the oracle, differential-checking every answer
/// it produced. Returns how many point answers were served.
///
/// # Panics
///
/// Panics on any divergence from the checker — a wrong served byte is a bug,
/// not a data point.
fn issue<S: DistanceSource>(
    oracle: &mut DistanceOracle<S>,
    req: &Request,
    check: &dyn AnswerCheck,
) -> u64 {
    match req {
        Request::Point(s, t) => {
            let got = oracle.lookup(*s, *t);
            check
                .check_point(*s, *t, got)
                .unwrap_or_else(|e| panic!("serve divergence: {e}"));
            1
        }
        Request::Knn(s, k) => {
            let got = oracle.k_nearest(*s, *k);
            check
                .check_knn(*s, *k, &got)
                .unwrap_or_else(|e| panic!("serve divergence: {e}"));
            1
        }
        Request::Batch(queries) => {
            let got = oracle.lookup_batch(queries);
            for (&(s, t), &d) in queries.iter().zip(&got) {
                check
                    .check_point(s, t, d)
                    .unwrap_or_else(|e| panic!("serve divergence: {e}"));
            }
            queries.len() as u64
        }
    }
}

/// The `p`-th percentile (0–100) of `sorted` latencies, in microseconds.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
}

/// Runs one scenario's full ramp against `oracle`: resets the cache, warms it
/// if the scenario asks, then paces each step's deterministic request stream
/// at its target rate, measuring per-request service latency (the pacing wait
/// is excluded) and differential-checking **every** answer.
///
/// # Panics
///
/// Panics if any served answer diverges from `check` — that is the point.
pub fn run_scenario<S: DistanceSource>(
    oracle: &mut DistanceOracle<S>,
    scenario: &Scenario,
    ramp: &RampConfig,
    seed: u64,
    check: &dyn AnswerCheck,
) -> ScenarioReport {
    let n = oracle.n();
    assert!(n > 0, "cannot serve an empty graph");
    let scenario_salt = scenario
        .name
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    oracle.reset_cache();

    if scenario.warm_cache {
        // Replay the first step's exact stream once, untimed: the ramp then
        // starts against a warmed cache instead of a cold one.
        let rates = ramp.steps();
        let first = rates[0];
        let count = step_requests(first, ramp.step_duration_ms);
        let mut r = rng::seeded(rng::derive(seed, scenario_salt ^ first));
        for _ in 0..count {
            let req = draw(&scenario.mix, n, &mut r);
            issue(oracle, &req, check);
        }
    }

    let mut steps = Vec::new();
    for rate in ramp.steps() {
        let count = step_requests(rate, ramp.step_duration_ms);
        let mut r = rng::seeded(rng::derive(seed, scenario_salt ^ rate));
        // Pre-draw the stream so request generation stays out of the loop.
        let stream: Vec<Request> = (0..count).map(|_| draw(&scenario.mix, n, &mut r)).collect();

        let before = oracle.metrics().clone();
        let mut latencies: Vec<u64> = Vec::with_capacity(stream.len());
        let mut lookups = 0u64;
        let interval = Duration::from_nanos(1_000_000_000 / rate.max(1));
        let start = Instant::now();
        for (i, req) in stream.iter().enumerate() {
            // Closed-loop pacing: spin until this request's scheduled slot;
            // once the oracle falls behind the schedule, requests fire
            // back-to-back and achieved rps drops below the target.
            let sched = start + interval * (i as u32);
            while Instant::now() < sched {
                std::hint::spin_loop();
            }
            let t0 = Instant::now();
            let served = issue(oracle, req, check);
            latencies.push(t0.elapsed().as_nanos() as u64);
            lookups += served;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let after = oracle.metrics().clone();

        latencies.sort_unstable();
        steps.push(StepReport {
            target_rps: rate,
            requests: stream.len() as u64,
            lookups,
            achieved_rps: stream.len() as f64 / elapsed.max(1e-9),
            p50_us: percentile_us(&latencies, 50.0),
            p95_us: percentile_us(&latencies, 95.0),
            p99_us: percentile_us(&latencies, 99.0),
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            checked: lookups,
        });
    }

    ScenarioReport {
        scenario: scenario.name.clone(),
        warmed: scenario.warm_cache,
        steps,
    }
}

/// Requests one ramp step issues: `rate × duration` rounded half-up, at
/// least 1. Truncating here biased achieved-rps low on short steps (3 rps ×
/// 1500 ms issued 4 requests for a 4.5-request budget); rounding keeps the
/// issued count within half a request of the schedule.
fn step_requests(rate: u64, step_duration_ms: u64) -> u64 {
    (rate.saturating_mul(step_duration_ms).saturating_add(500) / 1000).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceOracle;
    use apsp_core::distance::MatrixSource;
    use congest_graph::generators;

    #[test]
    fn ramp_steps_cover_initial_to_target() {
        let ramp = RampConfig {
            initial_rps: 100,
            increment_rps: 200,
            target_rps: 600,
            step_duration_ms: 10,
        };
        assert_eq!(ramp.steps(), vec![100, 300, 500, 600]);
        let degenerate = RampConfig {
            initial_rps: 50,
            increment_rps: 10,
            target_rps: 50,
            step_duration_ms: 10,
        };
        assert_eq!(degenerate.steps(), vec![50]);
    }

    #[test]
    fn inverted_ramp_clamps_initial_to_target() {
        // initial > target: the ascending ramp collapses to the target step
        // by the documented clamp — not by silently skipping the loop.
        let inverted = RampConfig {
            initial_rps: 500,
            increment_rps: 100,
            target_rps: 200,
            step_duration_ms: 10,
        };
        assert_eq!(inverted.steps(), vec![200]);
    }

    #[test]
    fn equal_initial_and_target_is_one_step() {
        let flat = RampConfig {
            initial_rps: 300,
            increment_rps: 1,
            target_rps: 300,
            step_duration_ms: 10,
        };
        assert_eq!(flat.steps(), vec![300]);
    }

    #[test]
    fn zero_target_serves_at_one_rps() {
        let zero = RampConfig {
            initial_rps: 0,
            increment_rps: 0,
            target_rps: 0,
            step_duration_ms: 10,
        };
        assert_eq!(zero.steps(), vec![1]);
        // A nonzero initial above the zero target clamps down too.
        let zero_target = RampConfig {
            initial_rps: 7,
            increment_rps: 3,
            target_rps: 0,
            step_duration_ms: 10,
        };
        assert_eq!(zero_target.steps(), vec![1]);
    }

    #[test]
    fn step_requests_round_half_up() {
        // 3 rps × 1500 ms = 4.5 requests → 5, not the truncated 4.
        assert_eq!(step_requests(3, 1500), 5);
        // Exact products stay exact; below-half fractions round down.
        assert_eq!(step_requests(100, 20), 2);
        assert_eq!(step_requests(3, 1100), 3); // 3.3 → 3
        assert_eq!(step_requests(1, 1500), 2); // 1.5 → 2 (half-up)
                                               // Tiny steps still issue at least one request.
        assert_eq!(step_requests(1, 1), 1);
        assert_eq!(step_requests(0, 1000), 1);
    }

    #[test]
    fn percentiles_of_known_data() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((percentile_us(&sorted, 50.0) - 51.0).abs() < 2.0);
        assert!((percentile_us(&sorted, 99.0) - 99.0).abs() < 2.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
    }

    #[test]
    fn scenario_run_checks_every_answer_and_reports_steps() {
        let g = generators::gnp_connected(20, 0.25, 5);
        let check = ExactReference::bfs(&g);
        let want = check.want.clone();
        let mut oracle = DistanceOracle::builder(MatrixSource::new(&want))
            .cache_capacity(64)
            .build();
        // Transpose: MatrixSource takes dist[t][s]; BFS reference is want[s][t]
        // — symmetric on undirected graphs, so the matrix serves either way.
        let ramp = RampConfig {
            initial_rps: 2000,
            increment_rps: 2000,
            target_rps: 6000,
            step_duration_ms: 20,
        };
        for scenario in [
            Scenario {
                name: "uniform-cold".into(),
                mix: QueryMix::Uniform,
                warm_cache: false,
            },
            Scenario {
                name: "hot-warm".into(),
                mix: QueryMix::HotKey {
                    hot_nodes: 4,
                    hot_permille: 900,
                },
                warm_cache: true,
            },
            Scenario {
                name: "knn".into(),
                mix: QueryMix::Knn { k: 3 },
                warm_cache: false,
            },
            Scenario {
                name: "batch".into(),
                mix: QueryMix::Batch { size: 8 },
                warm_cache: false,
            },
        ] {
            let report = run_scenario(&mut oracle, &scenario, &ramp, 9, &check);
            assert_eq!(report.steps.len(), 3);
            for step in &report.steps {
                assert!(step.requests >= 1);
                assert!(step.achieved_rps > 0.0);
                assert_eq!(step.checked, step.lookups);
                assert!(step.p50_us <= step.p95_us && step.p95_us <= step.p99_us);
            }
        }
    }

    #[test]
    fn warmed_hot_key_scenario_hits_more_than_cold() {
        let g = generators::gnp_connected(24, 0.2, 7);
        let check = ExactReference::bfs(&g);
        let want = check.want.clone();
        let mix = QueryMix::HotKey {
            hot_nodes: 3,
            hot_permille: 1000,
        };
        let ramp = RampConfig {
            initial_rps: 3000,
            increment_rps: 1000,
            target_rps: 3000,
            step_duration_ms: 20,
        };
        let run = |warm: bool| {
            let mut oracle = DistanceOracle::builder(MatrixSource::new(&want))
                .cache_capacity(256)
                .build();
            let scenario = Scenario {
                name: "hot".into(),
                mix: mix.clone(),
                warm_cache: warm,
            };
            run_scenario(&mut oracle, &scenario, &ramp, 3, &check)
        };
        let cold = run(false);
        let warm = run(true);
        // Same stream, same answers — only hit/miss accounting may differ.
        assert!(warm.steps[0].hits >= cold.steps[0].hits);
        assert!(warm.steps[0].misses <= cold.steps[0].misses);
    }
}
