//! Criterion benches — one group per paper claim (same functions as the
//! `experiments` harness, at fixed small sizes so criterion's repetitions stay
//! affordable). The quantity of interest in this repo is message/round *counts*
//! (exact, deterministic); wall-clock here tracks simulator cost, which is useful
//! for catching algorithmic regressions in the simulators themselves.

use congest_bench::experiments as ex;
use criterion::{criterion_group, criterion_main, Criterion};

const SEED: u64 = 20250608;

fn bench_e_t1_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_t1_1_weighted_apsp");
    g.sample_size(10);
    g.bench_function("n16_24", |b| {
        b.iter(|| ex::e_t1_1(std::hint::black_box(&[16, 24]), SEED))
    });
    g.finish();
}

fn bench_e_t1_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_t1_2_tradeoff");
    g.sample_size(10);
    g.bench_function("n20_sweep", |b| {
        b.iter(|| ex::e_t1_2(20, std::hint::black_box(&[0.0, 0.5, 1.0]), SEED))
    });
    g.finish();
}

fn bench_e_t2_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_t2_1_simulation_overhead");
    g.sample_size(10);
    g.bench_function("n20", |b| {
        b.iter(|| ex::e_t2_1(std::hint::black_box(20), SEED))
    });
    g.finish();
}

fn bench_e_l2_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_l2_4_ldc");
    g.sample_size(20);
    g.bench_function("n48", |b| {
        b.iter(|| ex::e_l2_4(std::hint::black_box(48), SEED))
    });
    g.finish();
}

fn bench_e_t3_3(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_t3_3_hierarchy");
    g.sample_size(20);
    g.bench_function("n48", |b| {
        b.iter(|| ex::e_t3_3(std::hint::black_box(48), &[0.34, 0.5], SEED))
    });
    g.finish();
}

fn bench_e_l3_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_l3_7_cluster_edge_probability");
    g.sample_size(10);
    g.bench_function("n48_t5", |b| {
        b.iter(|| ex::e_l3_7(std::hint::black_box(48), 5, SEED))
    });
    g.finish();
}

fn bench_e_l3_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_l3_8_congestion_smoothing");
    g.sample_size(10);
    g.bench_function("n24", |b| {
        b.iter(|| ex::e_l3_8(std::hint::black_box(24), SEED))
    });
    g.finish();
}

fn bench_e_t1_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_t1_4_bfs_scheduling");
    g.sample_size(20);
    g.bench_function("n40", |b| {
        b.iter(|| ex::e_t1_4(std::hint::black_box(40), &[8, 16], SEED))
    });
    g.finish();
}

fn bench_e_c2_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_c2_8_matching");
    g.sample_size(10);
    g.bench_function("n12_20", |b| {
        b.iter(|| ex::e_c2_8(std::hint::black_box(&[6, 10]), SEED))
    });
    g.finish();
}

fn bench_e_c2_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("e_c2_9_cover");
    g.sample_size(10);
    g.bench_function("n20", |b| {
        b.iter(|| ex::e_c2_9(std::hint::black_box(20), SEED))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_e_t1_1,
    bench_e_t1_2,
    bench_e_t2_1,
    bench_e_l2_4,
    bench_e_t3_3,
    bench_e_l3_7,
    bench_e_l3_8,
    bench_e_t1_4,
    bench_e_c2_8,
    bench_e_c2_9,
);
criterion_main!(benches);
