//! Criterion bench for the parallel round executor: the same two workloads as
//! `--bench-engine` (an all-sources BFS collection under `run_bcongest` and a
//! per-neighbor exchange under `run_congest`), at the quick `BENCH_engine.json`
//! sizes, timed at 1/2/4/8 executor threads over one shared graph. Message and
//! round counts are identical across thread counts by the determinism
//! contract — the cross-check suite and the `--bench-engine` mode assert it —
//! so this bench only tracks wall-clock shape.

use congest_bench::engine_bench::{EngineBenchConfig, PreparedWorkloads};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SEED: u64 = 20250608;

fn bench_round_executor(c: &mut Criterion) {
    let cfg = EngineBenchConfig::quick(SEED);
    // Workloads and their graphs are built once; the timed body runs them only.
    let prepared = PreparedWorkloads::new(&cfg);
    let mut group = c.benchmark_group("engine_round_executor");
    group.sample_size(10);
    for threads in cfg.thread_counts.clone() {
        // Warm the pool so its thread-spawn cost stays out of the samples.
        prepared.run_once(threads);
        group.bench_function(format!("both_workloads_t{threads}"), |b| {
            b.iter(|| prepared.run_once(black_box(threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_executor);
criterion_main!(benches);
