//! Criterion bench for the MST workload family: the budgeted GHS run and the
//! trade-off endpoints at the quick `BENCH_mst.json` sizes. Counts are exact and
//! oracle-checked by the `--bench-mst` harness and the root test suites — this bench
//! only tracks the simulator's wall-clock shape.

use apsp_core::mst_tradeoff::mst_tradeoff;
use congest_algos::mst::{distributed_mst, message_bound, MstConfig};
use congest_graph::{generators, WeightedGraph};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SEED: u64 = 20250608;

fn bench_mst(c: &mut Criterion) {
    let g = generators::gnp_connected(48, 0.2, SEED);
    let wg = WeightedGraph::random_unique_weights(&g, SEED);
    let mut group = c.benchmark_group("mst_ghs");
    group.sample_size(20);
    group.bench_function("ghs_budgeted_n48", |b| {
        b.iter(|| {
            let cfg = MstConfig {
                message_budget: Some(message_bound(wg.n(), wg.m())),
                ..Default::default()
            };
            distributed_mst(black_box(&wg), &cfg).expect("mst").edges
        })
    });
    for k in [2usize, 7, 48] {
        group.bench_function(format!("tradeoff_n48_k{k}"), |b| {
            b.iter(|| {
                mst_tradeoff(black_box(&wg), k, SEED)
                    .expect("tradeoff")
                    .edges
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
