//! # congest-bench
//!
//! The experiment suite reproducing every quantitative claim of the paper (see
//! DESIGN.md §4 for the index): [`experiments`] holds one function per claim,
//! [`table`] the rendering/fitting helpers. The `experiments` binary prints the
//! tables recorded in EXPERIMENTS.md; the criterion benches reuse the same
//! functions at fixed sizes. [`engine_bench`] is the engine-scaling smoke
//! behind `BENCH_engine.json` (sequential vs parallel round execution), shared
//! by the binary's `--bench-engine` mode and the `engine` criterion bench.
//! [`mst_bench`] is the "Beyond APSP" counterpart behind `BENCH_mst.json`
//! (oracle-checked, budget-enforced MST + trade-off sweep), shared by `--bench-mst`
//! and the `mst` criterion bench. [`shard_bench`] is the delivery-backend
//! matrix behind `BENCH_shard.json` (sequential vs chunked vs sharded, exact
//! counts asserted equal), behind `--bench-shard`. [`suite_bench`] is the
//! registry bench behind `BENCH_suite.json`: every `congest_workloads` entry
//! × every backend, behind `--bench-suite`. [`scale_bench`] is the
//! message-plane scale bench behind `BENCH_scale.json`: BFS/gossip/MST at
//! 10⁵–10⁶ nodes, boxed vs flat plane, behind `--bench-scale` — workload
//! setup itself lives in `congest-workloads`, so these modules only own
//! sweeps and report schemas. [`serve_bench`] is the serving suite behind
//! `BENCH_serve.json`: a `congest_serve::DistanceOracle` under the
//! deterministic closed-loop rps-ramp load generator (every answer
//! differential-checked), behind `--bench-serve`. [`fault_bench`] is the fault
//! & scenario suite behind `BENCH_faults.json`: every `faulty-*`/`skewed-*`
//! registry scenario under the backend sweep plus the record/replay cost of
//! the trace layer, behind `--bench-faults`. [`auto_bench`] is the backend
//! auto-selection bench behind `BENCH_auto.json`: `DeliveryBackend::Auto` vs
//! every manual backend on the full registry plus the scale workloads, with
//! the per-round decision log asserted byte-identical across repeats and
//! thread counts, behind `--bench-auto`.

pub mod auto_bench;
pub mod engine_bench;
pub mod experiments;
pub mod fault_bench;
pub mod mst_bench;
pub mod scale_bench;
pub mod serve_bench;
pub mod shard_bench;
pub mod suite_bench;
pub mod table;
