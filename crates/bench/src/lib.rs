//! # congest-bench
//!
//! The experiment suite reproducing every quantitative claim of the paper (see
//! DESIGN.md §4 for the index): [`experiments`] holds one function per claim,
//! [`table`] the rendering/fitting helpers. The `experiments` binary prints the
//! tables recorded in EXPERIMENTS.md; the criterion benches reuse the same
//! functions at fixed sizes.

pub mod experiments;
pub mod table;
