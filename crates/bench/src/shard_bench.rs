//! The delivery-backend smoke bench behind `BENCH_shard.json`: sequential vs
//! chunked vs 2/4/8-shard wall-clock on APSP and MST workloads, with the
//! backend-conformance contract checked on every sample.
//!
//! The workloads are **registry constructors**
//! ([`congest_workloads::make`]) at bench-specific sizes — the graph/config
//! setup, the runner, and the oracle all live in `congest-workloads`; this
//! module only owns the size sweep and the report schema:
//!
//! * **weighted-apsp/gnp-n** — weighted APSP through the Theorem 2.1
//!   simulation: upcast/downcast transport plus the stepper's phases;
//! * **mst/gnp-n** — the GHS phase loop (announce → convergecast → merge) on a
//!   random graph: shallow fragment forests, announcement-dominated;
//! * **mst/path-n** — the same loop on a long path: fragment forests up to
//!   thousands of levels deep, where the sharded backend's level-bucketed
//!   convergecast/broadcast schedule (`O(n + depth)` per phase) replaces the
//!   sequential depth sort (`O(n log n)` per phase);
//! * **mst-tradeoff/gnp-n** — the `k = ⌈√n⌉` trade-off point: controlled
//!   merging plus the leader-collected central finish.
//!
//! Every sample's [`congest_workloads::RunOutcome`] must equal the sequential
//! baseline — the run **panics** otherwise, so a red perf-smoke CI job doubles
//! as a backend-conformance tripwire. Message/round counts are exact and
//! machine-independent; `wall_ms` is the minimum of [`ShardBenchConfig::reps`]
//! runs and is machine-dependent (`host_threads` is recorded: on a single-core
//! host the chunked/threaded samples measure dispatch overhead, while the
//! sharded samples still measure the backend's layout and schedule).

use crate::suite_bench::timed_sweep;
use congest_engine::ExecutorConfig;
use congest_workloads::{configs, make, Workload};

/// Sizes, shard counts, and repetitions for one [`run_shard_bench`] invocation.
#[derive(Clone, Debug)]
pub struct ShardBenchConfig {
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
    /// Nodes of the APSP workload graph.
    pub apsp_n: usize,
    /// Nodes of the G(n, p) MST workload graph.
    pub mst_n: usize,
    /// Nodes of the deep-path MST workload graph.
    pub path_n: usize,
    /// Nodes of the trade-off workload graph.
    pub tradeoff_n: usize,
    /// Shard counts to sample (the chunked/sequential configs are implicit).
    pub shard_counts: Vec<usize>,
    /// Timed repetitions per (workload, backend) cell; `wall_ms` records the
    /// minimum, damping scheduler noise.
    pub reps: usize,
}

impl ShardBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            apsp_n: 20,
            mst_n: 96,
            path_n: 1024,
            tradeoff_n: 64,
            shard_counts: vec![2, 4, 8],
            reps: 3,
        }
    }

    /// The full configuration used for committed `BENCH_shard.json` refreshes.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            apsp_n: 26,
            mst_n: 192,
            path_n: 4096,
            tradeoff_n: 128,
            shard_counts: vec![2, 4, 8],
            reps: 5,
        }
    }
}

/// One timed execution of one workload under one backend configuration.
#[derive(Clone, Debug)]
pub struct BackendSample {
    /// Stable backend label (`"sequential"`, `"chunked"`, `"sharded"`).
    pub backend: &'static str,
    /// Shard count (0 for non-sharded backends).
    pub shards: usize,
    /// Configured worker threads (`0` = hardware).
    pub threads: usize,
    /// Minimum wall-clock over the repetitions, milliseconds.
    pub wall_ms: f64,
}

/// All samples of one workload.
#[derive(Clone, Debug)]
pub struct ShardWorkloadReport {
    /// Registry key of the workload (stable key for trajectory tooling).
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Exact message count — asserted identical across all backends.
    pub messages: u64,
    /// Exact round count — asserted identical across all backends.
    pub rounds: u64,
    /// One sample per backend configuration, sequential first.
    pub samples: Vec<BackendSample>,
}

impl ShardWorkloadReport {
    /// Best sequential-vs-sharded wall-clock ratio over the sharded samples
    /// (> 1 means a sharded configuration beat the sequential backend).
    pub fn best_sharded_speedup(&self) -> f64 {
        let base = self.samples.first().map_or(0.0, |s| s.wall_ms);
        self.samples
            .iter()
            .filter(|s| s.backend == "sharded")
            .map(|s| base / s.wall_ms.max(1e-9))
            .fold(0.0, f64::max)
    }
}

/// The full delivery-backend bench outcome, serializable to `BENCH_shard.json`.
#[derive(Clone, Debug)]
pub struct ShardBenchReport {
    /// Seed the workloads ran with.
    pub seed: u64,
    /// Hardware threads of the measuring host (wall-clock context: with 1 the
    /// thread-fanning samples measure dispatch overhead, not speedup).
    pub host_threads: usize,
    /// Per-workload samples.
    pub workloads: Vec<ShardWorkloadReport>,
}

/// Times one registry workload under every backend of
/// [`configs::shard_bench_matrix`] through the shared [`timed_sweep`] core
/// (build once, assert [`RunOutcome`] equality against the sequential
/// baseline on every repetition), then reshapes the wall-clock vector into
/// this report's `(backend, shards, threads)` samples.
fn sweep(w: &dyn Workload, reps: usize, shard_counts: &[usize]) -> ShardWorkloadReport {
    let input = w.build();
    let triples = configs::shard_bench_matrix(shard_counts);
    let labelled: Vec<(String, ExecutorConfig)> = triples
        .iter()
        .map(|(backend, shards, cfg)| (format!("{backend}/{shards}"), cfg.clone()))
        .collect();
    let (base, wall) = timed_sweep(w, &input, &labelled, reps);
    let samples = triples
        .into_iter()
        .zip(wall)
        .map(|((backend, shards, cfg), wall_ms)| BackendSample {
            backend,
            shards,
            threads: cfg.threads,
            wall_ms,
        })
        .collect();
    ShardWorkloadReport {
        name: w.name(),
        n: input.graph.n(),
        m: input.graph.m(),
        messages: base.metrics.messages,
        rounds: base.metrics.rounds,
        samples,
    }
}

/// Runs the four workloads under every backend configuration.
///
/// # Panics
///
/// Panics if any sample's outcome differs from the sequential baseline — that
/// is the point.
pub fn run_shard_bench(cfg: &ShardBenchConfig) -> ShardBenchReport {
    let k = (cfg.tradeoff_n as f64).sqrt().ceil() as usize;
    let workloads: Vec<Box<dyn Workload>> = vec![
        make::weighted_apsp_gnp(cfg.apsp_n, 0.18, cfg.seed),
        make::mst_gnp(cfg.mst_n, 0.12, cfg.seed),
        make::mst_deep_path(cfg.path_n, cfg.seed),
        make::mst_tradeoff_gnp(cfg.tradeoff_n, 0.15, k, cfg.seed),
    ];
    ShardBenchReport {
        seed: cfg.seed,
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        workloads: workloads
            .iter()
            .map(|w| sweep(w.as_ref(), cfg.reps, &cfg.shard_counts))
            .collect(),
    }
}

impl ShardBenchReport {
    /// Serializes to the `BENCH_shard.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"delivery-backends\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"messages\": {},\n", w.messages));
            s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
            s.push_str("      \"counts_identical_across_backends\": true,\n");
            s.push_str(&format!(
                "      \"best_sharded_speedup\": {:.3},\n",
                w.best_sharded_speedup()
            ));
            s.push_str("      \"samples\": [\n");
            for (si, smp) in w.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"backend\": \"{}\", \"shards\": {}, \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
                    smp.backend,
                    smp.shards,
                    smp.threads,
                    smp.wall_ms,
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_conformant_and_serializes() {
        let cfg = ShardBenchConfig {
            seed: 7,
            apsp_n: 14,
            mst_n: 24,
            path_n: 64,
            tradeoff_n: 25,
            shard_counts: vec![2, 3],
            reps: 1,
        };
        // `run_shard_bench` asserts outcome equality internally.
        let report = run_shard_bench(&cfg);
        assert_eq!(report.workloads.len(), 4);
        for w in &report.workloads {
            // sequential + chunked + one sample per shard count.
            assert_eq!(w.samples.len(), 2 + 2);
            assert_eq!(w.samples[0].backend, "sequential");
            assert!(w.messages > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"delivery-backends\""));
        assert!(json.contains("mst/path-64"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
