//! The experiment suite: one function per paper claim (see DESIGN.md §4). Each
//! returns a [`Table`] for EXPERIMENTS.md; the criterion benches reuse the same
//! functions at fixed sizes.

use crate::table::{f2, fit_exponent, Table};
use apsp_core::simulate::{simulate_bcongest_via_ldc, LdcSimOptions};
use apsp_core::tradeoff::tradeoff_apsp;
use apsp_core::verify;
use apsp_core::weighted_apsp::{weighted_apsp, weighted_apsp_direct, WeightedApspConfig};
use congest_algos::bfs::Bfs;
use congest_algos::bfs_collection::BfsCollection;
use congest_algos::matching_bipartite::BipartiteMatching;
use congest_algos::mis::LubyMis;
use congest_decomp::cover::NeighborhoodCover;
use congest_decomp::ensemble::{cluster_edge_frequency, Ensemble};
use congest_decomp::ldc::build_ldc;
use congest_decomp::pruning::{max_proper_subtree, prune};
use congest_decomp::spanner::{measured_stretch, spanner_edges};
use congest_decomp::Hierarchy;
use congest_engine::{run_bcongest, run_bcongest_observed, RunOptions};
use congest_graph::{generators, NodeId, WeightedGraph};

fn ln(n: usize) -> f64 {
    (n.max(2) as f64).ln()
}

/// E-T1.1 — Theorem 1.1: weighted APSP message counts, simulated vs direct, with
/// fitted scaling exponents (expected ≈ 2 for the simulation, ≈ 3 for the direct
/// baseline on dense graphs).
pub fn e_t1_1(ns: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "E-T1.1 (Theorem 1.1): weighted APSP — Õ(n²) simulated messages vs Θ(mn) direct",
        &[
            "n",
            "m",
            "B_A",
            "msgs (sim)",
            "msgs (direct)",
            "direct/sim",
            "rounds (sim)",
            "rounds (direct)",
        ],
    );
    let mut xs = Vec::new();
    let mut sim_ms = Vec::new();
    let mut dir_ms = Vec::new();
    for &n in ns {
        let g = generators::gnp_connected(n, 0.5, seed + n as u64);
        let wg = WeightedGraph::random_weights(&g, 1..=8, seed + n as u64);
        let sim = weighted_apsp(
            &wg,
            &WeightedApspConfig {
                seed,
                ..Default::default()
            },
        )
        .expect("sim");
        let dir = weighted_apsp_direct(&wg, seed).expect("direct");
        assert_eq!(sim.distances, dir.distances, "exactness");
        xs.push(n as f64);
        sim_ms.push(sim.metrics.messages as f64);
        dir_ms.push(dir.metrics.messages as f64);
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            sim.simulated_broadcasts.to_string(),
            sim.metrics.messages.to_string(),
            dir.metrics.messages.to_string(),
            f2(dir.metrics.messages as f64 / sim.metrics.messages as f64),
            sim.metrics.rounds.to_string(),
            dir.metrics.rounds.to_string(),
        ]);
    }
    if xs.len() >= 2 {
        t.note(format!(
            "fitted message exponents: simulated ≈ n^{}, direct ≈ n^{} (paper: Õ(n²) vs Θ(mn)=Θ(n³) on dense graphs)",
            f2(fit_exponent(&xs, &sim_ms)),
            f2(fit_exponent(&xs, &dir_ms)),
        ));
    }
    t
}

/// E-T1.2 — Theorem 1.2: the ε sweep (rounds fall, messages rise) and the scaling
/// shape at the endpoints.
pub fn e_t1_2(n: usize, eps: &[f64], seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-T1.2 (Theorem 1.2): unweighted APSP trade-off, n = {n} — Õ(n^(2-ε)) rounds / Õ(n^(2+ε)) messages"),
        &["ε", "route", "rounds", "messages", "rounds·msgs"],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    for &e in eps {
        let res = tradeoff_apsp(&g, e, seed).expect("tradeoff");
        verify::check_unweighted_apsp(&g, &res.dist).expect("exactness");
        t.row(vec![
            f2(e),
            format!("{:?}", res.route),
            res.metrics.rounds.to_string(),
            res.metrics.messages.to_string(),
            (res.metrics.rounds as u128 * res.metrics.messages as u128).to_string(),
        ]);
    }
    t.note("every row is verified exact against sequential all-pairs BFS");
    t
}

/// E-T2.1 — Theorem 2.1: simulation overhead across payloads:
/// messages / (In + Out + B_A) should be polylog; rounds / (T_A·n) should be O(log).
pub fn e_t2_1(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-T2.1 (Theorem 2.1): simulation overhead per payload, n = {n}"),
        &[
            "payload",
            "B_A",
            "In+Out (words)",
            "msgs (sim)",
            "msgs/(In+Out+B)",
            "T_A",
            "rounds (sim)",
            "rounds/(T_A·n)",
        ],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    let opts = LdcSimOptions {
        seed,
        ..Default::default()
    };

    fn push<O: Clone + std::fmt::Debug>(
        t: &mut Table,
        n: usize,
        name: &str,
        sim: apsp_core::simulate::SimulationRun<O>,
    ) {
        let inout = (sim.input_words + sim.output_words) as f64;
        let denom = inout + sim.simulated_broadcasts as f64;
        let ta = sim.simulated_rounds.max(1) as f64;
        t.row(vec![
            name.into(),
            sim.simulated_broadcasts.to_string(),
            format!("{}", sim.input_words + sim.output_words),
            sim.metrics.messages.to_string(),
            f2(sim.metrics.messages as f64 / denom),
            sim.simulated_rounds.to_string(),
            sim.metrics.rounds.to_string(),
            f2(sim.metrics.rounds as f64 / (ta * n as f64)),
        ]);
    }

    push(
        &mut t,
        n,
        "bfs",
        simulate_bcongest_via_ldc(&Bfs::new(NodeId::new(0)), &g, None, &opts).expect("bfs"),
    );
    push(
        &mut t,
        n,
        "luby-mis",
        simulate_bcongest_via_ldc(&LubyMis, &g, None, &opts).expect("mis"),
    );
    push(
        &mut t,
        n,
        "bfs-collection (apsp)",
        simulate_bcongest_via_ldc(&BfsCollection::new(g.nodes().collect()), &g, None, &opts)
            .expect("coll"),
    );
    let gb = generators::random_bipartite_connected(n / 2, n / 2, 0.3, seed);
    push(
        &mut t,
        n,
        "ako-matching",
        simulate_bcongest_via_ldc(&BipartiteMatching, &gb, None, &opts).expect("ako"),
    );
    t.note("msgs/(In+Out+B) is the Theorem 2.1 polylog factor; rounds/(T_A·n) its round overhead");
    t
}

/// E-L2.4 — Lemma 2.4: LDC decomposition quality across graph families.
pub fn e_l2_4(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-L2.4 (Lemma 2.4): (O(log n), O(log n))-LDC decomposition, n ≈ {n}"),
        &[
            "family",
            "n",
            "m",
            "clusters",
            "strong radius",
            "radius/ln n",
            "max F-deg",
            "F-deg/ln n",
            "build msgs",
        ],
    );
    let families: Vec<(&str, congest_graph::Graph)> = vec![
        ("gnp", generators::gnp_connected(n, 0.2, seed)),
        ("grid", generators::grid(n / 8, 8)),
        ("dense", generators::gnp_connected(n, 0.7, seed)),
        ("caveman", generators::caveman(n / 8, 8)),
        ("path", generators::path(n)),
    ];
    for (name, g) in families {
        let ldc = build_ldc(&g, seed).expect("ldc");
        let r = ldc.strong_radius(&g);
        let d = ldc.max_f_degree();
        t.row(vec![
            name.into(),
            g.n().to_string(),
            g.m().to_string(),
            ldc.clustering.len().to_string(),
            r.to_string(),
            f2(r as f64 / ln(g.n())),
            d.to_string(),
            f2(d as f64 / ln(g.n())),
            ldc.metrics.messages.to_string(),
        ]);
    }
    t
}

/// E-T3.3 — Theorem 3.3 / Corollary 3.5: hierarchy structure, pruning, spanner.
pub fn e_t3_3(n: usize, eps: &[f64], seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-T3.3 (Thm 3.3 / Cor 3.5): Baswana–Sen hierarchies, n = {n}"),
        &[
            "ε",
            "κ",
            "max F-deg",
            "F-deg/n^ε",
            "max subtree (pruned)",
            "n^(1-ε) bound",
            "spanner edges",
            "n^(1+1/κ)",
            "stretch",
            "2κ-1",
        ],
    );
    let g = generators::gnp_connected(n, 0.4, seed);
    for &e in eps {
        let h = Hierarchy::build(&g, e, seed);
        congest_decomp::baswana_sen::validate_hierarchy(&g, &h).expect("Theorem 3.3");
        let p = prune(&g, &h);
        let kappa = h.kappa;
        let nf = n as f64;
        t.row(vec![
            f2(e),
            kappa.to_string(),
            h.max_f_degree().to_string(),
            f2(h.max_f_degree() as f64 / nf.powf(e)),
            max_proper_subtree(&g, &p).to_string(),
            f2(nf.powf(1.0 - e)),
            spanner_edges(&g, &h).len().to_string(),
            f2(nf.powf(1.0 + 1.0 / kappa as f64)),
            f2(measured_stretch(&g, &h, 8, seed)),
            (2 * kappa - 1).to_string(),
        ]);
    }
    t.note("property (a)-(c) validators pass for every row (validate_hierarchy)");
    t
}

/// E-L3.7 — Lemma 3.7: empirical cluster-edge probability vs the κ·n^{-ε} bound.
pub fn e_l3_7(n: usize, trials: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-L3.7 (Lemma 3.7): P[edge is a cluster edge], n = {n}, {trials} trials"),
        &[
            "ε",
            "κ",
            "avg frequency",
            "max frequency",
            "κ·n^(-ε) bound",
            "avg/bound",
        ],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    for &e in &[0.25f64, 0.34, 0.5] {
        let kappa = (1.0 / e).ceil();
        let (avg, max) = cluster_edge_frequency(&g, e, trials, seed);
        let bound = kappa * (n as f64).powf(-e);
        t.row(vec![
            f2(e),
            (kappa as usize).to_string(),
            format!("{avg:.4}"),
            format!("{max:.4}"),
            format!("{bound:.4}"),
            f2(avg / bound),
        ]);
    }
    t
}

/// E-L3.8 — Lemma 3.8: congestion smoothing with an ensemble of hierarchies.
pub fn e_l3_8(n: usize, seed: u64) -> Table {
    use apsp_core::simulate::{simulate_aggregation_general, AggSimOptions};
    let mut t = Table::new(
        format!(
            "E-L3.8 (Lemma 3.8): max cluster-edge congestion, 1 hierarchy vs ζ = ⌈n^ε⌉, n = {n}"
        ),
        &[
            "ε",
            "batches",
            "max cluster-edge congestion (single)",
            "(ensemble)",
            "smoothing factor",
        ],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    let eps = 0.5;
    let zeta = Ensemble::paper_zeta(n, eps);
    let ensemble = Ensemble::build(&g, eps, zeta, seed);
    let chunk = n.div_ceil(zeta);
    let sources: Vec<NodeId> = g.nodes().collect();

    let run_over = |pick: &dyn for<'a> Fn(&'a [Hierarchy], usize) -> &'a Hierarchy| {
        let mut total = congest_engine::Metrics::new(g.m());
        for (b, ch) in sources.chunks(chunk).enumerate() {
            let algo = BfsCollection::new(ch.to_vec())
                .with_depth_limit(6)
                .with_random_delays(seed + b as u64);
            let sim = simulate_aggregation_general(
                &algo,
                &g,
                None,
                pick(&ensemble.hierarchies, b),
                &AggSimOptions {
                    seed,
                    charge_hierarchy: false,
                    ..Default::default()
                },
            )
            .expect("sim");
            total.merge_parallel(&sim.metrics);
        }
        total
    };

    let m_single = run_over(&|hs, _| &hs[0]);
    let m_ens = run_over(&|hs, b| &hs[b % hs.len()]);
    // Congestion over edges that are cluster edges anywhere in the ensemble.
    let mask_single = |e: congest_graph::EdgeId| ensemble.hierarchies[0].is_cluster_edge(e);
    let any_mask =
        |e: congest_graph::EdgeId| ensemble.hierarchies.iter().any(|h| h.is_cluster_edge(e));
    let c_single = m_single.max_congestion_where(mask_single);
    let c_ens = m_ens.max_congestion_where(any_mask);
    t.row(vec![
        f2(eps),
        zeta.to_string(),
        c_single.to_string(),
        c_ens.to_string(),
        f2(c_single as f64 / c_ens.max(1) as f64),
    ]);
    t.note("same batched depth-limited BFS workload; only the hierarchy assignment differs");
    t
}

/// E-T1.4 — Theorem 1.4: random-delay BFS scheduling.
pub fn e_t1_4(n: usize, ls: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-T1.4 (Theorem 1.4): ℓ BFS with random delays, n = {n}"),
        &[
            "ℓ",
            "rounds",
            "ℓ+dilation",
            "rounds/(ℓ+dil)",
            "max distinct BFS per node-round",
            "log₂ n",
            "re-broadcasts",
        ],
    );
    let g = generators::gnp_connected(n, 0.25, seed);
    for &l in ls {
        let algo = BfsCollection::new(g.nodes().take(l).collect()).with_random_delays(seed);
        let mut max_distinct = 0usize;
        let run = run_bcongest_observed(
            &algo,
            &g,
            None,
            &RunOptions {
                seed,
                ..Default::default()
            },
            |_v, _r, inbox| {
                let mut ids: Vec<u32> = inbox.iter().map(|(_, m)| m.bfs).collect();
                ids.sort_unstable();
                ids.dedup();
                max_distinct = max_distinct.max(ids.len());
            },
        )
        .expect("run");
        let dilation = algo.dilation(g.n());
        let expected = run.metrics.broadcasts.saturating_sub((l * g.n()) as u64);
        t.row(vec![
            l.to_string(),
            run.metrics.rounds.to_string(),
            (l + dilation).to_string(),
            f2(run.metrics.rounds as f64 / (l + dilation) as f64),
            max_distinct.to_string(),
            f2((n as f64).log2()),
            expected.to_string(),
        ]);
    }
    t
}

/// E-C2.8 — Corollary 2.8: message-optimal bipartite maximum matching.
pub fn e_c2_8(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "E-C2.8 (Corollary 2.8): bipartite maximum matching via Theorem 2.1",
        &[
            "n",
            "m",
            "|M|",
            "HK optimum",
            "B_A",
            "msgs (sim)",
            "msgs (direct)",
            "rounds (sim)",
        ],
    );
    for &half in sizes {
        let g = generators::random_bipartite_connected(half, half, 0.25, seed);
        let sim = apsp_core::matching::bipartite_maximum_matching(&g, seed).expect("sim");
        let dir = apsp_core::matching::bipartite_maximum_matching_direct(&g, seed).expect("direct");
        let hk = congest_graph::reference::hopcroft_karp(&g).expect("bipartite");
        assert_eq!(sim.pairs.len(), hk, "maximum");
        t.row(vec![
            g.n().to_string(),
            g.m().to_string(),
            sim.pairs.len().to_string(),
            hk.to_string(),
            sim.simulated_broadcasts.to_string(),
            sim.metrics.messages.to_string(),
            dir.metrics.messages.to_string(),
            sim.metrics.rounds.to_string(),
        ]);
    }
    t
}

/// E-C2.9 — Corollary 2.9: `(k, W)`-sparse neighborhood covers.
pub fn e_c2_9(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-C2.9 (Corollary 2.9): (k,W)-sparse neighborhood covers, n = {n}"),
        &[
            "k",
            "W",
            "reps (trees/node)",
            "max depth",
            "kW·ln n bound",
            "msgs (sim)",
            "valid",
        ],
    );
    let g = generators::gnp_connected(n, 0.2, seed);
    for &(k, w) in &[(2usize, 1u32), (2, 2), (3, 2)] {
        let reps = 30;
        let res =
            apsp_core::cover::sparse_neighborhood_cover(&g, k, w, Some(reps), seed).expect("cover");
        let valid = res.validate(&g);
        let (depth, trees) = valid.as_ref().copied().unwrap_or((0, 0));
        t.row(vec![
            k.to_string(),
            w.to_string(),
            trees.to_string(),
            depth.to_string(),
            f2(3.0 * k as f64 * w as f64 * ln(n)),
            res.metrics.messages.to_string(),
            valid.is_ok().to_string(),
        ]);
    }
    t.note("reps fixed at 30 for comparability; the default Θ(n^{1/k} log n) count is used by the library");
    t
}

/// E-T1.2b — the n-sweep at fixed ε for fitted exponents (rounds vs n^{2-ε},
/// messages vs n^{2+ε}).
pub fn e_t1_2_scaling(ns: &[usize], epsilon: f64, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-T1.2b (Theorem 1.2): scaling at ε = {epsilon}"),
        &["n", "rounds", "messages"],
    );
    let mut xs = Vec::new();
    let mut rs = Vec::new();
    let mut ms = Vec::new();
    for &n in ns {
        let g = generators::gnp_connected(n, 0.3, seed + n as u64);
        let res = tradeoff_apsp(&g, epsilon, seed).expect("tradeoff");
        verify::check_unweighted_apsp(&g, &res.dist).expect("exactness");
        xs.push(n as f64);
        rs.push(res.metrics.rounds as f64);
        ms.push(res.metrics.messages as f64);
        t.row(vec![
            n.to_string(),
            res.metrics.rounds.to_string(),
            res.metrics.messages.to_string(),
        ]);
    }
    if xs.len() >= 2 {
        t.note(format!(
            "fitted exponents: rounds ≈ n^{} (paper 2-ε = {}), messages ≈ n^{} (paper 2+ε = {})",
            f2(fit_exponent(&xs, &rs)),
            f2(2.0 - epsilon),
            f2(fit_exponent(&xs, &ms)),
            f2(2.0 + epsilon),
        ));
    }
    t
}

/// Quick direct-vs-simulated equality spot check used by the harness preamble.
pub fn equality_smoke(seed: u64) -> bool {
    let g = generators::gnp_connected(18, 0.2, seed);
    let algo = Bfs::new(NodeId::new(0));
    let direct = run_bcongest(
        &algo,
        &g,
        None,
        &RunOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("direct");
    let sim = simulate_bcongest_via_ldc(
        &algo,
        &g,
        None,
        &LdcSimOptions {
            seed,
            ..Default::default()
        },
    )
    .expect("sim");
    sim.outputs == direct.outputs
}

/// Keep a reference to the cover type so the docs link resolves.
pub type CoverAlgorithm = NeighborhoodCover;

/// E-EXT — the paper's concluding open question, prototyped: weighted APSP through
/// the trade-off simulations (receiver-aware aggregation; see
/// `apsp_core::weighted_tradeoff`).
pub fn e_ext_weighted_tradeoff(n: usize, seed: u64) -> Table {
    use apsp_core::weighted_tradeoff::{weighted_apsp_tradeoff, WeightedTradeoffConfig};
    let mut t = Table::new(
        format!("E-EXT (future work §4): weighted APSP over the trade-off machinery, n = {n}"),
        &["ε", "simulation", "rounds", "messages", "B_A"],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    let wg = WeightedGraph::random_weights(&g, 1..=6, seed);
    for &e in &[0.34f64, 0.5, 1.0] {
        let res = weighted_apsp_tradeoff(&wg, &WeightedTradeoffConfig { epsilon: e, seed })
            .expect("weighted tradeoff");
        apsp_core::verify::check_weighted_apsp(&wg, &res.distances).expect("exact");
        t.row(vec![
            f2(e),
            if e >= 0.5 {
                "Thm 3.10 (star)"
            } else {
                "Thm 3.9 (general)"
            }
            .into(),
            res.metrics.rounds.to_string(),
            res.metrics.messages.to_string(),
            res.simulated_broadcasts.to_string(),
        ]);
    }
    t.note("exact on every row; this regime is not claimed by the paper — it is the open question of §4, prototyped");
    t
}

/// E-ABL — ablation of the random-delay technique (Theorem 1.4's key idea): the
/// same n-source BFS collection with and without delays.
pub fn e_abl_delays(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("E-ABL (ablation of Theorem 1.4): random delays on vs off, n = {n}"),
        &[
            "delays",
            "rounds",
            "max distinct BFS per node-round",
            "re-broadcast broadcasts",
            "messages",
        ],
    );
    let g = generators::gnp_connected(n, 0.25, seed);
    for delays_on in [true, false] {
        let algo = if delays_on {
            BfsCollection::new(g.nodes().collect()).with_random_delays(seed)
        } else {
            BfsCollection::new(g.nodes().collect())
        };
        let mut max_distinct = 0usize;
        let run = run_bcongest_observed(
            &algo,
            &g,
            None,
            &RunOptions {
                seed,
                ..Default::default()
            },
            |_v, _r, inbox| {
                let mut ids: Vec<u32> = inbox.iter().map(|(_, m)| m.bfs).collect();
                ids.sort_unstable();
                ids.dedup();
                max_distinct = max_distinct.max(ids.len());
            },
        )
        .expect("run");
        let expected = (g.n() * g.n()) as u64;
        t.row(vec![
            if delays_on { "on" } else { "off" }.into(),
            run.metrics.rounds.to_string(),
            max_distinct.to_string(),
            run.metrics.broadcasts.saturating_sub(expected).to_string(),
            run.metrics.messages.to_string(),
        ]);
    }
    t.note("without delays all waves start together: per-round aggregates fatten and queue delays force re-broadcasts — the congestion Theorem 1.4 is designed to avoid");
    t
}

/// E-ABL2 — ablation of phase budgeting in Theorem 2.1: realized schedules vs the
/// worst-case Θ(n log n) per-phase padding.
pub fn e_abl_strict_budget(n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!(
            "E-ABL2 (ablation of §2.2 phase budget): realized vs strict Θ(n log n) phases, n = {n}"
        ),
        &["phase budget", "rounds", "messages"],
    );
    let g = generators::gnp_connected(n, 0.3, seed);
    let algo = Bfs::new(NodeId::new(0));
    for strict in [false, true] {
        let sim = simulate_bcongest_via_ldc(
            &algo,
            &g,
            None,
            &LdcSimOptions {
                seed,
                strict_phase_budget: strict,
                ..Default::default()
            },
        )
        .expect("sim");
        t.row(vec![
            if strict {
                "strict (paper worst case)"
            } else {
                "realized schedule"
            }
            .into(),
            sim.metrics.rounds.to_string(),
            sim.metrics.messages.to_string(),
        ]);
    }
    t.note("identical outputs and messages; only the round accounting differs");
    t
}
