//! Plain-text experiment tables (rendered into EXPERIMENTS.md) and log–log fitting.

use std::fmt::Write as _;

/// One experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + paper claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed after the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out.push('\n');
        out
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the scaling exponent.
///
/// # Panics
///
/// Panics on fewer than two points or non-positive values.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need ≥ 2 points");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_cells() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("### T"));
        assert!(s.contains("| 1 | 2  |"));
        assert!(s.contains("> hello"));
    }

    #[test]
    fn exponent_of_quadratic_is_two() {
        let xs = [8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let e = fit_exponent(&xs, &ys);
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
