//! The fault & scenario bench behind `BENCH_faults.json`: every `faulty-*`,
//! `skewed-*` and spanner scenario of the `congest_workloads` registry timed
//! under every backend of the wall-clock sweep
//! ([`congest_workloads::configs::bench_matrix`]), plus the cost of the
//! replayable-trace layer itself (record, encode, replay).
//!
//! Scenario IDs are the stable registry names (`algorithm/family`), and every
//! input is a deterministic seeded fixture, so two runs of this bench on any
//! machine measure the same executions — wall-clock aside, the reports are
//! byte-identical. Like [`crate::suite_bench`], the run **panics** if any
//! backend diverges from the sequential baseline or any recorded trace fails
//! to replay byte-identically, so the perf-smoke CI job doubles as a
//! fault-conformance tripwire in release mode.

use crate::suite_bench::timed_sweep;
use congest_engine::ExecutorConfig;
use congest_workloads::{configs, registry, replay, Workload};
use std::time::Instant;

/// Repetitions for one [`run_fault_bench`] invocation.
#[derive(Clone, Debug)]
pub struct FaultBenchConfig {
    /// Timed repetitions per (scenario, backend) cell; `wall_ms` records the
    /// minimum, damping scheduler noise.
    pub reps: usize,
}

impl FaultBenchConfig {
    /// CI-sized configuration (single repetition).
    pub fn quick() -> Self {
        Self { reps: 1 }
    }

    /// The full configuration used for committed `BENCH_faults.json`
    /// refreshes.
    pub fn full() -> Self {
        Self { reps: 3 }
    }
}

/// One timed execution of one scenario under one backend configuration.
#[derive(Clone, Debug)]
pub struct FaultSample {
    /// Backend label from the bench matrix (`"sequential"`, `"chunked/hw"`,
    /// `"sharded/4"`, …).
    pub backend: String,
    /// Minimum wall-clock over the repetitions, milliseconds.
    pub wall_ms: f64,
}

/// All measurements of one fault/skew scenario.
#[derive(Clone, Debug)]
pub struct FaultScenarioReport {
    /// Stable scenario ID — the registry key (`algorithm/family`).
    pub scenario: String,
    /// Nodes of the (deterministic) fixture graph.
    pub n: usize,
    /// Edges of the fixture graph.
    pub m: usize,
    /// Exact message count — asserted identical across all backends.
    pub messages: u64,
    /// Exact round count — asserted identical across all backends.
    pub rounds: u64,
    /// Messages dropped by fault injection — exact and backend-independent.
    pub dropped_messages: u64,
    /// Recorded rounds with any activity in the sequential trace.
    pub trace_rounds: usize,
    /// Size of the JSONL-encoded trace, bytes.
    pub trace_bytes: usize,
    /// Wall-clock of one traced (recording) sequential run, milliseconds.
    pub record_ms: f64,
    /// Wall-clock of one full replay (re-execute + conformance check),
    /// milliseconds.
    pub replay_ms: f64,
    /// One sample per backend configuration, sequential first.
    pub samples: Vec<FaultSample>,
}

/// The full fault-bench outcome, serializable to `BENCH_faults.json`.
#[derive(Clone, Debug)]
pub struct FaultBenchReport {
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// Per-scenario measurements, in registry order.
    pub scenarios: Vec<FaultScenarioReport>,
}

/// The scenario slice of the registry: every fault-injected, skew-topology
/// and spanner entry, in registry order.
pub fn scenario_entries() -> Vec<Box<dyn Workload>> {
    registry()
        .into_iter()
        .filter(|w| {
            let a = w.algorithm();
            a.starts_with("faulty-") || a.starts_with("skewed-") || a == "baswana-sen-spanner"
        })
        .collect()
}

/// Benches one scenario: the backend sweep via [`timed_sweep`], then one
/// timed traced run and one timed replay of the resulting log.
///
/// # Panics
///
/// Panics if any backend's outcome diverges from the sequential baseline, or
/// the recorded trace fails to replay byte-identically.
pub fn bench_scenario(
    w: &dyn Workload,
    backends: &[(String, ExecutorConfig)],
    reps: usize,
) -> FaultScenarioReport {
    let input = w.build();
    let (base, wall) = timed_sweep(w, &input, backends, reps);

    let start = Instant::now();
    let (_, trace) = w
        .run_traced(&ExecutorConfig::sequential())
        .unwrap_or_else(|e| panic!("{}: traced run failed: {e}", w.name()));
    let record_ms = start.elapsed().as_secs_f64() * 1e3;
    let jsonl = trace.to_jsonl();

    let start = Instant::now();
    replay(&trace).unwrap_or_else(|e| panic!("{}: replay diverged: {e}", w.name()));
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;

    FaultScenarioReport {
        scenario: w.name(),
        n: input.graph.n(),
        m: input.graph.m(),
        messages: base.metrics.messages,
        rounds: base.metrics.rounds,
        dropped_messages: base.metrics.dropped_messages,
        trace_rounds: trace.rounds.len(),
        trace_bytes: jsonl.len(),
        record_ms,
        replay_ms,
        samples: backends
            .iter()
            .zip(wall)
            .map(|((label, _), wall_ms)| FaultSample {
                backend: label.clone(),
                wall_ms,
            })
            .collect(),
    }
}

/// Runs every fault/skew scenario under every backend of
/// [`configs::bench_matrix`], with a traced run and a replay per scenario.
///
/// # Panics
///
/// Panics on any conformance or replay divergence.
pub fn run_fault_bench(cfg: &FaultBenchConfig) -> FaultBenchReport {
    let backends = configs::bench_matrix();
    FaultBenchReport {
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        scenarios: scenario_entries()
            .iter()
            .map(|w| bench_scenario(w.as_ref(), &backends, cfg.reps))
            .collect(),
    }
}

impl FaultBenchReport {
    /// Serializes to the `BENCH_faults.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"fault-scenarios\",\n");
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!(
            "  \"scenario_count\": {},\n",
            self.scenarios.len()
        ));
        s.push_str("  \"scenarios\": [\n");
        for (si, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"scenario\": \"{}\",\n", sc.scenario));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"m\": {},\n", sc.m));
            s.push_str(&format!("      \"messages\": {},\n", sc.messages));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!(
                "      \"dropped_messages\": {},\n",
                sc.dropped_messages
            ));
            s.push_str(&format!("      \"trace_rounds\": {},\n", sc.trace_rounds));
            s.push_str(&format!("      \"trace_bytes\": {},\n", sc.trace_bytes));
            s.push_str(&format!("      \"record_ms\": {:.3},\n", sc.record_ms));
            s.push_str(&format!("      \"replay_ms\": {:.3},\n", sc.replay_ms));
            s.push_str("      \"replay_conformant\": true,\n");
            s.push_str("      \"samples\": [\n");
            for (i, smp) in sc.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"backend\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                    smp.backend,
                    smp.wall_ms,
                    if i + 1 < sc.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if si + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_workloads::find;

    #[test]
    fn scenario_slice_is_nonempty_and_stable() {
        let ids: Vec<String> = scenario_entries().iter().map(|w| w.name()).collect();
        assert!(ids.len() >= 9, "scenario slice too thin: {ids:?}");
        assert!(ids.contains(&"faulty-bfs/gnp-crash".to_string()));
        assert!(ids.contains(&"skewed-bfs/power-law-wide".to_string()));
        assert!(ids.contains(&"baswana-sen-spanner/gnp".to_string()));
        let again: Vec<String> = scenario_entries().iter().map(|w| w.name()).collect();
        assert_eq!(ids, again, "scenario IDs must be stable");
    }

    #[test]
    fn single_scenario_bench_replays_and_serializes() {
        // One cheap scenario through the full machinery (the whole slice runs
        // in the perf-smoke job; tests keep it to one entry).
        let w = find("faulty-gossip/gnp-crash").expect("registered scenario");
        let report = FaultBenchReport {
            host_threads: 1,
            scenarios: vec![bench_scenario(
                w.as_ref(),
                &congest_workloads::configs::bench_matrix(),
                1,
            )],
        };
        let sc = &report.scenarios[0];
        assert_eq!(sc.scenario, "faulty-gossip/gnp-crash");
        assert_eq!(sc.samples.len(), 6);
        assert_eq!(sc.samples[0].backend, "sequential");
        assert_eq!(sc.samples[5].backend, "auto/hw");
        assert!(sc.dropped_messages > 0, "fault plan never bit");
        assert!(sc.trace_bytes > 0 && sc.trace_rounds > 0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"fault-scenarios\""));
        assert!(json.contains("\"replay_conformant\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
