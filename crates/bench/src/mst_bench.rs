//! The MST workload smoke bench behind `BENCH_mst.json`: the "Beyond APSP" family's
//! message-optimality tripwire plus its time–message trade-off sweep.
//!
//! For every configured graph size the harness:
//!
//! 1. runs the distributed GHS MST ([`congest_algos::mst::distributed_mst`]) with the
//!    closed-form `Õ(m)` budget ([`congest_algos::mst::message_bound`]) installed as a
//!    **hard** [`congest_algos::mst::MstConfig::message_budget`] — an overdraft fails
//!    the run, so a red perf-smoke CI job doubles as a message-optimality tripwire;
//! 2. verifies the edge set against the sequential oracles
//!    ([`apsp_core::verify::check_mst`]) — the run **panics** on any mismatch;
//! 3. sweeps the trade-off parameter `k` through
//!    [`apsp_core::mst_tradeoff::mst_tradeoff`] (`k ∈ {2, ⌈√n⌉, n}`) and records the
//!    realized (rounds, messages) frontier.
//!
//! Message/round counts are exact and machine-independent; `wall_ms` is wall-clock
//! context only (see `docs/BENCHMARKING.md`).

use apsp_core::mst_tradeoff::{mst_tradeoff, MstRoute};
use apsp_core::verify::check_mst;
use congest_algos::mst::{distributed_mst, message_bound, MstConfig};
use std::time::Instant;

/// Sizes and sweep points for one [`run_mst_bench`] invocation.
#[derive(Clone, Debug)]
pub struct MstBenchConfig {
    /// Node counts of the G(n, p) workload graphs (≥ 3 sizes so the committed
    /// snapshot demonstrates the budget across a sweep, per the acceptance bar).
    pub sizes: Vec<usize>,
    /// Edge probability of the workload graphs.
    pub p: f64,
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
}

impl MstBenchConfig {
    /// CI-sized configuration (well under a second end to end).
    pub fn quick(seed: u64) -> Self {
        Self {
            sizes: vec![24, 48, 96],
            p: 0.2,
            seed,
        }
    }

    /// The full configuration used for committed `BENCH_mst.json` refreshes.
    pub fn full(seed: u64) -> Self {
        Self {
            sizes: vec![32, 64, 128, 192],
            p: 0.15,
            seed,
        }
    }
}

/// One trade-off sweep point.
#[derive(Clone, Debug)]
pub struct TradeoffSample {
    /// The growth parameter `k`.
    pub k: usize,
    /// Rounds the run needed.
    pub rounds: u64,
    /// Messages the run needed.
    pub messages: u64,
    /// Which route served the point (`"message-optimal"` / `"controlled+central"`).
    pub route: &'static str,
}

/// All measurements for one graph size.
#[derive(Clone, Debug)]
pub struct MstSizeReport {
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Wall-clock of the budgeted GHS run, milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Rounds of the budgeted GHS run.
    pub rounds: u64,
    /// Messages of the budgeted GHS run (exact, machine-independent).
    pub messages: u64,
    /// Merge phases of the budgeted GHS run.
    pub phases: u64,
    /// The enforced `Õ(m)` budget ([`message_bound`]).
    pub budget: u64,
    /// Trade-off sweep points, in `k` order.
    pub tradeoff: Vec<TradeoffSample>,
}

/// The full MST bench outcome, serializable to `BENCH_mst.json`.
#[derive(Clone, Debug)]
pub struct MstBenchReport {
    /// Seed the workloads ran with.
    pub seed: u64,
    /// Per-size measurements.
    pub sizes: Vec<MstSizeReport>,
}

/// Runs the budgeted GHS MST + trade-off sweep at every configured size.
///
/// # Panics
///
/// Panics if any run's edge set disagrees with the sequential oracles, or if any
/// GHS run exceeds its `Õ(m)` message budget — that is the point.
pub fn run_mst_bench(cfg: &MstBenchConfig) -> MstBenchReport {
    let sizes = cfg
        .sizes
        .iter()
        .map(|&n| {
            // The graph + unique-weight setup is the registry constructor's —
            // this module only owns the budget sweep and the k-sweep.
            let input =
                congest_workloads::make::mst_gnp(n, cfg.p, cfg.seed.wrapping_add(n as u64)).build();
            let g = &input.graph;
            let wg = input.weighted_graph();
            let budget = message_bound(g.n(), g.m());
            let start = Instant::now();
            let run = distributed_mst(
                &wg,
                &MstConfig {
                    message_budget: Some(budget),
                    ..Default::default()
                },
            )
            .expect("GHS MST within the Õ(m) budget");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            check_mst(&wg, &run.edges).expect("distributed MST equals the oracle");

            let sqrt_n = (n as f64).sqrt().ceil() as usize;
            let tradeoff = [2, sqrt_n, n]
                .into_iter()
                .map(|k| {
                    let res = mst_tradeoff(&wg, k, cfg.seed).expect("tradeoff MST");
                    check_mst(&wg, &res.edges).expect("tradeoff MST equals the oracle");
                    TradeoffSample {
                        k,
                        rounds: res.metrics.rounds,
                        messages: res.metrics.messages,
                        route: match res.route {
                            MstRoute::MessageOptimal => "message-optimal",
                            MstRoute::ControlledPlusCentral => "controlled+central",
                        },
                    }
                })
                .collect();

            MstSizeReport {
                n: g.n(),
                m: g.m(),
                wall_ms,
                rounds: run.metrics.rounds,
                messages: run.metrics.messages,
                phases: run.phases,
                budget,
                tradeoff,
            }
        })
        .collect();
    MstBenchReport {
        seed: cfg.seed,
        sizes,
    }
}

impl MstBenchReport {
    /// Serializes to the `BENCH_mst.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"mst-ghs\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"oracle_checked\": true,\n");
        s.push_str("  \"sizes\": [\n");
        for (i, sz) in self.sizes.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"n\": {},\n", sz.n));
            s.push_str(&format!("      \"m\": {},\n", sz.m));
            s.push_str(&format!("      \"wall_ms\": {:.3},\n", sz.wall_ms));
            s.push_str(&format!("      \"rounds\": {},\n", sz.rounds));
            s.push_str(&format!("      \"messages\": {},\n", sz.messages));
            s.push_str(&format!("      \"phases\": {},\n", sz.phases));
            s.push_str(&format!("      \"budget\": {},\n", sz.budget));
            s.push_str(&format!(
                "      \"within_budget\": {},\n",
                sz.messages <= sz.budget
            ));
            s.push_str("      \"tradeoff\": [\n");
            for (ti, t) in sz.tradeoff.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"k\": {}, \"rounds\": {}, \"messages\": {}, \"route\": \"{}\"}}{}\n",
                    t.k,
                    t.rounds,
                    t.messages,
                    t.route,
                    if ti + 1 < sz.tradeoff.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.sizes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_verifies_and_serializes() {
        let cfg = MstBenchConfig {
            sizes: vec![16, 24, 32],
            p: 0.25,
            seed: 7,
        };
        // `run_mst_bench` oracle-checks and budget-checks internally.
        let report = run_mst_bench(&cfg);
        assert_eq!(report.sizes.len(), 3);
        for sz in &report.sizes {
            assert!(sz.messages <= sz.budget);
            assert_eq!(sz.tradeoff.len(), 3);
            assert_eq!(sz.tradeoff.last().unwrap().route, "message-optimal");
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"mst-ghs\""));
        assert!(json.contains("\"within_budget\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
