//! The engine-scaling smoke bench behind `BENCH_engine.json`: sequential vs
//! parallel wall-clock for the round executor, with the determinism contract
//! checked on every sample.
//!
//! Two workloads exercise the two runners:
//!
//! * **bcongest-bfs-collection-delays** — the registry's all-sources BFS
//!   collection with random start delays
//!   ([`congest_workloads::make::bfs_collection_gnp`]) under the BCONGEST
//!   runner: broadcast scans and receive transitions dominate;
//! * **congest-neighbor-exchange** — a per-neighbor point-to-point exchange
//!   under [`run_congest`]: the `edge_between` resolution is the hot path.
//!   This one stays local — it is a runner stress tool, not a paper workload,
//!   so it has no registry entry.
//!
//! Every thread count must produce outputs and [`Metrics`] identical to the
//! sequential run (`threads = 1`) — the run **panics** otherwise, so a red
//! perf-smoke CI job doubles as a determinism tripwire. Wall-clock numbers are
//! environment-dependent (`host_threads` is recorded for that reason: on a
//! single-core host the parallel samples measure overhead, not speedup);
//! message/round counts are exact and machine-independent.

use congest_engine::{
    run_congest, CongestAlgorithm, ExecutorConfig, LocalView, Metrics, RunOptions,
};
use congest_graph::{generators, Graph, NodeId};
use std::time::Instant;

/// Sizes and thread counts for one [`run_engine_bench`] invocation.
#[derive(Clone, Debug)]
pub struct EngineBenchConfig {
    /// Nodes of the G(n, p) workload graph.
    pub n: usize,
    /// Edge probability of the workload graph.
    pub p: f64,
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
    /// Thread counts to sample; must start with 1 (the baseline).
    pub thread_counts: Vec<usize>,
    /// Rounds of the point-to-point exchange workload.
    pub exchange_rounds: usize,
}

impl EngineBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick(seed: u64) -> Self {
        Self {
            n: 96,
            p: 0.12,
            seed,
            thread_counts: vec![1, 2, 4, 8],
            exchange_rounds: 48,
        }
    }

    /// The full configuration used for committed `BENCH_engine.json` refreshes.
    pub fn full(seed: u64) -> Self {
        Self {
            n: 192,
            p: 0.1,
            seed,
            thread_counts: vec![1, 2, 4, 8],
            exchange_rounds: 96,
        }
    }
}

/// One timed execution at one thread count.
#[derive(Clone, Debug)]
pub struct ThreadSample {
    /// Executor thread count.
    pub threads: usize,
    /// Wall-clock of the run, milliseconds.
    pub wall_ms: f64,
    /// Rounds used (identical across thread counts by construction).
    pub rounds: u64,
    /// Messages sent (identical across thread counts by construction).
    pub messages: u64,
    /// Broadcast operations (0 for the CONGEST workload).
    pub broadcasts: u64,
    /// Whether this sample ran more executor threads than the host has
    /// hardware threads — its wall-clock then measures dispatch/contention
    /// overhead, not speedup, and trajectory tooling should not read it as a
    /// scaling data point.
    pub oversubscribed: bool,
}

/// All samples of one workload.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Workload name (stable key for trajectory tooling).
    pub name: &'static str,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// One sample per configured thread count, in order.
    pub samples: Vec<ThreadSample>,
}

impl WorkloadReport {
    /// Best sequential-vs-parallel wall-clock ratio over the multi-thread
    /// samples (> 1 means the parallel executor won).
    pub fn best_speedup(&self) -> f64 {
        let base = self.samples.first().map_or(0.0, |s| s.wall_ms);
        self.samples
            .iter()
            .skip(1)
            .map(|s| base / s.wall_ms.max(1e-9))
            .fold(0.0, f64::max)
    }

    /// Whether every multi-thread sample lost to the sequential baseline —
    /// the "best speedup" is actually a regression. Previously the JSON
    /// labelled sub-1.0 ratios `best_speedup` with no signal, which read as a
    /// win in the trajectory.
    pub fn regression(&self) -> bool {
        self.best_speedup() < 1.0
    }

    /// The fastest sample's configuration label (`"1-thread"`, `"4-threads"`,
    /// …) — what a reader should actually run on this host.
    pub fn best_config(&self) -> String {
        self.samples
            .iter()
            .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
            .map_or_else(
                || "none".to_string(),
                |s| {
                    if s.threads == 1 {
                        "1-thread".to_string()
                    } else {
                        format!("{}-threads", s.threads)
                    }
                },
            )
    }
}

/// The full engine bench outcome, serializable to `BENCH_engine.json`.
#[derive(Clone, Debug)]
pub struct EngineBenchReport {
    /// Seed the workloads ran with.
    pub seed: u64,
    /// Hardware threads of the measuring host (wall-clock context: with 1 the
    /// parallel samples measure dispatch overhead, not speedup).
    pub host_threads: usize,
    /// Per-workload samples.
    pub workloads: Vec<WorkloadReport>,
}

/// The per-neighbor point-to-point workload: every node sends a distinct word
/// to each neighbor for a fixed number of rounds and folds what it hears into
/// a checksum. Deliberately chatty — it exists to stress the runner, not to
/// compute anything from the paper.
struct NeighborExchange {
    rounds: usize,
}

#[derive(Clone, Debug)]
struct ExchangeState {
    me: u32,
    neighbors: Vec<NodeId>,
    sent: usize,
    checksum: u64,
}

impl CongestAlgorithm for NeighborExchange {
    type State = ExchangeState;
    type Msg = u32;
    type Output = u64;

    fn name(&self) -> &'static str {
        "neighbor-exchange"
    }
    fn init(&self, view: &LocalView<'_>) -> ExchangeState {
        ExchangeState {
            me: view.node().raw(),
            neighbors: view.neighbors().to_vec(),
            sent: 0,
            checksum: 0,
        }
    }
    fn sends(&self, s: &ExchangeState, round: usize) -> Vec<(NodeId, u32)> {
        if s.sent >= self.rounds {
            return Vec::new();
        }
        s.neighbors
            .iter()
            .map(|&u| (u, s.me.wrapping_mul(31).wrapping_add(round as u32)))
            .collect()
    }
    fn on_sent(&self, s: &mut ExchangeState, _round: usize) {
        s.sent += 1;
    }
    fn receive(&self, s: &mut ExchangeState, round: usize, msgs: &[(NodeId, u32)]) {
        for &(from, w) in msgs {
            s.checksum = s
                .checksum
                .wrapping_mul(1099511628211)
                .wrapping_add(u64::from(from.raw()) ^ (u64::from(w) << 17) ^ round as u64);
        }
    }
    fn is_done(&self, s: &ExchangeState) -> bool {
        s.sent >= self.rounds
    }
    fn output(&self, s: &ExchangeState) -> u64 {
        s.checksum
    }
    fn round_bound(&self, _n: usize, _m: usize) -> usize {
        self.rounds + 2
    }
}

fn opts(seed: u64, threads: usize) -> RunOptions {
    RunOptions {
        seed,
        exec: ExecutorConfig::with_threads(threads),
        ..Default::default()
    }
}

fn sample<O: PartialEq + std::fmt::Debug>(
    threads: usize,
    baseline: &mut Option<(O, Metrics)>,
    run: impl FnOnce() -> (O, Metrics),
) -> ThreadSample {
    let start = Instant::now();
    let (outputs, metrics) = run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    match baseline {
        None => *baseline = Some((outputs, metrics.clone())),
        Some((base_out, base_metrics)) => {
            assert_eq!(
                *base_out, outputs,
                "outputs diverged at {threads} threads — determinism broken"
            );
            assert_eq!(
                *base_metrics, metrics,
                "metrics diverged at {threads} threads — determinism broken"
            );
        }
    }
    ThreadSample {
        threads,
        wall_ms,
        rounds: metrics.rounds,
        messages: metrics.messages,
        broadcasts: metrics.broadcasts,
        // Tagged against the measuring host's hardware threads once the
        // report assembles (`run_engine_bench`).
        oversubscribed: false,
    }
}

fn bcongest_workload(cfg: &EngineBenchConfig) -> WorkloadReport {
    let w = congest_workloads::make::bfs_collection_gnp(cfg.n, cfg.p, cfg.seed);
    // Built once; the timed samples measure the run only. The trajectory key
    // carries a `-delays` suffix because the registry workload staggers wave
    // starts (Theorem 1.4's random delays) — the pre-registry bench ran the
    // undelayed collection, so the two keys are not comparable.
    let input = w.build();
    let mut baseline = None;
    let samples = cfg
        .thread_counts
        .iter()
        .map(|&t| {
            sample(t, &mut baseline, || {
                let run = w
                    .run_built(&input, &ExecutorConfig::with_threads(t))
                    .expect("bcongest run");
                (run.output, run.metrics)
            })
        })
        .collect();
    WorkloadReport {
        name: "bcongest-bfs-collection-delays",
        n: input.graph.n(),
        m: input.graph.m(),
        samples,
    }
}

fn congest_workload(g: &Graph, cfg: &EngineBenchConfig) -> WorkloadReport {
    let mut baseline = None;
    let samples = cfg
        .thread_counts
        .iter()
        .map(|&t| {
            sample(t, &mut baseline, || {
                let algo = NeighborExchange {
                    rounds: cfg.exchange_rounds,
                };
                let run = run_congest(&algo, g, None, &opts(cfg.seed, t)).expect("congest run");
                (run.outputs, run.metrics)
            })
        })
        .collect();
    WorkloadReport {
        name: "congest-neighbor-exchange",
        n: g.n(),
        m: g.m(),
        samples,
    }
}

/// Both workloads with their inputs built **once** — the criterion bench's
/// prepared state, so the timed per-iteration body measures the runners only,
/// never graph generation or workload construction.
pub struct PreparedWorkloads {
    w: Box<dyn congest_workloads::Workload>,
    input: congest_workloads::BuiltInput,
    g: Graph,
    exchange_rounds: usize,
    seed: u64,
}

impl PreparedWorkloads {
    /// Builds the BCONGEST registry workload and the exchange graph for `cfg`.
    pub fn new(cfg: &EngineBenchConfig) -> Self {
        let w = congest_workloads::make::bfs_collection_gnp(cfg.n, cfg.p, cfg.seed);
        let input = w.build();
        Self {
            w,
            g: input.graph.clone(),
            input,
            exchange_rounds: cfg.exchange_rounds,
            seed: cfg.seed,
        }
    }

    /// Runs both workloads once at a single executor thread count, with no
    /// baseline comparison — the criterion bench's per-iteration body. Returns
    /// the two message totals so callers can `black_box` something real.
    pub fn run_once(&self, threads: usize) -> (u64, u64) {
        let b = self
            .w
            .run_built(&self.input, &ExecutorConfig::with_threads(threads))
            .expect("bcongest run");
        let c = run_congest(
            &NeighborExchange {
                rounds: self.exchange_rounds,
            },
            &self.g,
            None,
            &opts(self.seed, threads),
        )
        .expect("congest run");
        (b.metrics.messages, c.metrics.messages)
    }
}

/// Runs both workloads at every configured thread count, asserting the
/// determinism contract sample by sample.
///
/// # Panics
///
/// Panics if any parallel sample's outputs or metrics differ from the
/// sequential baseline — that is the point.
pub fn run_engine_bench(cfg: &EngineBenchConfig) -> EngineBenchReport {
    assert_eq!(
        cfg.thread_counts.first(),
        Some(&1),
        "the first thread count is the sequential baseline"
    );
    // Warm every pool before any timing: executor pools are built lazily on
    // first use, and thread-spawn cost must not land in the first workload's
    // samples while later workloads run on warm pools.
    for &t in &cfg.thread_counts {
        congest_engine::exec::map_ranges(&ExecutorConfig::with_threads(t), 2, |_| ());
    }
    let g = generators::gnp_connected(cfg.n, cfg.p, cfg.seed);
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut workloads = vec![bcongest_workload(cfg), congest_workload(&g, cfg)];
    for w in &mut workloads {
        for s in &mut w.samples {
            s.oversubscribed = s.threads > host_threads;
        }
    }
    EngineBenchReport {
        seed: cfg.seed,
        host_threads,
        workloads,
    }
}

impl EngineBenchReport {
    /// Serializes to the `BENCH_engine.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"engine-round-executor\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str("      \"identical_across_threads\": true,\n");
            s.push_str(&format!(
                "      \"best_speedup\": {:.3},\n",
                w.best_speedup()
            ));
            s.push_str(&format!("      \"regression\": {},\n", w.regression()));
            s.push_str(&format!(
                "      \"best_config\": \"{}\",\n",
                w.best_config()
            ));
            s.push_str("      \"samples\": [\n");
            for (si, smp) in w.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"threads\": {}, \"wall_ms\": {:.3}, \"rounds\": {}, \"messages\": {}, \"broadcasts\": {}, \"oversubscribed\": {}}}{}\n",
                    smp.threads,
                    smp.wall_ms,
                    smp.rounds,
                    smp.messages,
                    smp.broadcasts,
                    smp.oversubscribed,
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_deterministic_and_serializes() {
        let cfg = EngineBenchConfig {
            n: 24,
            p: 0.2,
            seed: 7,
            thread_counts: vec![1, 2, 3],
            exchange_rounds: 6,
        };
        // `run_engine_bench` asserts outputs/metrics equality internally.
        let report = run_engine_bench(&cfg);
        assert_eq!(report.workloads.len(), 2);
        for w in &report.workloads {
            assert_eq!(w.samples.len(), 3);
            let msgs: Vec<u64> = w.samples.iter().map(|s| s.messages).collect();
            assert!(msgs.windows(2).all(|p| p[0] == p[1]), "exact counts");
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"engine-round-executor\""));
        assert!(json.contains("congest-neighbor-exchange"));
        assert!(json.contains("\"regression\": "));
        assert!(json.contains("\"best_config\": \""));
        assert!(json.contains("\"oversubscribed\": "));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "JSON braces balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Any sample above the host's hardware thread count is tagged.
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        for w in &report.workloads {
            for s in &w.samples {
                assert_eq!(s.oversubscribed, s.threads > host);
            }
        }
    }

    #[test]
    fn regression_and_best_config_read_the_samples() {
        let mk = |walls: &[f64]| WorkloadReport {
            name: "synthetic",
            n: 0,
            m: 0,
            samples: walls
                .iter()
                .enumerate()
                .map(|(i, &wall_ms)| ThreadSample {
                    threads: 1 << i,
                    wall_ms,
                    rounds: 0,
                    messages: 0,
                    broadcasts: 0,
                    oversubscribed: false,
                })
                .collect(),
        };
        // Parallel wins: no regression, fastest sample named.
        let winning = mk(&[10.0, 6.0, 4.0]);
        assert!(!winning.regression());
        assert_eq!(winning.best_config(), "4-threads");
        // Every parallel sample loses: explicit regression, baseline named.
        let losing = mk(&[10.0, 12.0, 15.0]);
        assert!(losing.regression());
        assert_eq!(losing.best_config(), "1-thread");
    }
}
