//! The message-plane scale bench behind `BENCH_scale.json`: BFS, gossip and
//! MST on `sparse_connected` graphs up to 10⁶ nodes, boxed vs flat plane,
//! with the plane-conformance contract checked on every sample.
//!
//! The workloads are **registry constructors** ([`congest_workloads::make`])
//! at scale-bench sizes — the graph/config setup, the runner, and the oracle
//! all live in `congest-workloads`; this module only owns the size sweep and
//! the report schema:
//!
//! * **bfs/sparse-n** — single-source BFS at up to 10⁶ nodes: `O(log n)`
//!   rounds on the recursive-tree backbone, one message per edge direction —
//!   the round loop and the plane's scatter dominate;
//! * **gossip/sparse-n** — the one-shot point-to-point probe at up to 10⁶
//!   nodes: exactly `2m` messages in one delivery round, the purest measure
//!   of per-message plane overhead;
//! * **mst/sparse-n** — the GHS phase loop at 10⁵ nodes under its hard
//!   `Õ(m)` message budget: convergecast/broadcast treeops at scale.
//!
//! Every sample's [`congest_workloads::RunOutcome`] must equal the boxed
//! sequential baseline — outputs **and** exact metrics (messages, rounds,
//! `payload_bytes`, the full congestion vector), so the committed message
//! counts are pinned equal across planes by construction; the run **panics**
//! otherwise, and a red perf-smoke CI job doubles as a plane-conformance
//! tripwire at sizes the test matrix cannot afford. `wall_ms` is the minimum
//! of [`ScaleBenchConfig::reps`] runs and is machine-dependent
//! (`host_threads` is recorded).

use crate::suite_bench::timed_sweep;
use congest_engine::{DeliveryBackend, ExecutorConfig, MessagePlane};
use congest_workloads::{make, Workload};

/// Sizes and repetitions for one [`run_scale_bench`] invocation.
#[derive(Clone, Debug)]
pub struct ScaleBenchConfig {
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
    /// Nodes of the BFS workload graph.
    pub bfs_n: usize,
    /// Nodes of the gossip workload graph.
    pub gossip_n: usize,
    /// Nodes of the MST workload graph.
    pub mst_n: usize,
    /// Timed repetitions per (workload, plane) cell; `wall_ms` records the
    /// minimum, damping scheduler noise.
    pub reps: usize,
}

impl ScaleBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            bfs_n: 50_000,
            gossip_n: 50_000,
            mst_n: 20_000,
            reps: 1,
        }
    }

    /// The full configuration used for committed `BENCH_scale.json`
    /// refreshes: BFS/gossip at 10⁶ nodes, MST at 10⁵.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            bfs_n: 1_000_000,
            gossip_n: 1_000_000,
            mst_n: 100_000,
            reps: 3,
        }
    }
}

/// The plane sweep of one workload: the boxed sequential reference, the flat
/// plane under the same sequential schedule (pure plane overhead delta), and
/// the flat plane under the parallel backends (chunked at hardware threads,
/// 4 sharded mailboxes).
fn plane_configs() -> Vec<(String, ExecutorConfig)> {
    vec![
        (
            "sequential/boxed".to_string(),
            ExecutorConfig::builder()
                .threads(1)
                .backend(DeliveryBackend::Sequential)
                .plane(MessagePlane::Boxed)
                .build(),
        ),
        (
            "sequential/flat".to_string(),
            ExecutorConfig::builder()
                .threads(1)
                .backend(DeliveryBackend::Sequential)
                .plane(MessagePlane::Flat)
                .build(),
        ),
        (
            "chunked-hw/flat".to_string(),
            ExecutorConfig::builder()
                .threads(0)
                .backend(DeliveryBackend::Chunked)
                .plane(MessagePlane::Flat)
                .build(),
        ),
        (
            "sharded-4/flat".to_string(),
            ExecutorConfig::builder()
                .threads(4)
                .backend(DeliveryBackend::Sharded { shards: 4 })
                .plane(MessagePlane::Flat)
                .build(),
        ),
    ]
}

/// One timed execution of one workload under one (backend, plane) cell.
#[derive(Clone, Debug)]
pub struct ScaleSample {
    /// Stable `backend/plane` label, e.g. `"sequential/flat"`.
    pub config: String,
    /// Minimum wall-clock over the repetitions, milliseconds.
    pub wall_ms: f64,
}

/// All samples of one workload.
#[derive(Clone, Debug)]
pub struct ScaleWorkloadReport {
    /// Registry key of the workload (stable key for trajectory tooling).
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Exact message count — asserted identical across planes and backends.
    pub messages: u64,
    /// Exact round count — asserted identical across planes and backends.
    pub rounds: u64,
    /// Exact delivered payload bytes — asserted identical across planes.
    pub payload_bytes: u64,
    /// One sample per plane configuration, boxed sequential first.
    pub samples: Vec<ScaleSample>,
}

impl ScaleWorkloadReport {
    /// Boxed-vs-flat wall-clock ratio under the sequential schedule (> 1
    /// means the flat plane beat the boxed plane like for like).
    pub fn flat_speedup(&self) -> f64 {
        let boxed = self.samples.first().map_or(0.0, |s| s.wall_ms);
        self.samples
            .iter()
            .find(|s| s.config == "sequential/flat")
            .map_or(0.0, |s| boxed / s.wall_ms.max(1e-9))
    }
}

/// The full scale-bench outcome, serializable to `BENCH_scale.json`.
#[derive(Clone, Debug)]
pub struct ScaleBenchReport {
    /// Seed the workloads ran with.
    pub seed: u64,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// Per-workload samples.
    pub workloads: Vec<ScaleWorkloadReport>,
}

/// Times one registry workload under every plane configuration through the
/// shared [`timed_sweep`] core (build once, assert [`RunOutcome`] equality
/// against the boxed sequential baseline on every repetition).
///
/// [`RunOutcome`]: congest_workloads::RunOutcome
fn sweep(w: &dyn Workload, reps: usize) -> ScaleWorkloadReport {
    let input = w.build();
    let configs = plane_configs();
    let (base, wall) = timed_sweep(w, &input, &configs, reps);
    ScaleWorkloadReport {
        name: w.name(),
        n: input.graph.n(),
        m: input.graph.m(),
        messages: base.metrics.messages,
        rounds: base.metrics.rounds,
        payload_bytes: base.metrics.payload_bytes,
        samples: configs
            .into_iter()
            .zip(wall)
            .map(|((config, _), wall_ms)| ScaleSample { config, wall_ms })
            .collect(),
    }
}

/// Runs the three scale workloads under every plane configuration. The graphs
/// are `sparse_connected` with `n/2` extra chords (`m ≈ 1.5 n`, diameter
/// `O(log n)`) — the only generator family that reaches 10⁶ nodes.
///
/// # Panics
///
/// Panics if any sample's outcome differs from the boxed sequential baseline
/// — that is the point.
pub fn run_scale_bench(cfg: &ScaleBenchConfig) -> ScaleBenchReport {
    let workloads: Vec<Box<dyn Workload>> = vec![
        make::bfs_sparse(cfg.bfs_n, cfg.bfs_n / 2, cfg.seed),
        make::gossip_sparse(cfg.gossip_n, cfg.gossip_n / 2, cfg.seed),
        make::mst_sparse(cfg.mst_n, cfg.mst_n / 2, cfg.seed),
    ];
    ScaleBenchReport {
        seed: cfg.seed,
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        workloads: workloads
            .iter()
            .map(|w| sweep(w.as_ref(), cfg.reps))
            .collect(),
    }
}

impl ScaleBenchReport {
    /// Serializes to the `BENCH_scale.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"message-plane-scale\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"messages\": {},\n", w.messages));
            s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
            s.push_str(&format!("      \"payload_bytes\": {},\n", w.payload_bytes));
            s.push_str("      \"counts_identical_across_planes\": true,\n");
            s.push_str(&format!(
                "      \"flat_speedup\": {:.3},\n",
                w.flat_speedup()
            ));
            s.push_str("      \"samples\": [\n");
            for (si, smp) in w.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"config\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                    smp.config,
                    smp.wall_ms,
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_bench_is_conformant_and_serializes() {
        let cfg = ScaleBenchConfig {
            seed: 7,
            bfs_n: 600,
            gossip_n: 600,
            mst_n: 200,
            reps: 1,
        };
        // `run_scale_bench` asserts plane conformance internally.
        let report = run_scale_bench(&cfg);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert_eq!(w.samples.len(), 4);
            assert_eq!(w.samples[0].config, "sequential/boxed");
            assert!(w.messages > 0);
            assert!(w.payload_bytes > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"message-plane-scale\""));
        assert!(json.contains("bfs/sparse-600"));
        assert!(json.contains("mst/sparse-200"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
