//! The serving-suite bench behind `BENCH_serve.json`: a [`DistanceOracle`]
//! over Theorem 1.1 weighted APSP, driven by the deterministic closed-loop
//! load generator of `congest_serve::loadgen` — an Internet-Computer-style
//! request-rate ramp (`initial_rps` → `target_rps`) over scenario mixes
//! (uniform and hot-key-skewed point lookups, k-NN, batches; cold vs warmed
//! cache), reporting p50/p95/p99 service latency, achieved rps and cache hit
//! rates per step.
//!
//! **Every served answer is differential-checked** against the sequential
//! all-pairs Dijkstra reference as it is served (the load generator panics on
//! the first divergence), so a red perf-smoke job doubles as a serving-layer
//! conformance tripwire. The query streams are pure functions of the seed;
//! latencies and achieved rps are machine-dependent wall-clock
//! (`host_threads` is recorded), like every other bench in the workspace.

use apsp_core::weighted_apsp::{weighted_apsp, WeightedApspConfig};
use congest_engine::{ExecutorConfig, MessagePlane};
use congest_graph::{generators, WeightedGraph};
use congest_serve::loadgen::{run_scenario, ExactReference, QueryMix, RampConfig, Scenario};
use congest_serve::DistanceOracle;

pub use congest_serve::loadgen::{ScenarioReport, StepReport};

/// Graph size, cache size and ramp for one [`run_serve_bench`] invocation.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
    /// Nodes of the `G(n, p)` source graph.
    pub n: usize,
    /// Edge probability of the source graph.
    pub p: f64,
    /// Oracle cache capacity (point/batched lookups).
    pub cache_capacity: usize,
    /// The request-rate ramp every scenario sweeps.
    pub ramp: RampConfig,
}

impl ServeBenchConfig {
    /// CI-sized configuration (a couple of seconds end to end).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            n: 48,
            p: 0.15,
            cache_capacity: 256,
            ramp: RampConfig {
                initial_rps: 2_000,
                increment_rps: 6_000,
                target_rps: 20_000,
                step_duration_ms: 40,
            },
        }
    }

    /// The full configuration used for committed `BENCH_serve.json`
    /// refreshes: a 96-node oracle under a 5k → 50k rps ramp.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            n: 96,
            p: 0.12,
            cache_capacity: 1_024,
            ramp: RampConfig {
                initial_rps: 5_000,
                increment_rps: 15_000,
                target_rps: 50_000,
                step_duration_ms: 200,
            },
        }
    }
}

/// The scenario mixes every serve bench sweeps: uniform and hot-key-skewed
/// point lookups (each cold **and** warmed), k-NN, and two batch sizes.
fn scenarios(n: usize) -> Vec<Scenario> {
    let hot = (n / 8).max(1);
    vec![
        Scenario {
            name: "uniform-cold".into(),
            mix: QueryMix::Uniform,
            warm_cache: false,
        },
        Scenario {
            name: "uniform-warm".into(),
            mix: QueryMix::Uniform,
            warm_cache: true,
        },
        Scenario {
            name: "hotkey-cold".into(),
            mix: QueryMix::HotKey {
                hot_nodes: hot,
                hot_permille: 900,
            },
            warm_cache: false,
        },
        Scenario {
            name: "hotkey-warm".into(),
            mix: QueryMix::HotKey {
                hot_nodes: hot,
                hot_permille: 900,
            },
            warm_cache: true,
        },
        Scenario {
            name: "knn-8".into(),
            mix: QueryMix::Knn { k: 8 },
            warm_cache: false,
        },
        Scenario {
            name: "batch-4".into(),
            mix: QueryMix::Batch { size: 4 },
            warm_cache: false,
        },
        Scenario {
            name: "batch-32".into(),
            mix: QueryMix::Batch { size: 32 },
            warm_cache: false,
        },
    ]
}

/// The full serve-bench outcome, serializable to `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Seed the source build and query streams ran with.
    pub seed: u64,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// Nodes of the source graph.
    pub n: usize,
    /// Edges of the source graph.
    pub m: usize,
    /// Oracle cache capacity.
    pub cache_capacity: usize,
    /// CONGEST messages the Theorem 1.1 source build spent.
    pub build_messages: u64,
    /// CONGEST rounds the source build spent.
    pub build_rounds: u64,
    /// One ramp per scenario mix.
    pub scenarios: Vec<ScenarioReport>,
}

/// Builds the weighted-APSP oracle and sweeps every scenario over the ramp.
/// The source is built through `ExecutorConfig::builder()` (flat plane,
/// hardware threads — the build is conformant, so this only moves wall-clock).
///
/// # Panics
///
/// Panics if any served answer diverges from the sequential all-pairs
/// Dijkstra reference — that is the point.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let g = generators::gnp_connected(cfg.n, cfg.p, cfg.seed);
    let wg = WeightedGraph::random_weights(&g, 1..=9, cfg.seed);
    let exec = ExecutorConfig::builder()
        .threads(0)
        .plane(MessagePlane::Flat)
        .build();
    let run = weighted_apsp(
        &wg,
        &WeightedApspConfig {
            seed: cfg.seed,
            exec,
            ..Default::default()
        },
    )
    .expect("weighted APSP build");
    let build_messages = run.metrics.messages;
    let build_rounds = run.metrics.rounds;

    let check = ExactReference::dijkstra(&wg);
    let mut oracle = DistanceOracle::builder(run)
        .cache_capacity(cfg.cache_capacity)
        .build();
    assert!(oracle.is_exact());

    let scenarios = scenarios(cfg.n)
        .iter()
        .map(|sc| run_scenario(&mut oracle, sc, &cfg.ramp, cfg.seed, &check))
        .collect();

    ServeBenchReport {
        seed: cfg.seed,
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        n: wg.n(),
        m: wg.m(),
        cache_capacity: cfg.cache_capacity,
        build_messages,
        build_rounds,
        scenarios,
    }
}

impl ServeBenchReport {
    /// Serializes to the `BENCH_serve.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"serve-oracle\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"m\": {},\n", self.m));
        s.push_str(&format!("  \"cache_capacity\": {},\n", self.cache_capacity));
        s.push_str(&format!("  \"build_messages\": {},\n", self.build_messages));
        s.push_str(&format!("  \"build_rounds\": {},\n", self.build_rounds));
        s.push_str("  \"all_answers_checked\": true,\n");
        s.push_str("  \"scenarios\": [\n");
        for (si, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.scenario));
            s.push_str(&format!("      \"warmed\": {},\n", sc.warmed));
            s.push_str("      \"steps\": [\n");
            for (ti, st) in sc.steps.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"target_rps\": {}, \"requests\": {}, \"achieved_rps\": {:.1}, \
                     \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \
                     \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}, \"checked\": {}}}{}\n",
                    st.target_rps,
                    st.requests,
                    st.achieved_rps,
                    st.p50_us,
                    st.p95_us,
                    st.p99_us,
                    st.hits,
                    st.misses,
                    st.hit_rate(),
                    st.checked,
                    if ti + 1 < sc.steps.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if si + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_serve_bench_checks_and_serializes() {
        let cfg = ServeBenchConfig {
            seed: 7,
            n: 24,
            p: 0.2,
            cache_capacity: 64,
            ramp: RampConfig {
                initial_rps: 2_000,
                increment_rps: 2_000,
                target_rps: 6_000,
                step_duration_ms: 15,
            },
        };
        // `run_serve_bench` differential-checks every answer internally.
        let report = run_serve_bench(&cfg);
        assert_eq!(report.scenarios.len(), 7);
        for sc in &report.scenarios {
            assert_eq!(sc.steps.len(), 3);
            for st in &sc.steps {
                assert!(st.achieved_rps > 0.0);
                assert_eq!(st.checked, st.lookups);
            }
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve-oracle\""));
        assert!(json.contains("uniform-cold"));
        assert!(json.contains("batch-32"));
        assert!(json.contains("\"all_answers_checked\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
