//! The registry bench behind `BENCH_suite.json`: every `congest_workloads`
//! entry timed under every backend of the wall-clock sweep
//! ([`congest_workloads::configs::bench_matrix`]), with the conformance
//! contract checked on every sample.
//!
//! This is what "register a workload once" buys on the measurement side: a new
//! registry entry automatically appears here — per-workload × per-backend
//! wall-clock plus the exact (machine-independent) message/round counts,
//! asserted **equal across backends** on every repetition. The run **panics**
//! on any divergence, so a red perf-smoke CI job doubles as a conformance
//! tripwire in release mode.
//!
//! Wall-clock numbers are environment-dependent (`host_threads` is recorded
//! for that reason: on a single-core host the thread-fanning samples measure
//! dispatch overhead, while the sharded samples still measure the backend's
//! layout and schedule); counts are exact.

use congest_engine::ExecutorConfig;
use congest_workloads::{configs, registry, BuiltInput, RunOutcome, Workload};
use std::time::Instant;

/// Repetitions and scope for one [`run_suite_bench`] invocation.
#[derive(Clone, Debug)]
pub struct SuiteBenchConfig {
    /// Timed repetitions per (workload, backend) cell; `wall_ms` records the
    /// minimum, damping scheduler noise.
    pub reps: usize,
}

impl SuiteBenchConfig {
    /// CI-sized configuration (single repetition).
    pub fn quick() -> Self {
        Self { reps: 1 }
    }

    /// The full configuration used for committed `BENCH_suite.json` refreshes.
    pub fn full() -> Self {
        Self { reps: 3 }
    }
}

/// One timed execution of one workload under one backend configuration.
#[derive(Clone, Debug)]
pub struct SuiteSample {
    /// Backend label from the bench matrix (`"sequential"`, `"chunked/hw"`,
    /// `"sharded/4"`, …).
    pub backend: String,
    /// Minimum wall-clock over the repetitions, milliseconds.
    pub wall_ms: f64,
}

/// All samples of one registry entry.
#[derive(Clone, Debug)]
pub struct SuiteWorkloadReport {
    /// Registry key (`algorithm/family` — stable key for trajectory tooling).
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Exact message count — asserted identical across all backends.
    pub messages: u64,
    /// Exact round count — asserted identical across all backends.
    pub rounds: u64,
    /// Exact broadcast count — asserted identical across all backends.
    pub broadcasts: u64,
    /// One sample per backend configuration, sequential first.
    pub samples: Vec<SuiteSample>,
}

/// The full registry-bench outcome, serializable to `BENCH_suite.json`.
#[derive(Clone, Debug)]
pub struct SuiteBenchReport {
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// Per-workload samples, in registry order.
    pub workloads: Vec<SuiteWorkloadReport>,
}

/// The timing/conformance core shared by this module and
/// [`crate::shard_bench`]: runs `w` on a **prebuilt** `input` (so graph/weight
/// construction stays out of the timed section) under each labelled config
/// `reps` times, asserting [`RunOutcome`] equality against the first config's
/// outcome — callers put the sequential baseline first. Returns the baseline
/// outcome and the per-config minimum wall-clock, in config order.
///
/// # Panics
///
/// Panics if any repetition's outcome diverges from the baseline — that is
/// the point.
pub fn timed_sweep(
    w: &dyn Workload,
    input: &BuiltInput,
    configs: &[(String, ExecutorConfig)],
    reps: usize,
) -> (RunOutcome, Vec<f64>) {
    let mut baseline: Option<RunOutcome> = None;
    let mut wall = Vec::with_capacity(configs.len());
    for (label, cfg) in configs {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let out = w
                .run_built(input, cfg)
                .unwrap_or_else(|e| panic!("{}: run under {label} failed: {e}", w.name()));
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            match &baseline {
                None => baseline = Some(out),
                Some(base) => {
                    assert_eq!(
                        *base,
                        out,
                        "{}: outcome diverged under {label} — conformance broken",
                        w.name()
                    );
                }
            }
        }
        wall.push(best);
    }
    (baseline.expect("at least one config ran"), wall)
}

/// Times one workload under every backend of the sweep via [`timed_sweep`].
///
/// # Panics
///
/// Panics if any sample's outcome diverges from the sequential baseline.
pub fn sweep_workload(
    w: &dyn Workload,
    backends: &[(String, ExecutorConfig)],
    reps: usize,
) -> SuiteWorkloadReport {
    let input = w.build();
    let (n, m) = (input.graph.n(), input.graph.m());
    let (base, wall) = timed_sweep(w, &input, backends, reps);
    let samples = backends
        .iter()
        .zip(wall)
        .map(|((label, _), wall_ms)| SuiteSample {
            backend: label.clone(),
            wall_ms,
        })
        .collect();
    SuiteWorkloadReport {
        name: w.name(),
        n,
        m,
        messages: base.metrics.messages,
        rounds: base.metrics.rounds,
        broadcasts: base.metrics.broadcasts,
        samples,
    }
}

/// Runs every registry entry under every backend of
/// [`configs::bench_matrix`].
///
/// # Panics
///
/// Panics if any workload's outcome diverges across backends.
pub fn run_suite_bench(cfg: &SuiteBenchConfig) -> SuiteBenchReport {
    let backends = configs::bench_matrix();
    SuiteBenchReport {
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        workloads: registry()
            .iter()
            .map(|w| sweep_workload(w.as_ref(), &backends, cfg.reps))
            .collect(),
    }
}

impl SuiteBenchReport {
    /// Serializes to the `BENCH_suite.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"workload-suite\",\n");
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!(
            "  \"workload_count\": {},\n",
            self.workloads.len()
        ));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"messages\": {},\n", w.messages));
            s.push_str(&format!("      \"rounds\": {},\n", w.rounds));
            s.push_str(&format!("      \"broadcasts\": {},\n", w.broadcasts));
            s.push_str("      \"counts_identical_across_backends\": true,\n");
            s.push_str("      \"samples\": [\n");
            for (si, smp) in w.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"backend\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                    smp.backend,
                    smp.wall_ms,
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_workloads::find;

    #[test]
    fn single_workload_sweep_is_conformant_and_serializes() {
        // One cheap registry entry through the full machinery (the whole
        // registry runs in the perf-smoke job; tests keep it to one entry).
        let w = find("gossip/cycle").expect("registered workload");
        let report = SuiteBenchReport {
            host_threads: 1,
            workloads: vec![sweep_workload(
                w.as_ref(),
                &congest_workloads::configs::bench_matrix(),
                1,
            )],
        };
        let w = &report.workloads[0];
        assert_eq!(w.name, "gossip/cycle");
        assert_eq!(w.samples.len(), 6);
        assert_eq!(w.samples[0].backend, "sequential");
        assert_eq!(w.samples[5].backend, "auto/hw");
        assert!(w.messages > 0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"workload-suite\""));
        assert!(json.contains("gossip/cycle"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
