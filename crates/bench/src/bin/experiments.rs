//! Experiment harness: regenerates every table in EXPERIMENTS.md, and hosts the
//! engine-scaling smoke behind `BENCH_engine.json`.
//!
//! Usage:
//!
//! ```console
//! cargo run --release -p congest-bench --bin experiments [--quick] [--threads N]
//! cargo run --release -p congest-bench --bin experiments -- --bench-engine \
//!     [--quick] [--out BENCH_engine.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-mst \
//!     [--quick] [--out BENCH_mst.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-shard \
//!     [--quick] [--out BENCH_shard.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-suite \
//!     [--quick] [--out BENCH_suite.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-scale \
//!     [--quick] [--out BENCH_scale.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-serve \
//!     [--quick] [--out BENCH_serve.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-faults \
//!     [--quick] [--out BENCH_faults.json]
//! cargo run --release -p congest-bench --bin experiments -- --bench-auto \
//!     [--quick] [--out BENCH_auto.json]
//! ```
//!
//! `--threads N` sets the process-wide executor default (0 = hardware threads):
//! every run constructed with `..Default::default()` inherits it. Tables are
//! identical at every thread count — the engine's parallel executor is
//! deterministic — so the flag only changes wall-clock.
//!
//! `--bench-engine` skips the tables and instead times the round executor at
//! 1/2/4/8 threads (see `congest_bench::engine_bench`), writing the JSON
//! trajectory file (default `BENCH_engine.json`) consumed by the perf-smoke CI
//! job. `--bench-mst` does the same for the MST workload family (see
//! `congest_bench::mst_bench`): oracle-checked GHS runs under a hard `Õ(m)`
//! message budget plus the k-sweep of the trade-off, written to `BENCH_mst.json`.
//! `--bench-shard` sweeps the delivery backends (sequential vs chunked vs
//! 2/4/8-shard; see `congest_bench::shard_bench`) over APSP and MST workloads,
//! asserting exact count equality, written to `BENCH_shard.json`.
//! `--bench-suite` runs the **entire workload registry**
//! (`congest_workloads::registry`) under every backend of the wall-clock sweep
//! (see `congest_bench::suite_bench`), asserting byte-identical outcomes, and
//! writes the per-workload × per-backend trajectory to `BENCH_suite.json`.
//! `--bench-scale` sweeps the message planes (boxed vs flat, sequential and
//! parallel backends; see `congest_bench::scale_bench`) over BFS/gossip/MST on
//! sparse graphs at 10⁵–10⁶ nodes, asserting byte-identical outcomes, written
//! to `BENCH_scale.json`. `--bench-serve` drives a `congest_serve`
//! DistanceOracle with the deterministic closed-loop rps-ramp load generator
//! (uniform/hot-key/k-NN/batch scenario mixes, cold vs warmed cache; see
//! `congest_bench::serve_bench`), differential-checking every served answer,
//! written to `BENCH_serve.json`. `--bench-faults` runs the fault & scenario
//! suite (every `faulty-*`/`skewed-*`/spanner registry entry; see
//! `congest_bench::fault_bench`) under the backend sweep, records and replays
//! a trace per scenario, and writes `BENCH_faults.json`. `--bench-auto` pits
//! the cost-model `Auto` backend against every manual backend on the full
//! registry plus the 10⁵–10⁶-node scale workloads (see
//! `congest_bench::auto_bench`), asserting the per-round decision log is
//! byte-identical across repeats and thread counts, written to
//! `BENCH_auto.json`.

use congest_bench::auto_bench::{run_auto_bench, AutoBenchConfig};
use congest_bench::engine_bench::{run_engine_bench, EngineBenchConfig};
use congest_bench::experiments as ex;
use congest_bench::fault_bench::{run_fault_bench, FaultBenchConfig};
use congest_bench::mst_bench::{run_mst_bench, MstBenchConfig};
use congest_bench::scale_bench::{run_scale_bench, ScaleBenchConfig};
use congest_bench::serve_bench::{run_serve_bench, ServeBenchConfig};
use congest_bench::shard_bench::{run_shard_bench, ShardBenchConfig};
use congest_bench::suite_bench::{run_suite_bench, SuiteBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 20250608;

    if let Some(n) = flag_value(&args, "--threads") {
        let n: usize = n.parse().expect("--threads takes an integer");
        congest_engine::exec::set_default_threads(n);
        eprintln!("executor default: {n} thread(s) (0 = hardware)");
    }

    if args.iter().any(|a| a == "--bench-engine") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_engine.json".into());
        let cfg = if quick {
            EngineBenchConfig::quick(seed)
        } else {
            EngineBenchConfig::full(seed)
        };
        let report = run_engine_bench(&cfg);
        for w in &report.workloads {
            println!(
                "{}: n = {}, m = {}, best speedup {:.2}x over {} samples",
                w.name,
                w.n,
                w.m,
                w.best_speedup(),
                w.samples.len()
            );
            for s in &w.samples {
                println!(
                    "  threads {:>2}: {:>9.3} ms | rounds {} | messages {}",
                    s.threads, s.wall_ms, s.rounds, s.messages
                );
            }
        }
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-shard") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_shard.json".into());
        let cfg = if quick {
            ShardBenchConfig::quick(seed)
        } else {
            ShardBenchConfig::full(seed)
        };
        let report = run_shard_bench(&cfg);
        for w in &report.workloads {
            println!(
                "{}: n = {}, m = {}, messages {}, best sharded speedup {:.2}x",
                w.name,
                w.n,
                w.m,
                w.messages,
                w.best_sharded_speedup()
            );
            for s in &w.samples {
                println!(
                    "  {:>10}/{:<2} (threads {}): {:>9.3} ms",
                    s.backend, s.shards, s.threads, s.wall_ms
                );
            }
        }
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-scale") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_scale.json".into());
        let cfg = if quick {
            ScaleBenchConfig::quick(seed)
        } else {
            ScaleBenchConfig::full(seed)
        };
        let report = run_scale_bench(&cfg);
        for w in &report.workloads {
            println!(
                "{}: n = {}, m = {}, messages {}, payload {} B, flat speedup {:.2}x",
                w.name,
                w.n,
                w.m,
                w.messages,
                w.payload_bytes,
                w.flat_speedup()
            );
            for s in &w.samples {
                println!("  {:<18} {:>10.3} ms", s.config, s.wall_ms);
            }
        }
        println!("all outcomes identical across planes and backends");
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-serve") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
        let cfg = if quick {
            ServeBenchConfig::quick(seed)
        } else {
            ServeBenchConfig::full(seed)
        };
        let report = run_serve_bench(&cfg);
        println!(
            "serve-oracle: n = {}, m = {}, cache {} | source build: {} messages, {} rounds",
            report.n, report.m, report.cache_capacity, report.build_messages, report.build_rounds
        );
        for sc in &report.scenarios {
            println!(
                "{} ({}):",
                sc.scenario,
                if sc.warmed { "warm" } else { "cold" }
            );
            for st in &sc.steps {
                println!(
                    "  target {:>6} rps -> achieved {:>9.1} rps | p50 {:>7.2} us | p95 {:>7.2} us | p99 {:>7.2} us | hit rate {:>5.3} | {} answers checked",
                    st.target_rps, st.achieved_rps, st.p50_us, st.p95_us, st.p99_us, st.hit_rate(), st.checked
                );
            }
        }
        println!("every served answer matched the sequential reference");
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-suite") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_suite.json".into());
        let cfg = if quick {
            SuiteBenchConfig::quick()
        } else {
            SuiteBenchConfig::full()
        };
        let report = run_suite_bench(&cfg);
        for w in &report.workloads {
            let base = w.samples.first().map_or(0.0, |s| s.wall_ms);
            println!(
                "{:<32} n = {:>4}, m = {:>5} | messages {:>8} | rounds {:>6}",
                w.name, w.n, w.m, w.messages, w.rounds
            );
            for s in &w.samples {
                println!(
                    "  {:<12} {:>9.3} ms ({:>5.2}x)",
                    s.backend,
                    s.wall_ms,
                    base / s.wall_ms.max(1e-9)
                );
            }
        }
        println!(
            "{} workloads, all outcomes identical across backends",
            report.workloads.len()
        );
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-faults") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_faults.json".into());
        let cfg = if quick {
            FaultBenchConfig::quick()
        } else {
            FaultBenchConfig::full()
        };
        let report = run_fault_bench(&cfg);
        for sc in &report.scenarios {
            println!(
                "{:<32} n = {:>4}, m = {:>5} | messages {:>8} | rounds {:>5} | dropped {:>6}",
                sc.scenario, sc.n, sc.m, sc.messages, sc.rounds, sc.dropped_messages
            );
            for s in &sc.samples {
                println!("  {:<12} {:>9.3} ms", s.backend, s.wall_ms);
            }
            println!(
                "  trace: {} rounds, {} bytes | record {:.3} ms | replay {:.3} ms",
                sc.trace_rounds, sc.trace_bytes, sc.record_ms, sc.replay_ms
            );
        }
        println!(
            "{} scenarios, all backends conformant, every trace replayed byte-identically",
            report.scenarios.len()
        );
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-auto") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_auto.json".into());
        let cfg = if quick {
            AutoBenchConfig::quick(seed)
        } else {
            AutoBenchConfig::full(seed)
        };
        let report = run_auto_bench(&cfg);
        for w in &report.workloads {
            println!(
                "{:<32} n = {:>7}, m = {:>8} | auto {:>9.3} ms vs best manual {:>9.3} ms ({}) | {:.2}x | {}",
                w.name,
                w.n,
                w.m,
                w.auto_wall_ms,
                w.best_manual_wall_ms,
                w.best_manual,
                w.auto_vs_best,
                if w.within_noise { "within noise" } else { "SLOWER" }
            );
            println!(
                "  decisions: {} rounds (sequential {}, chunked {}, sharded {}), log deterministic across repeats and threads",
                w.decision_rounds,
                w.decisions.sequential,
                w.decisions.chunked,
                w.decisions.sharded
            );
        }
        println!(
            "{} workloads | auto never slower within noise: {}",
            report.workloads.len(),
            report.auto_never_slower_within_noise()
        );
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    if args.iter().any(|a| a == "--bench-mst") {
        let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_mst.json".into());
        let cfg = if quick {
            MstBenchConfig::quick(seed)
        } else {
            MstBenchConfig::full(seed)
        };
        let report = run_mst_bench(&cfg);
        for sz in &report.sizes {
            println!(
                "mst n = {:>3}, m = {:>5}: {:>8} messages (budget {:>8}), {:>5} rounds, {} phases, {:.3} ms",
                sz.n, sz.m, sz.messages, sz.budget, sz.rounds, sz.phases, sz.wall_ms
            );
            for t in &sz.tradeoff {
                println!(
                    "  k {:>3} [{:<18}]: rounds {:>6} | messages {:>8}",
                    t.k, t.route, t.rounds, t.messages
                );
            }
        }
        std::fs::write(&out, report.to_json()).expect("write bench json");
        println!("wrote {out}");
        return;
    }

    println!("# Experiment tables — Message Optimality and Message-Time Trade-offs for APSP");
    println!();
    println!(
        "mode: {} | seed: {seed} | all APSP/matching rows verified against sequential oracles",
        if quick { "quick" } else { "full" }
    );
    println!();
    assert!(ex::equality_smoke(seed), "simulated != direct — abort");

    #[allow(clippy::type_complexity)]
    let (t11_ns, t12_n, sweep_ns, t21_n, l24_n, l37_trials, t14_n, c28, c29_n, l38_n): (
        Vec<usize>,
        usize,
        Vec<usize>,
        usize,
        usize,
        usize,
        usize,
        Vec<usize>,
        usize,
        usize,
    ) = if quick {
        (
            vec![16, 24, 32],
            24,
            vec![16, 24, 32],
            24,
            48,
            10,
            40,
            vec![6, 10],
            20,
            32,
        )
    } else {
        (
            vec![32, 48, 64, 96, 128],
            48,
            vec![32, 48, 64, 96, 128, 160],
            40,
            96,
            40,
            80,
            vec![8, 12, 16, 24],
            28,
            64,
        )
    };

    print!("{}", ex::e_t1_1(&t11_ns, seed).render());
    print!(
        "{}",
        ex::e_t1_2(t12_n, &[0.0, 0.25, 0.5, 0.75, 1.0], seed).render()
    );
    print!("{}", ex::e_t1_2_scaling(&sweep_ns, 1.0, seed).render());
    print!("{}", ex::e_t2_1(t21_n, seed).render());
    print!("{}", ex::e_l2_4(l24_n, seed).render());
    print!("{}", ex::e_t3_3(48, &[0.25, 0.34, 0.5], seed).render());
    print!("{}", ex::e_l3_7(48, l37_trials, seed).render());
    print!("{}", ex::e_l3_8(l38_n, seed).render());
    print!("{}", ex::e_t1_4(t14_n, &[8, 16, 32], seed).render());
    print!("{}", ex::e_c2_8(&c28, seed).render());
    print!("{}", ex::e_c2_9(c29_n, seed).render());
    print!(
        "{}",
        ex::e_ext_weighted_tradeoff(if quick { 16 } else { 24 }, seed).render()
    );
    print!(
        "{}",
        ex::e_abl_delays(if quick { 32 } else { 64 }, seed).render()
    );
    print!(
        "{}",
        ex::e_abl_strict_budget(if quick { 24 } else { 40 }, seed).render()
    );

    println!("done.");
}

/// The value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
