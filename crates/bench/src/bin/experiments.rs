//! Experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p congest-bench --bin experiments [--quick]`

use congest_bench::experiments as ex;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 20250608;

    println!("# Experiment tables — Message Optimality and Message-Time Trade-offs for APSP");
    println!();
    println!(
        "mode: {} | seed: {seed} | all APSP/matching rows verified against sequential oracles",
        if quick { "quick" } else { "full" }
    );
    println!();
    assert!(ex::equality_smoke(seed), "simulated != direct — abort");

    #[allow(clippy::type_complexity)]
    let (t11_ns, t12_n, sweep_ns, t21_n, l24_n, l37_trials, t14_n, c28, c29_n, l38_n): (
        Vec<usize>,
        usize,
        Vec<usize>,
        usize,
        usize,
        usize,
        usize,
        Vec<usize>,
        usize,
        usize,
    ) = if quick {
        (
            vec![16, 24, 32],
            24,
            vec![16, 24, 32],
            24,
            48,
            10,
            40,
            vec![6, 10],
            20,
            32,
        )
    } else {
        (
            vec![32, 48, 64, 96, 128],
            48,
            vec![32, 48, 64, 96, 128, 160],
            40,
            96,
            40,
            80,
            vec![8, 12, 16, 24],
            28,
            64,
        )
    };

    print!("{}", ex::e_t1_1(&t11_ns, seed).render());
    print!(
        "{}",
        ex::e_t1_2(t12_n, &[0.0, 0.25, 0.5, 0.75, 1.0], seed).render()
    );
    print!("{}", ex::e_t1_2_scaling(&sweep_ns, 1.0, seed).render());
    print!("{}", ex::e_t2_1(t21_n, seed).render());
    print!("{}", ex::e_l2_4(l24_n, seed).render());
    print!("{}", ex::e_t3_3(48, &[0.25, 0.34, 0.5], seed).render());
    print!("{}", ex::e_l3_7(48, l37_trials, seed).render());
    print!("{}", ex::e_l3_8(l38_n, seed).render());
    print!("{}", ex::e_t1_4(t14_n, &[8, 16, 32], seed).render());
    print!("{}", ex::e_c2_8(&c28, seed).render());
    print!("{}", ex::e_c2_9(c29_n, seed).render());
    print!(
        "{}",
        ex::e_ext_weighted_tradeoff(if quick { 16 } else { 24 }, seed).render()
    );
    print!(
        "{}",
        ex::e_abl_delays(if quick { 32 } else { 64 }, seed).render()
    );
    print!(
        "{}",
        ex::e_abl_strict_budget(if quick { 24 } else { 40 }, seed).render()
    );

    println!("done.");
}
