//! The backend auto-selection bench behind `BENCH_auto.json`:
//! [`DeliveryBackend::Auto`] vs every manual backend of the wall-clock sweep,
//! on the full workload registry plus the 10⁵–10⁶-node scale workloads.
//!
//! Two claims are measured and asserted per workload:
//!
//! * **never slower than the best manual backend (within noise)** — the auto
//!   sample's wall-clock is compared against the minimum over the manual
//!   samples; `within_noise` applies a multiplicative tolerance plus a small
//!   absolute slack (sub-millisecond cells are all jitter);
//! * **deterministic decision log** — the per-round decision sequence
//!   ([`congest_engine::Metrics::backend_decisions`]) is asserted identical
//!   across a repeat and across thread counts {1, 2, 4, 8} before any timing,
//!   and the distribution (rounds per chosen backend) lands in the report.
//!
//! Conformance rides along for free: every sample runs through
//! [`timed_sweep`], which asserts [`RunOutcome`] equality against the
//! sequential baseline — so an auto run that diverged from the manual
//! backends in outputs or metrics panics the bench.
//!
//! [`DeliveryBackend::Auto`]: congest_engine::DeliveryBackend::Auto
//! [`RunOutcome`]: congest_workloads::RunOutcome

use crate::suite_bench::timed_sweep;
use congest_engine::{AutoCostModel, DeliveryBackend, ExecutorConfig, MessagePlane};
use congest_workloads::{configs, make, registry, BuiltInput, Workload};

/// Sizes and repetitions for one [`run_auto_bench`] invocation.
#[derive(Clone, Debug)]
pub struct AutoBenchConfig {
    /// Master seed (same role as everywhere else in the workspace).
    pub seed: u64,
    /// Timed repetitions per (workload, config) cell; `wall_ms` records the
    /// minimum, damping scheduler noise.
    pub reps: usize,
    /// Nodes of the scale-section BFS workload graph.
    pub bfs_n: usize,
    /// Nodes of the scale-section gossip workload graph.
    pub gossip_n: usize,
    /// Nodes of the scale-section MST workload graph.
    pub mst_n: usize,
}

impl AutoBenchConfig {
    /// CI-sized configuration (small scale graphs, single repetition).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            reps: 1,
            bfs_n: 50_000,
            gossip_n: 50_000,
            mst_n: 20_000,
        }
    }

    /// The full configuration used for committed `BENCH_auto.json` refreshes:
    /// BFS/gossip at 10⁶ nodes, MST at 10⁵, like the scale bench. Five
    /// repetitions rather than the other benches' three: the verdict compares
    /// *cells against each other* (not a trajectory against history), and at
    /// 10⁶ nodes the min-over-reps needs the extra samples before
    /// allocator/run-order noise drops below the within-noise bound.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            reps: 5,
            bfs_n: 1_000_000,
            gossip_n: 1_000_000,
            mst_n: 100_000,
        }
    }
}

/// Multiplicative wall-clock tolerance for `within_noise`: sub-15% deltas on
/// these workload sizes are run-to-run jitter, not a backend difference.
pub const NOISE_TOLERANCE: f64 = 1.15;

/// Absolute slack added on top of [`NOISE_TOLERANCE`], milliseconds.
///
/// Calibrated against the measured noise floor, not guessed: on a 1-thread
/// host the `chunked/hw` and `auto/hw` cells of small registry entries
/// execute the *byte-identical* sequential delivery path (the chunked tier
/// collapses at one effective thread), yet their min-over-reps wall-clock
/// drifts up to ~0.6 ms from the `sequential` cell's purely from cell order,
/// cache pollution by the interleaved sharded cells, and scheduler jitter.
/// Low-millisecond cells are therefore judged by this slack; the
/// multiplicative [`NOISE_TOLERANCE`] is what discriminates at the
/// hundreds-of-milliseconds scale cells where a real backend regression
/// would show.
pub const NOISE_SLACK_MS: f64 = 1.0;

/// One timed execution of one workload under one configuration.
#[derive(Clone, Debug)]
pub struct AutoSample {
    /// Config label (`"sequential"`, `"chunked/hw"`, …, `"auto/hw"`).
    pub config: String,
    /// Minimum wall-clock over the repetitions, milliseconds.
    pub wall_ms: f64,
}

/// Rounds per chosen backend in one auto run's decision log.
#[derive(Clone, Debug, Default)]
pub struct DecisionBreakdown {
    /// Rounds delivered inline.
    pub sequential: u64,
    /// Rounds delivered chunk-parallel.
    pub chunked: u64,
    /// Rounds delivered through sharded mailboxes.
    pub sharded: u64,
}

/// All samples of one workload, with the auto-vs-best-manual verdict.
#[derive(Clone, Debug)]
pub struct AutoWorkloadReport {
    /// Registry key / scale-workload name.
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// The auto sample's wall-clock, milliseconds.
    pub auto_wall_ms: f64,
    /// The fastest manual sample's wall-clock, milliseconds.
    pub best_manual_wall_ms: f64,
    /// The fastest manual sample's label.
    pub best_manual: String,
    /// `best_manual_wall_ms / auto_wall_ms` (≥ 1 means auto won outright).
    pub auto_vs_best: f64,
    /// Whether auto is no slower than the best manual backend within
    /// [`NOISE_TOLERANCE`] and [`NOISE_SLACK_MS`].
    pub within_noise: bool,
    /// Decision-log length of the auto run (delivery rounds resolved).
    pub decision_rounds: u64,
    /// Decision-log distribution of the auto run.
    pub decisions: DecisionBreakdown,
    /// One sample per configuration, manual backends first, auto last.
    pub samples: Vec<AutoSample>,
}

/// The full auto-bench outcome, serializable to `BENCH_auto.json`.
#[derive(Clone, Debug)]
pub struct AutoBenchReport {
    /// Seed the workloads ran with.
    pub seed: u64,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// The calibrated cost model every auto run used.
    pub cost_model: AutoCostModel,
    /// Per-workload samples: the full registry, then the scale workloads.
    pub workloads: Vec<AutoWorkloadReport>,
}

impl AutoBenchReport {
    /// Whether every workload's auto sample was within noise of its best
    /// manual backend — the bench's headline claim.
    pub fn auto_never_slower_within_noise(&self) -> bool {
        self.workloads.iter().all(|w| w.within_noise)
    }
}

/// Asserts the auto decision log is identical across a repeat and across
/// thread counts, and returns its breakdown. Runs before any timing — these
/// runs also warm the executor pools the timed sweep will reuse.
///
/// # Panics
///
/// Panics if the decision log differs between any two of the runs.
fn pin_decision_log(
    w: &dyn Workload,
    input: &BuiltInput,
    plane: MessagePlane,
) -> (u64, DecisionBreakdown) {
    let run_at = |threads: usize| {
        w.run_built(input, &ExecutorConfig::auto(threads).with_plane(plane))
            .unwrap_or_else(|e| panic!("{}: auto run at {threads} threads failed: {e}", w.name()))
            .metrics
    };
    let base = run_at(1);
    let base_log = base.backend_decisions().to_vec();
    let repeat = run_at(1);
    assert_eq!(
        base_log,
        repeat.backend_decisions(),
        "{}: auto decision log differs across repeats",
        w.name()
    );
    for threads in [2usize, 4, 8] {
        let alt = run_at(threads);
        assert_eq!(
            base_log,
            alt.backend_decisions(),
            "{}: auto decision log differs at {threads} threads",
            w.name()
        );
    }
    let mut breakdown = DecisionBreakdown::default();
    for d in &base_log {
        match d.backend {
            DeliveryBackend::Sequential => breakdown.sequential += 1,
            DeliveryBackend::Chunked => breakdown.chunked += 1,
            DeliveryBackend::Sharded { .. } => breakdown.sharded += 1,
            DeliveryBackend::Auto => unreachable!("decisions are concrete backends"),
        }
    }
    (base_log.len() as u64, breakdown)
}

/// Times one workload under `configs` (manual backends first, the auto cell
/// last) after pinning its decision log, and renders the verdict.
fn sweep(
    w: &dyn Workload,
    configs: &[(String, ExecutorConfig)],
    plane: MessagePlane,
    reps: usize,
) -> AutoWorkloadReport {
    let input = w.build();
    let (decision_rounds, decisions) = pin_decision_log(w, &input, plane);
    let (_, wall) = timed_sweep(w, &input, configs, reps);
    let samples: Vec<AutoSample> = configs
        .iter()
        .zip(&wall)
        .map(|((config, _), &wall_ms)| AutoSample {
            config: config.clone(),
            wall_ms,
        })
        .collect();
    let auto = samples.last().expect("auto cell is last").clone();
    let (best_manual, best_manual_wall_ms) = samples[..samples.len() - 1]
        .iter()
        .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
        .map(|s| (s.config.clone(), s.wall_ms))
        .expect("at least one manual cell");
    AutoWorkloadReport {
        name: w.name(),
        n: input.graph.n(),
        m: input.graph.m(),
        auto_wall_ms: auto.wall_ms,
        best_manual_wall_ms,
        best_manual,
        auto_vs_best: best_manual_wall_ms / auto.wall_ms.max(1e-9),
        within_noise: auto.wall_ms <= best_manual_wall_ms * NOISE_TOLERANCE + NOISE_SLACK_MS,
        decision_rounds,
        decisions,
        samples,
    }
}

/// The scale-section sweep: the scale bench's flat-plane configurations plus
/// the auto backend on the flat plane at hardware threads.
fn scale_configs() -> Vec<(String, ExecutorConfig)> {
    vec![
        (
            "sequential/flat".to_string(),
            ExecutorConfig::sequential().with_plane(MessagePlane::Flat),
        ),
        (
            "chunked-hw/flat".to_string(),
            ExecutorConfig::with_threads(0).with_plane(MessagePlane::Flat),
        ),
        (
            "sharded-4/flat".to_string(),
            ExecutorConfig::sharded(4).with_plane(MessagePlane::Flat),
        ),
        (
            "auto-hw/flat".to_string(),
            ExecutorConfig::auto(0).with_plane(MessagePlane::Flat),
        ),
    ]
}

/// Runs the auto bench: every registry entry under the wall-clock sweep
/// ([`configs::bench_matrix`], whose last cell is `auto/hw`), then the three
/// scale workloads under the flat-plane sweep.
///
/// # Panics
///
/// Panics if any sample's outcome diverges from its sequential baseline or
/// any auto decision log differs across repeats/thread counts — that is the
/// point.
pub fn run_auto_bench(cfg: &AutoBenchConfig) -> AutoBenchReport {
    let matrix = configs::bench_matrix();
    assert_eq!(
        matrix.last().map(|(l, _)| l.as_str()),
        Some("auto/hw"),
        "bench matrix keeps the auto cell last"
    );
    let mut workloads: Vec<AutoWorkloadReport> = registry()
        .iter()
        .map(|w| sweep(w.as_ref(), &matrix, MessagePlane::Boxed, cfg.reps))
        .collect();
    let scale: Vec<Box<dyn Workload>> = vec![
        make::bfs_sparse(cfg.bfs_n, cfg.bfs_n / 2, cfg.seed),
        make::gossip_sparse(cfg.gossip_n, cfg.gossip_n / 2, cfg.seed),
        make::mst_sparse(cfg.mst_n, cfg.mst_n / 2, cfg.seed),
    ];
    let scale_cfgs = scale_configs();
    workloads.extend(
        scale
            .iter()
            .map(|w| sweep(w.as_ref(), &scale_cfgs, MessagePlane::Flat, cfg.reps)),
    );
    AutoBenchReport {
        seed: cfg.seed,
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        cost_model: AutoCostModel::calibrated(),
        workloads,
    }
}

impl AutoBenchReport {
    /// Serializes to the `BENCH_auto.json` schema (documented in
    /// `docs/BENCHMARKING.md`). Hand-rolled: the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"backend-auto\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!(
            "  \"cost_model\": {{\"sequential_max_volume\": {}, \"sharded_min_volume\": {}, \"sharded_min_density\": {}, \"hysteresis\": {}, \"nodes_per_shard\": {}, \"max_shards\": {}}},\n",
            self.cost_model.sequential_max_volume,
            self.cost_model.sharded_min_volume,
            self.cost_model.sharded_min_density,
            self.cost_model.hysteresis,
            self.cost_model.nodes_per_shard,
            self.cost_model.max_shards,
        ));
        s.push_str(&format!(
            "  \"noise_tolerance\": {NOISE_TOLERANCE}, \"noise_slack_ms\": {NOISE_SLACK_MS},\n"
        ));
        s.push_str(&format!(
            "  \"auto_never_slower_within_noise\": {},\n",
            self.auto_never_slower_within_noise()
        ));
        s.push_str("  \"decision_log_deterministic\": true,\n");
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"n\": {},\n", w.n));
            s.push_str(&format!("      \"m\": {},\n", w.m));
            s.push_str(&format!("      \"auto_wall_ms\": {:.3},\n", w.auto_wall_ms));
            s.push_str(&format!("      \"best_manual\": \"{}\",\n", w.best_manual));
            s.push_str(&format!(
                "      \"best_manual_wall_ms\": {:.3},\n",
                w.best_manual_wall_ms
            ));
            s.push_str(&format!("      \"auto_vs_best\": {:.3},\n", w.auto_vs_best));
            s.push_str(&format!("      \"within_noise\": {},\n", w.within_noise));
            s.push_str(&format!(
                "      \"decision_rounds\": {},\n",
                w.decision_rounds
            ));
            s.push_str(&format!(
                "      \"decisions\": {{\"sequential\": {}, \"chunked\": {}, \"sharded\": {}}},\n",
                w.decisions.sequential, w.decisions.chunked, w.decisions.sharded,
            ));
            s.push_str("      \"samples\": [\n");
            for (si, smp) in w.samples.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"config\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
                    smp.config,
                    smp.wall_ms,
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_workloads::find;

    #[test]
    fn single_workload_auto_sweep_pins_decisions_and_serializes() {
        let w = find("gossip/cycle").expect("registered workload");
        let report = AutoBenchReport {
            seed: 7,
            host_threads: 1,
            cost_model: AutoCostModel::calibrated(),
            workloads: vec![sweep(
                w.as_ref(),
                &configs::bench_matrix(),
                MessagePlane::Boxed,
                1,
            )],
        };
        let wl = &report.workloads[0];
        assert_eq!(wl.name, "gossip/cycle");
        assert_eq!(wl.samples.last().unwrap().config, "auto/hw");
        assert!(wl.decision_rounds > 0, "auto logged its delivery rounds");
        assert_eq!(
            wl.decisions.sequential + wl.decisions.chunked + wl.decisions.sharded,
            wl.decision_rounds
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"backend-auto\""));
        assert!(json.contains("\"cost_model\""));
        assert!(json.contains("\"auto_vs_best\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn tiny_scale_section_covers_both_planes() {
        let cfg = AutoBenchConfig {
            seed: 7,
            reps: 1,
            bfs_n: 600,
            gossip_n: 600,
            mst_n: 200,
        };
        let scale: Vec<Box<dyn Workload>> = vec![
            make::bfs_sparse(cfg.bfs_n, cfg.bfs_n / 2, cfg.seed),
            make::gossip_sparse(cfg.gossip_n, cfg.gossip_n / 2, cfg.seed),
        ];
        for w in &scale {
            let r = sweep(w.as_ref(), &scale_configs(), MessagePlane::Flat, cfg.reps);
            assert_eq!(r.samples.last().unwrap().config, "auto-hw/flat");
            assert!(r.decision_rounds > 0);
        }
    }
}
