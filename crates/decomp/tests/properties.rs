//! Property-based tests for the decompositions: the validators (Definition 2.3,
//! Theorem 3.3, Corollary 3.5, spanner stretch) must pass for arbitrary graphs,
//! parameters, and seeds.

use congest_decomp::baswana_sen::validate_hierarchy;
use congest_decomp::cover::CoverMsg;
use congest_decomp::ldc::{build_ldc, validate_ldc};
use congest_decomp::mpx::MpxMsg;
use congest_decomp::pruning::{max_proper_subtree, prune};
use congest_decomp::spanner::measured_stretch;
use congest_decomp::Hierarchy;
use congest_engine::WireDecode;
use congest_graph::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ldc_valid_on_arbitrary_graphs(seed in 0u64..300, n in 12usize..48) {
        let g = generators::gnp_connected(n, 0.15, seed);
        let ldc = build_ldc(&g, seed).unwrap();
        let lnn = (n as f64).ln();
        prop_assert!(validate_ldc(&g, &ldc, (8.0 * lnn) as u32, (10.0 * lnn) as usize).is_ok());
    }

    #[test]
    fn hierarchy_valid_for_arbitrary_epsilon(seed in 0u64..300, eps_pct in 20usize..100) {
        let eps = eps_pct as f64 / 100.0;
        let g = generators::gnp_connected(24, 0.18, seed % 11);
        let h = Hierarchy::build(&g, eps, seed);
        prop_assert!(validate_hierarchy(&g, &h).is_ok());
    }

    #[test]
    fn pruning_preserves_validity_and_bounds_subtrees(seed in 0u64..200, eps_pct in 25usize..75) {
        let eps = eps_pct as f64 / 100.0;
        let g = generators::gnp_connected(30, 0.15, seed % 9);
        let h = Hierarchy::build(&g, eps, seed);
        let p = prune(&g, &h);
        prop_assert!(validate_hierarchy(&g, &p).is_ok());
        let threshold = ((g.n() as f64).powf(1.0 - eps)).ceil() as usize;
        prop_assert!(max_proper_subtree(&g, &p) < threshold.max(2));
    }

    #[test]
    fn spanner_stretch_bounded(seed in 0u64..100, eps_pct in 25usize..100) {
        let eps = eps_pct as f64 / 100.0;
        let g = generators::gnp_connected(24, 0.25, seed % 7);
        let h = Hierarchy::build(&g, eps, seed);
        let kappa = (1.0 / eps).ceil() as usize;
        let s = measured_stretch(&g, &h, 6, seed);
        prop_assert!(s <= (2 * kappa - 1) as f64 + 1e-9, "stretch {} kappa {}", s, kappa);
    }

    #[test]
    fn dropout_partitions_nodes(seed in 0u64..200) {
        let g = generators::gnp_connected(26, 0.2, seed % 13);
        let h = Hierarchy::build(&g, 0.5, seed);
        // Every node drops exactly once; L-sets partition V.
        let mut count = vec![0usize; g.n()];
        for lvl in &h.levels {
            for &v in &lvl.l_nodes {
                count[v.index()] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        for (v, &d) in h.dropout.iter().enumerate() {
            prop_assert!(h.levels[d].l_nodes.contains(&congest_graph::NodeId::new(v)));
        }
    }

    #[test]
    fn decomp_message_codecs_roundtrip(center in 0u32..=u32::MAX, qfrac in 0u32..=u32::MAX, dist in 0u32..=u32::MAX, announce in 0u32..2) {
        // Both decomposition message types survive the flat plane's packed
        // encode→decode identically, with word accounting intact.
        codec_roundtrip(CoverMsg { center, qfrac, dist })?;
        codec_roundtrip(if announce == 0 {
            MpxMsg::Claim { center, qfrac, dist }
        } else {
            MpxMsg::Announce { center }
        })?;
    }
}

/// Encode→decode must be the identity, and the decoded value must charge the
/// same number of CONGEST words.
fn codec_roundtrip<T: WireDecode + PartialEq + std::fmt::Debug>(v: T) -> Result<(), TestCaseError> {
    let mut lanes = vec![0u32; T::LANES];
    v.encode(&mut lanes);
    let back = T::decode(&lanes);
    prop_assert_eq!(back.words(), v.words());
    prop_assert_eq!(back, v);
    Ok(())
}
