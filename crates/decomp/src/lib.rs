//! # congest-decomp
//!
//! Graph decompositions for the CONGEST APSP reproduction:
//!
//! * [`mpx`] — the Miller–Peng–Xu low-diameter decomposition (distributed, with
//!   exponential shifts), plus the shared [`Clustering`] type;
//! * [`ldc`] — the paper's Low Diameter and Communication decomposition
//!   (Definition 2.3 / Lemma 2.4), the substrate of the Theorem 2.1 simulation;
//! * [`baswana_sen`] — the `(κ+1)`-level cluster [`Hierarchy`] of §3.1
//!   (Theorem 3.3), substrate of the trade-off simulations;
//! * [`pruning`] — the heavy-subtree pruning of Corollary 3.5;
//! * [`ensemble`] — ensembles of pruned hierarchies (Lemmas 3.7/3.8);
//! * [`spanner`] — the `(2κ−1)`-spanner by-product with a stretch checker;
//! * [`cover`] — `(k, W)`-sparse neighborhood covers (Corollary 2.9's payload).

pub mod baswana_sen;
pub mod cover;
pub mod ensemble;
pub mod ldc;
pub mod mpx;
pub mod pruning;
pub mod spanner;

pub use baswana_sen::{Hierarchy, Level};
pub use ensemble::Ensemble;
pub use ldc::{FEdge, LdcDecomposition};
pub use mpx::Clustering;
