//! The Low Diameter and Communication (LDC) decomposition — Definition 2.3 and
//! Lemma 2.4: an MPX clustering (strong diameter `O(log n)`, depth-`O(log n)` trees)
//! plus the sparse inter-cluster communication edge set `F` with one representative
//! (outgoing) edge per `(node, neighboring cluster)` pair.

use crate::mpx::{self, Clustering};
use congest_engine::{EngineError, Metrics};
use congest_graph::{ClusterId, EdgeId, Graph, NodeId};

/// One directed inter-cluster communication edge: `owner → other`, into `target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FEdge {
    /// The node this edge belongs to (messages of `owner`'s broadcasts use it).
    pub owner: NodeId,
    /// The underlying undirected edge.
    pub edge: EdgeId,
    /// The endpoint inside the target cluster.
    pub other: NodeId,
    /// The neighboring cluster this edge reaches.
    pub target: ClusterId,
}

/// An `(r, d)`-LDC decomposition of a graph (Definition 2.3).
#[derive(Clone, Debug)]
pub struct LdcDecomposition {
    /// The underlying clustering (strong diameter ≤ `r`, spanned by trees).
    pub clustering: Clustering,
    /// The sparse inter-cluster communication edge set `F`, grouped by owner.
    pub f_edges: Vec<Vec<FEdge>>,
    /// Cost of the distributed construction (MPX + one announce exchange).
    pub metrics: Metrics,
}

impl LdcDecomposition {
    /// All F-edges in one flat list.
    pub fn all_f_edges(&self) -> impl Iterator<Item = &FEdge> {
        self.f_edges.iter().flatten()
    }

    /// The maximum F-degree `d` over all nodes (Definition 2.3's second parameter).
    pub fn max_f_degree(&self) -> usize {
        self.f_edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The strong-diameter parameter `r` realized by this decomposition.
    pub fn strong_radius(&self, g: &Graph) -> u32 {
        self.clustering.strong_radius(g)
    }

    /// Whether `e` is a cluster-tree edge.
    pub fn is_tree_edge(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.clustering.parent[u.index()] == Some(v) || self.clustering.parent[v.index()] == Some(u)
    }
}

/// Builds an `(O(log n), O(log n))`-LDC decomposition (Lemma 2.4): runs distributed
/// MPX with `β = 1/2` and derives `F` from the announce exchange.
///
/// # Errors
///
/// Propagates engine errors (round-limit; cannot occur for valid parameters).
pub fn build_ldc(g: &Graph, seed: u64) -> Result<LdcDecomposition, EngineError> {
    build_ldc_with_beta(g, 0.5, seed)
}

/// [`build_ldc`] with an explicit executor for the distributed MPX run (the
/// workload registry's LDC entry routes the full delivery-backend matrix
/// through here). Decomposition and metrics are identical for every backend.
///
/// # Errors
///
/// Propagates engine errors.
pub fn build_ldc_with(
    g: &Graph,
    seed: u64,
    exec: &congest_engine::ExecutorConfig,
) -> Result<LdcDecomposition, EngineError> {
    build_ldc_inner(g, 0.5, seed, exec)
}

/// [`build_ldc`] with an explicit MPX shift parameter.
///
/// # Errors
///
/// Propagates engine errors.
pub fn build_ldc_with_beta(
    g: &Graph,
    beta: f64,
    seed: u64,
) -> Result<LdcDecomposition, EngineError> {
    build_ldc_inner(g, beta, seed, &congest_engine::ExecutorConfig::default())
}

fn build_ldc_inner(
    g: &Graph,
    beta: f64,
    seed: u64,
    exec: &congest_engine::ExecutorConfig,
) -> Result<LdcDecomposition, EngineError> {
    let run = mpx::run_mpx_with(g, beta, seed, exec)?;
    let clustering = run.clustering;
    let mut f_edges: Vec<Vec<FEdge>> = vec![Vec::new(); g.n()];
    for v in g.nodes() {
        let mine = clustering.cluster_of[v.index()];
        // One representative edge per neighboring cluster: the smallest-ID neighbor.
        let mut reps: Vec<(ClusterId, NodeId)> = Vec::new();
        for &(u, _center) in &run.neighbor_centers[v.index()] {
            let cu = clustering.cluster_of[u.index()];
            if cu == mine {
                continue;
            }
            match reps.iter_mut().find(|(c, _)| *c == cu) {
                Some((_, best)) => {
                    if u < *best {
                        *best = u;
                    }
                }
                None => reps.push((cu, u)),
            }
        }
        for (target, other) in reps {
            let edge = g.edge_between(v, other).expect("neighbor edge exists");
            f_edges[v.index()].push(FEdge {
                owner: v,
                edge,
                other,
                target,
            });
        }
    }
    Ok(LdcDecomposition {
        clustering,
        f_edges,
        metrics: run.metrics,
    })
}

/// Validates both LDC properties (Definition 2.3) plus the spanning-tree depth bound
/// of Lemma 2.4; returns a human-readable violation if any.
pub fn validate_ldc(g: &Graph, ldc: &LdcDecomposition, r: u32, d: usize) -> Result<(), String> {
    let radius = ldc.strong_radius(g);
    if radius > r {
        return Err(format!("strong radius {radius} exceeds bound {r}"));
    }
    if ldc.clustering.max_depth() > r {
        return Err(format!(
            "tree depth {} exceeds bound {r}",
            ldc.clustering.max_depth()
        ));
    }
    for v in g.nodes() {
        if ldc.f_edges[v.index()].len() > d {
            return Err(format!(
                "{v:?} has {} F-edges, bound {d}",
                ldc.f_edges[v.index()].len()
            ));
        }
        // Coverage: every neighboring cluster reachable through some F edge of v.
        let mine = ldc.clustering.cluster_of[v.index()];
        let mut want: Vec<ClusterId> = g
            .neighbors(v)
            .iter()
            .map(|&u| ldc.clustering.cluster_of[u.index()])
            .filter(|&c| c != mine)
            .collect();
        want.sort_unstable();
        want.dedup();
        for c in want {
            if !ldc.f_edges[v.index()].iter().any(|f| f.target == c) {
                return Err(format!("{v:?} lacks an F-edge into cluster {c:?}"));
            }
        }
        // F edges really leave v's cluster and land in their target.
        for f in &ldc.f_edges[v.index()] {
            if ldc.clustering.cluster_of[f.other.index()] != f.target || f.target == mine {
                return Err(format!("bad F-edge {f:?} at {v:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    fn log_bound(n: usize, c: u32) -> u32 {
        c * (n.max(2) as f64).ln().ceil() as u32
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnp_connected(60, 0.08, seed);
            let ldc = build_ldc(&g, seed).unwrap();
            // (O(log n), O(log n)) with explicit constants 7 and 8.
            validate_ldc(
                &g,
                &ldc,
                log_bound(g.n(), 7),
                8 * log_bound(g.n(), 1) as usize,
            )
            .unwrap();
        }
    }

    #[test]
    fn valid_on_structured_graphs() {
        for (i, g) in [
            generators::grid(10, 10),
            generators::complete(30),
            generators::caveman(5, 8),
            generators::path(64),
        ]
        .iter()
        .enumerate()
        {
            let ldc = build_ldc(g, i as u64).unwrap();
            validate_ldc(
                g,
                &ldc,
                log_bound(g.n(), 7),
                8 * log_bound(g.n(), 1) as usize,
            )
            .unwrap();
        }
    }

    #[test]
    fn complete_graph_f_degree_is_small() {
        // On K_n all nodes neighbor all clusters; with β=0.5 the cluster count is
        // small, so F-degrees stay ≤ #clusters - 1.
        let g = generators::complete(25);
        let ldc = build_ldc(&g, 3).unwrap();
        assert!(ldc.max_f_degree() < ldc.clustering.len().max(1));
    }

    #[test]
    fn f_edges_are_directed_per_owner() {
        let g = generators::gnp_connected(40, 0.1, 4);
        let ldc = build_ldc(&g, 4).unwrap();
        for v in g.nodes() {
            for f in &ldc.f_edges[v.index()] {
                assert_eq!(f.owner, v);
                assert!(g.has_edge(f.owner, f.other));
            }
        }
    }

    #[test]
    fn construction_cost_is_near_linear() {
        use congest_engine::BcongestAlgorithm as _;
        let g = generators::gnp_connected(80, 0.08, 8);
        let ldc = build_ldc(&g, 8).unwrap();
        assert!(ldc.metrics.messages <= 6 * g.m() as u64);
        let bound = crate::mpx::MpxAlgorithm::new(0.5).round_bound(g.n(), g.m()) as u64;
        assert!(ldc.metrics.rounds <= bound);
    }
}
