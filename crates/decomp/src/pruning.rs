//! Pruning of Baswana–Sen cluster hierarchies (paper §3.1, "Pruning the clusters"):
//! repeatedly split off the deepest proper subtree with `≥ n^{1-ε}` nodes into its
//! own cluster, so that every proper subtree of every cluster tree ends up below
//! `n^{1-ε}` nodes (Corollary 3.5) — the property that caps per-edge congestion in
//! the simulations. Inter-cluster communication edges are then recomputed against
//! the pruned clusterings (`F*`).

use crate::baswana_sen::{Hierarchy, Level};
use crate::ldc::FEdge;
use congest_graph::{ClusterId, Graph, NodeId};

/// Prunes `h` (levels `1..κ`), returning a new hierarchy with the subtree-size
/// guarantee and recomputed `F*` edges. The accounted pruning cost (Corollary 3.6:
/// `O(κ²)` rounds, `O(κ·n)` messages) is added to the metrics.
pub fn prune(g: &Graph, h: &Hierarchy) -> Hierarchy {
    let n = g.n();
    let threshold = ((n.max(2) as f64).powf(1.0 - h.epsilon)).ceil() as usize;
    let mut out = h.clone();

    for li in 1..out.levels.len() {
        prune_level(g, &mut out.levels[li], threshold.max(2));
    }
    // Recompute F* against the pruned previous levels.
    for li in 1..out.levels.len() {
        let (before, rest) = out.levels.split_at_mut(li);
        let prev = &before[li - 1];
        let lvl = &mut rest[0];
        let mut f_edges = Vec::new();
        for &v in &lvl.l_nodes {
            let own = prev.cluster_of[v.index()];
            f_edges.extend(representative_edges_excluding(g, v, prev, own));
        }
        lvl.f_edges = f_edges;
    }
    // Cluster-edge set shrinks to the links that survived pruning.
    let mut cluster_edge = vec![false; g.m()];
    for lvl in &out.levels {
        for v in g.nodes() {
            if let Some(p) = lvl.parent[v.index()] {
                let e = g.edge_between(v, p).expect("tree links are edges");
                cluster_edge[e.index()] = true;
            }
        }
    }
    out.cluster_edge = cluster_edge;

    // Accounted pruning cost (Corollary 3.6).
    let mut cost = congest_engine::Metrics::new(g.m());
    cost.rounds = (out.kappa * out.kappa) as u64 + 4;
    for lvl in &out.levels {
        for v in g.nodes() {
            if let Some(p) = lvl.parent[v.index()] {
                let e = g.edge_between(v, p).expect("tree links are edges");
                cost.add_messages(e, 1);
            }
        }
    }
    out.metrics.merge_sequential(&cost);
    out
}

/// Splits heavy subtrees off every cluster of one level.
fn prune_level(g: &Graph, lvl: &mut Level, threshold: usize) {
    let n = lvl.parent.len();
    // Children lists for the whole level's forest.
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        if let Some(p) = lvl.parent[v] {
            children[p.index()].push(NodeId::new(v));
        }
    }

    let mut new_roots: Vec<NodeId> = Vec::new();
    for ci in 0..lvl.clusters.len() {
        loop {
            // Subtree sizes within this cluster (after any splits so far).
            let root = lvl.clusters[ci].0;
            // Gather current members that are still attached to `root`.
            let mut order = vec![root];
            let mut k = 0;
            while k < order.len() {
                let v = order[k];
                k += 1;
                order.extend(children[v.index()].iter().copied());
            }
            let mut size = vec![0usize; n];
            for &v in order.iter().rev() {
                size[v.index()] = 1 + children[v.index()]
                    .iter()
                    .map(|c| size[c.index()])
                    .sum::<usize>();
            }
            // Deepest proper-subtree root with size ≥ threshold (ties: smallest ID).
            let split = order
                .iter()
                .copied()
                .filter(|&v| v != root && size[v.index()] >= threshold)
                .max_by_key(|&v| (lvl.depth[v.index()], std::cmp::Reverse(v)));
            let Some(u) = split else { break };
            // Detach u into its own cluster.
            let p = lvl.parent[u.index()].expect("proper subtree root has a parent");
            children[p.index()].retain(|&c| c != u);
            lvl.parent[u.index()] = None;
            new_roots.push(u);
        }
    }

    if new_roots.is_empty() {
        return;
    }
    // Rebuild clusters, depths and membership from the (now multi-root) forest.
    rebuild_level_from_forest(g, lvl, &children, new_roots);
}

fn rebuild_level_from_forest(
    _g: &Graph,
    lvl: &mut Level,
    children: &[Vec<NodeId>],
    new_roots: Vec<NodeId>,
) {
    let mut roots: Vec<NodeId> = lvl.clusters.iter().map(|(c, _)| *c).collect();
    roots.extend(new_roots);
    roots.sort_unstable();
    roots.dedup();

    let mut clusters: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(roots.len());
    let mut cluster_of = vec![None; lvl.cluster_of.len()];
    let mut depth = vec![0u32; lvl.depth.len()];
    for &root in &roots {
        let ci = ClusterId::new(clusters.len());
        let mut members = Vec::new();
        let mut stack = vec![(root, 0u32)];
        while let Some((v, d)) = stack.pop() {
            members.push(v);
            cluster_of[v.index()] = Some(ci);
            depth[v.index()] = d;
            for &c in &children[v.index()] {
                stack.push((c, d + 1));
            }
        }
        members.sort_unstable();
        clusters.push((root, members));
    }
    lvl.clusters = clusters;
    lvl.cluster_of = cluster_of;
    lvl.depth = depth;
}

fn representative_edges_excluding(
    g: &Graph,
    v: NodeId,
    level: &Level,
    own: Option<ClusterId>,
) -> Vec<FEdge> {
    let mut reps: Vec<(ClusterId, NodeId)> = Vec::new();
    for &u in g.neighbors(v) {
        let Some(cu) = level.cluster_of[u.index()] else {
            continue;
        };
        if Some(cu) == own {
            continue;
        }
        match reps.iter_mut().find(|(c, _)| *c == cu) {
            Some((_, best)) => {
                if u < *best {
                    *best = u;
                }
            }
            None => reps.push((cu, u)),
        }
    }
    reps.sort_unstable_by_key(|&(c, _)| c);
    reps.into_iter()
        .map(|(target, other)| FEdge {
            owner: v,
            edge: g.edge_between(v, other).expect("neighbor edge"),
            other,
            target,
        })
        .collect()
}

/// The largest proper-subtree size over all cluster trees of all levels — the
/// quantity Corollary 3.5 bounds by `O(n^{1-ε})`.
pub fn max_proper_subtree(g: &Graph, h: &Hierarchy) -> usize {
    let n = g.n();
    let mut worst = 0;
    for lvl in &h.levels {
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = lvl.parent[v] {
                children[p.index()].push(NodeId::new(v));
            }
        }
        for (root, members) in &lvl.clusters {
            if members.len() <= 1 {
                continue;
            }
            let mut size = vec![0usize; n];
            let mut order = vec![*root];
            let mut k = 0;
            while k < order.len() {
                order.extend(children[order[k].index()].iter().copied());
                k += 1;
            }
            for &v in order.iter().rev() {
                size[v.index()] = 1 + children[v.index()]
                    .iter()
                    .map(|c| size[c.index()])
                    .sum::<usize>();
                if v != *root {
                    worst = worst.max(size[v.index()]);
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baswana_sen::validate_hierarchy;
    use congest_graph::generators;

    #[test]
    fn pruned_hierarchy_stays_valid() {
        for &eps in &[0.25, 0.5] {
            for seed in 0..3 {
                let g = generators::gnp_connected(45, 0.12, seed);
                let h = Hierarchy::build(&g, eps, seed);
                let p = prune(&g, &h);
                validate_hierarchy(&g, &p).unwrap();
            }
        }
    }

    #[test]
    fn subtree_bound_holds_after_pruning() {
        let g = generators::gnp_connected(60, 0.08, 7);
        let eps = 0.5;
        let h = Hierarchy::build(&g, eps, 7);
        let p = prune(&g, &h);
        let threshold = ((g.n() as f64).powf(1.0 - eps)).ceil() as usize;
        assert!(
            max_proper_subtree(&g, &p) < threshold.max(2),
            "subtree {} >= threshold {}",
            max_proper_subtree(&g, &p),
            threshold
        );
    }

    #[test]
    fn pruning_on_a_star_heavy_instance() {
        // A star forces one big level-1 cluster around the hub; pruning must split
        // it (threshold √n) while keeping validity.
        let g = generators::star(36);
        let h = Hierarchy::build(&g, 0.5, 3);
        let p = prune(&g, &h);
        validate_hierarchy(&g, &p).unwrap();
        assert!(max_proper_subtree(&g, &p) < 7);
    }

    #[test]
    fn pruning_never_adds_cluster_edges() {
        let g = generators::gnp_connected(40, 0.12, 9);
        let h = Hierarchy::build(&g, 0.34, 9);
        let p = prune(&g, &h);
        for e in 0..g.m() {
            let e = congest_graph::EdgeId::new(e);
            assert!(!p.is_cluster_edge(e) || h.is_cluster_edge(e));
        }
    }

    #[test]
    fn dropout_levels_unchanged() {
        let g = generators::grid(6, 6);
        let h = Hierarchy::build(&g, 0.5, 5);
        let p = prune(&g, &h);
        assert_eq!(h.dropout, p.dropout);
    }
}
