//! The Baswana–Sen cluster hierarchy (paper §3.1): the `(κ+1)`-level clustering that
//! underlies the message-time trade-off simulations.
//!
//! Level 0 is the singleton clustering. To go from level `i` to `i+1`, cluster
//! centers are subsampled with probability `n^{-ε}`; sampled clusters grow by one hop
//! (nodes adjacent to them join, adding a *cluster edge*), and nodes with no sampled
//! neighbor **drop out** into `L_{i+1}`, acquiring one inter-cluster communication
//! edge (`F_{i+1}`) into every neighboring level-`i` cluster. The top level drops
//! everyone. Theorem 3.3's properties (a)–(c) have validators below; the spanner
//! by-product lives in [`crate::spanner`].
//!
//! The builder is sequential with *accounted* distributed cost (Theorem 3.4:
//! `O(κ)`-ish rounds, `O(κ·m)` messages) — the hierarchy is an **input** to the
//! simulations of §3.2, exactly as in the paper, so what matters is that its
//! construction cost is charged; see DESIGN.md §2.

use crate::ldc::FEdge;
use congest_engine::Metrics;
use congest_graph::{rng, ClusterId, EdgeId, Graph, NodeId};
use rand::Rng;

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// Level index `i`.
    pub index: usize,
    /// Per node: its cluster at this level (`None` if the node is not in `V_i`).
    pub cluster_of: Vec<Option<ClusterId>>,
    /// Per cluster: `(center, members)`.
    pub clusters: Vec<(NodeId, Vec<NodeId>)>,
    /// Per node: cluster-tree parent at this level (`None` at centers / non-members).
    pub parent: Vec<Option<NodeId>>,
    /// Per node: tree depth at this level (0 at centers; unspecified for non-members).
    pub depth: Vec<u32>,
    /// The drop-out set `L_i`.
    pub l_nodes: Vec<NodeId>,
    /// Inter-cluster communication edges `F_i` (owners in `L_i`, targets in
    /// `C_{i-1}`).
    pub f_edges: Vec<FEdge>,
}

impl Level {
    /// The members of cluster `c`.
    pub fn members(&self, c: ClusterId) -> &[NodeId] {
        &self.clusters[c.index()].1
    }

    /// The center of cluster `c`.
    pub fn center(&self, c: ClusterId) -> NodeId {
        self.clusters[c.index()].0
    }

    /// F-edges owned by `v` at this level.
    pub fn f_edges_of(&self, v: NodeId) -> impl Iterator<Item = &FEdge> {
        self.f_edges.iter().filter(move |f| f.owner == v)
    }
}

/// A (possibly pruned) Baswana–Sen cluster hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// The trade-off parameter ε.
    pub epsilon: f64,
    /// `κ = ⌈1/ε⌉`.
    pub kappa: usize,
    /// Levels `0..=κ`.
    pub levels: Vec<Level>,
    /// Per node: the level `i` at which it dropped out (`v ∈ L_i`).
    pub dropout: Vec<usize>,
    /// Per edge: whether it is a cluster (tree) edge at any level — the quantity
    /// Lemma 3.7 bounds.
    pub cluster_edge: Vec<bool>,
    /// Accounted construction cost.
    pub metrics: Metrics,
}

impl Hierarchy {
    /// Builds a fresh (unpruned) hierarchy for parameter `epsilon`, seeded.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon <= 1`.
    pub fn build(g: &Graph, epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        let n = g.n();
        let kappa = (1.0 / epsilon).ceil() as usize;
        let p = (n.max(2) as f64).powf(-epsilon);
        let mut r = rng::seeded(rng::derive(seed, 0x6273_0001));

        // Sampling chain S_0 ⊇ S_1 ⊇ … (S_κ = ∅ implicitly).
        let mut sampled: Vec<Vec<bool>> = vec![vec![true; n]];
        for _ in 1..kappa {
            let prev = sampled.last().expect("non-empty");
            let next: Vec<bool> = prev.iter().map(|&b| b && r.random::<f64>() < p).collect();
            sampled.push(next);
        }

        // Level 0: singletons.
        let mut levels = Vec::with_capacity(kappa + 1);
        levels.push(Level {
            index: 0,
            cluster_of: (0..n).map(|v| Some(ClusterId::new(v))).collect(),
            clusters: (0..n)
                .map(|v| (NodeId::new(v), vec![NodeId::new(v)]))
                .collect(),
            parent: vec![None; n],
            depth: vec![0; n],
            l_nodes: Vec::new(),
            f_edges: Vec::new(),
        });

        let mut dropout = vec![usize::MAX; n];
        let mut cluster_edge = vec![false; g.m()];
        let mut metrics = Metrics::new(g.m());

        for i in 0..kappa {
            let prev = &levels[i];
            let next_sampled: &[bool] = if i + 1 < kappa {
                &sampled[i + 1]
            } else {
                &[] // top level: nothing sampled
            };
            let is_sampled_cluster = |c: ClusterId, prev: &Level| {
                let center = prev.center(c);
                !next_sampled.is_empty() && next_sampled[center.index()]
            };

            // Surviving clusters keep their centers.
            let mut new_clusters: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
            let mut new_id_of_old: Vec<Option<usize>> = vec![None; prev.clusters.len()];
            for (ci, (center, _)) in prev.clusters.iter().enumerate() {
                if is_sampled_cluster(ClusterId::new(ci), prev) {
                    new_id_of_old[ci] = Some(new_clusters.len());
                    new_clusters.push((*center, Vec::new()));
                }
            }

            let mut cluster_of = vec![None; n];
            let mut parent = vec![None; n];
            let mut depth = vec![0u32; n];
            let mut l_nodes = Vec::new();
            let mut f_edges = Vec::new();

            for v in g.nodes() {
                let Some(my_old) = prev.cluster_of[v.index()] else {
                    continue; // already dropped out at an earlier level
                };
                if let Some(new_id) = new_id_of_old[my_old.index()] {
                    // My cluster survived: carry membership and tree over.
                    cluster_of[v.index()] = Some(ClusterId::new(new_id));
                    parent[v.index()] = prev.parent[v.index()];
                    depth[v.index()] = prev.depth[v.index()];
                    new_clusters[new_id].1.push(v);
                    continue;
                }
                // My cluster was not sampled: join a neighboring sampled cluster if
                // any (via the smallest-ID such neighbor — the paper says arbitrary).
                let join = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| {
                        prev.cluster_of[u.index()].is_some_and(|cu| is_sampled_cluster(cu, prev))
                    })
                    .min();
                match join {
                    Some(u) => {
                        let cu = prev.cluster_of[u.index()].expect("join target is clustered");
                        let new_id = new_id_of_old[cu.index()].expect("sampled cluster kept");
                        cluster_of[v.index()] = Some(ClusterId::new(new_id));
                        parent[v.index()] = Some(u);
                        depth[v.index()] = prev.depth[u.index()] + 1;
                        new_clusters[new_id].1.push(v);
                        let e = g.edge_between(v, u).expect("neighbor edge");
                        cluster_edge[e.index()] = true;
                    }
                    None => {
                        // Drop out: v ∈ L_{i+1}; one F edge per neighboring
                        // level-i cluster (own cluster excluded — property (c)'s
                        // case (1) covers it).
                        dropout[v.index()] = i + 1;
                        l_nodes.push(v);
                        f_edges.extend(representative_edges(g, v, prev, my_old));
                    }
                }
            }

            // Accounted distributed cost of this level: an intra-cluster flood of the
            // sampled bit (≤ radius i over tree edges) plus one announce exchange
            // over every edge (Theorem 3.4's O(m) per level).
            let mut level_cost = Metrics::new(g.m());
            level_cost.rounds = i as u64 + 3;
            for e in g.edges().map(|(e, _, _)| e) {
                level_cost.add_messages(e, 2);
            }
            metrics.merge_sequential(&level_cost);

            levels.push(Level {
                index: i + 1,
                cluster_of,
                clusters: new_clusters,
                parent,
                depth,
                l_nodes,
                f_edges,
            });
        }

        debug_assert!(
            dropout.iter().all(|&d| d != usize::MAX),
            "everyone drops out"
        );
        Self {
            epsilon,
            kappa,
            levels,
            dropout,
            cluster_edge,
            metrics,
        }
    }

    /// The clusters containing `v`: `(level, cluster)` for levels `0..dropout(v)`.
    pub fn clusters_of(&self, v: NodeId) -> impl Iterator<Item = (usize, ClusterId)> + '_ {
        self.levels
            .iter()
            .filter_map(move |lvl| lvl.cluster_of[v.index()].map(|c| (lvl.index, c)))
    }

    /// All F-edges across levels.
    pub fn all_f_edges(&self) -> impl Iterator<Item = (usize, &FEdge)> {
        self.levels
            .iter()
            .flat_map(|lvl| lvl.f_edges.iter().map(move |f| (lvl.index, f)))
    }

    /// Max F-degree of any node at its drop-out level (Theorem 3.3(b)'s quantity).
    pub fn max_f_degree(&self) -> usize {
        let mut count = vec![0usize; self.dropout.len()];
        for (_, f) in self.all_f_edges() {
            count[f.owner.index()] += 1;
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Whether `e` is a cluster edge (of any level).
    pub fn is_cluster_edge(&self, e: EdgeId) -> bool {
        self.cluster_edge[e.index()]
    }
}

/// One representative edge from `v` into each neighboring cluster of `level`
/// (excluding `own`): the smallest-ID neighbor in each.
fn representative_edges(g: &Graph, v: NodeId, level: &Level, own: ClusterId) -> Vec<FEdge> {
    let mut reps: Vec<(ClusterId, NodeId)> = Vec::new();
    for &u in g.neighbors(v) {
        let Some(cu) = level.cluster_of[u.index()] else {
            continue;
        };
        if cu == own {
            continue;
        }
        match reps.iter_mut().find(|(c, _)| *c == cu) {
            Some((_, best)) => {
                if u < *best {
                    *best = u;
                }
            }
            None => reps.push((cu, u)),
        }
    }
    reps.sort_unstable_by_key(|&(c, _)| c);
    reps.into_iter()
        .map(|(target, other)| FEdge {
            owner: v,
            edge: g.edge_between(v, other).expect("neighbor edge"),
            other,
            target,
        })
        .collect()
}

/// Validates Theorem 3.3's properties; returns a description of the first violation.
///
/// * (a) level-`i` clusters are disjoint, partition `V_i`, and have tree radius ≤ `i`
///   (trees are built from graph edges);
/// * (b′) every F-edge of `L_i` points to a distinct `C_{i-1}` cluster per owner
///   (the `O(n^ε log n)` count is measured by the experiments, not asserted here);
/// * (c) every graph edge `(u,v)` with `dropout(u) ≤ dropout(v)` is covered: either a
///   common cluster at level `dropout(u)-1`, or an F-edge of `u` into `v`'s cluster.
pub fn validate_hierarchy(g: &Graph, h: &Hierarchy) -> Result<(), String> {
    for lvl in &h.levels {
        // Disjoint + consistent membership.
        let mut seen = vec![false; g.n()];
        for (ci, (center, members)) in lvl.clusters.iter().enumerate() {
            if lvl.index == 0 && members.len() != 1 {
                return Err("level 0 must be singletons".into());
            }
            if !members.contains(center) {
                return Err(format!(
                    "center {center:?} outside its cluster at level {}",
                    lvl.index
                ));
            }
            for &v in members {
                if seen[v.index()] {
                    return Err(format!("{v:?} in two clusters at level {}", lvl.index));
                }
                seen[v.index()] = true;
                if lvl.cluster_of[v.index()] != Some(ClusterId::new(ci)) {
                    return Err(format!(
                        "membership mismatch for {v:?} at level {}",
                        lvl.index
                    ));
                }
            }
        }
        // Tree radius ≤ level index; parents are edges and stay in-cluster.
        for v in g.nodes() {
            if lvl.cluster_of[v.index()].is_none() {
                continue;
            }
            if lvl.depth[v.index()] as usize > lvl.index {
                return Err(format!(
                    "depth {} > level {} at {v:?}",
                    lvl.depth[v.index()],
                    lvl.index
                ));
            }
            if let Some(p) = lvl.parent[v.index()] {
                if !g.has_edge(v, p) {
                    return Err(format!("tree link {v:?}->{p:?} is not an edge"));
                }
                if lvl.cluster_of[p.index()] != lvl.cluster_of[v.index()] {
                    return Err(format!("tree link {v:?}->{p:?} leaves the cluster"));
                }
                if lvl.depth[p.index()] + 1 != lvl.depth[v.index()] {
                    return Err(format!("depth mismatch along {v:?}->{p:?}"));
                }
            } else if lvl.depth[v.index()] != 0 {
                return Err(format!(
                    "non-root {v:?} without parent at level {}",
                    lvl.index
                ));
            }
        }
        // F-edges: owners in L_i, distinct targets per owner, targets in C_{i-1}.
        if lvl.index > 0 {
            let prev = &h.levels[lvl.index - 1];
            let mut per_owner: Vec<Vec<ClusterId>> = vec![Vec::new(); g.n()];
            for f in &lvl.f_edges {
                if h.dropout[f.owner.index()] != lvl.index {
                    return Err(format!("F-edge owner {:?} not in L_{}", f.owner, lvl.index));
                }
                if prev.cluster_of[f.other.index()] != Some(f.target) {
                    return Err(format!("F-edge {f:?} misses its target cluster"));
                }
                if per_owner[f.owner.index()].contains(&f.target) {
                    return Err(format!("duplicate F target for {:?}", f.owner));
                }
                per_owner[f.owner.index()].push(f.target);
            }
        }
    }
    // Property (c).
    for (_, u, v) in g.edges() {
        let (a, b) = if h.dropout[u.index()] <= h.dropout[v.index()] {
            (u, v)
        } else {
            (v, u)
        };
        let i = h.dropout[a.index()];
        let prev = &h.levels[i - 1];
        let same_cluster = prev.cluster_of[a.index()].is_some()
            && prev.cluster_of[a.index()] == prev.cluster_of[b.index()];
        let covered = same_cluster
            || h.levels[i]
                .f_edges
                .iter()
                .any(|f| f.owner == a && Some(f.target) == prev.cluster_of[b.index()]);
        if !covered {
            return Err(format!("property (c) violated for edge ({a:?},{b:?})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn valid_on_random_graphs_various_epsilon() {
        for &eps in &[0.25, 0.34, 0.5, 1.0] {
            for seed in 0..3 {
                let g = generators::gnp_connected(40, 0.1, seed);
                let h = Hierarchy::build(&g, eps, seed);
                assert_eq!(h.kappa, (1.0 / eps).ceil() as usize);
                assert_eq!(h.levels.len(), h.kappa + 1);
                validate_hierarchy(&g, &h).unwrap();
            }
        }
    }

    #[test]
    fn epsilon_one_degenerates_to_direct_edges() {
        let g = generators::gnp_connected(20, 0.2, 1);
        let h = Hierarchy::build(&g, 1.0, 1);
        assert_eq!(h.kappa, 1);
        // Everyone drops at level 1 with an F-edge per neighbor.
        assert!(h.dropout.iter().all(|&d| d == 1));
        assert_eq!(h.levels[1].f_edges.len(), 2 * g.m());
        assert!(!h.cluster_edge.iter().any(|&b| b));
    }

    #[test]
    fn epsilon_half_gives_three_levels_of_stars() {
        let g = generators::gnp_connected(50, 0.15, 2);
        let h = Hierarchy::build(&g, 0.5, 2);
        assert_eq!(h.kappa, 2);
        // Level-1 clusters have radius ≤ 1 (stars).
        for v in g.nodes() {
            if h.levels[1].cluster_of[v.index()].is_some() {
                assert!(h.levels[1].depth[v.index()] <= 1);
            }
        }
        validate_hierarchy(&g, &h).unwrap();
    }

    #[test]
    fn everyone_drops_exactly_once() {
        let g = generators::grid(7, 7);
        let h = Hierarchy::build(&g, 0.34, 4);
        let mut seen = vec![false; g.n()];
        for lvl in &h.levels {
            for &v in &lvl.l_nodes {
                assert!(!seen[v.index()], "{v:?} dropped twice");
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let g = generators::gnp_connected(30, 0.15, 3);
        let a = Hierarchy::build(&g, 0.5, 9);
        let b = Hierarchy::build(&g, 0.5, 9);
        assert_eq!(a.dropout, b.dropout);
        assert_eq!(a.cluster_edge, b.cluster_edge);
    }

    #[test]
    fn metrics_scale_with_kappa_m() {
        let g = generators::gnp_connected(40, 0.15, 5);
        let h = Hierarchy::build(&g, 0.25, 5);
        assert_eq!(h.metrics.messages, (h.kappa as u64) * 2 * g.m() as u64);
    }

    #[test]
    fn caveman_respects_structure() {
        let g = generators::caveman(4, 6);
        let h = Hierarchy::build(&g, 0.5, 11);
        validate_hierarchy(&g, &h).unwrap();
    }
}
