//! The `(2κ−1)`-spanner by-product of the Baswana–Sen hierarchy \[5\]: cluster edges
//! plus inter-cluster communication edges form a spanner with `O(κ·n^{1+1/κ})` edges
//! (in expectation) and stretch `2κ−1` on unweighted graphs.

use crate::baswana_sen::Hierarchy;
use congest_graph::{edge_subgraph, reference, rng, EdgeId, Graph};
use rand::seq::SliceRandom;

/// Extracts the spanner edge set (cluster edges ∪ F edges, deduplicated).
pub fn spanner_edges(g: &Graph, h: &Hierarchy) -> Vec<EdgeId> {
    let mut keep = vec![false; g.m()];
    for (e, k) in keep.iter_mut().enumerate() {
        *k = h.cluster_edge[e];
    }
    for (_, f) in h.all_f_edges() {
        keep[f.edge.index()] = true;
    }
    keep.iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(e, _)| EdgeId::new(e))
        .collect()
}

/// The spanner as a standalone graph (same node IDs).
pub fn spanner_graph(g: &Graph, h: &Hierarchy) -> Graph {
    let keep: Vec<bool> = {
        let mut k = vec![false; g.m()];
        for e in spanner_edges(g, h) {
            k[e.index()] = true;
        }
        k
    };
    edge_subgraph(g, |e| keep[e.index()])
}

/// Measures the worst multiplicative stretch of the spanner over `samples` random
/// source nodes (exact per-source BFS comparison). Returns the maximum of
/// `dist_H(u,v) / dist_G(u,v)` observed.
///
/// # Panics
///
/// Panics if the spanner disconnects a connected input (it never should).
pub fn measured_stretch(g: &Graph, h: &Hierarchy, samples: usize, seed: u64) -> f64 {
    let sp = spanner_graph(g, h);
    let mut nodes: Vec<_> = g.nodes().collect();
    let mut r = rng::seeded(rng::derive(seed, 0x57ae));
    nodes.shuffle(&mut r);
    let mut worst: f64 = 1.0;
    for &s in nodes.iter().take(samples.max(1)) {
        let dg = reference::bfs_distances(g, s);
        let dh = reference::bfs_distances(&sp, s);
        for v in g.nodes() {
            match (dg[v.index()], dh[v.index()]) {
                (Some(a), Some(b)) if a > 0 => {
                    worst = worst.max(b as f64 / a as f64);
                }
                (Some(a), None) if a > 0 => {
                    panic!("spanner disconnected {s:?} from {v:?}");
                }
                _ => {}
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn stretch_within_2k_minus_1() {
        for &(eps, kappa) in &[(0.5, 2usize), (0.34, 3), (0.25, 4)] {
            for seed in 0..3 {
                let g = generators::gnp_connected(40, 0.15, seed);
                let h = Hierarchy::build(&g, eps, seed + 50);
                let s = measured_stretch(&g, &h, 10, seed);
                let bound = (2 * kappa - 1) as f64;
                assert!(s <= bound + 1e-9, "stretch {s} > {bound} (eps={eps})");
            }
        }
    }

    #[test]
    fn pruned_spanner_also_stretches() {
        // Pruning recomputes F*, which preserves coverage; the spanner property
        // survives (the pruned hierarchy satisfies the same properties).
        let g = generators::gnp_connected(40, 0.2, 4);
        let h = Hierarchy::build(&g, 0.5, 4);
        let p = crate::pruning::prune(&g, &h);
        let s = measured_stretch(&g, &p, 10, 4);
        assert!(s <= 3.0 + 1e-9, "pruned stretch {s}");
    }

    #[test]
    fn spanner_is_sparser_than_dense_graphs() {
        let g = generators::gnp_connected(60, 0.5, 6); // dense: m ≈ 885
        let h = Hierarchy::build(&g, 0.5, 6);
        let edges = spanner_edges(&g, &h);
        // O(n^{3/2}) ≈ 465 with constant 2 plus log slack; dense graphs shrink a lot.
        let bound = (2.0 * (g.n() as f64).powf(1.5) + 8.0 * g.n() as f64) as usize;
        assert!(edges.len() <= bound, "spanner has {} edges", edges.len());
        assert!(edges.len() < g.m());
    }

    #[test]
    fn epsilon_one_spanner_is_whole_graph() {
        let g = generators::gnp_connected(20, 0.3, 7);
        let h = Hierarchy::build(&g, 1.0, 7);
        assert_eq!(spanner_edges(&g, &h).len(), g.m());
    }
}
