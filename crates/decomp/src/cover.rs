//! `(k, W)`-sparse neighborhood covers (paper Appendix A.2 / Corollary 2.9) as a
//! BCONGEST algorithm: `t = Θ(n^{1/k} log n)` independent MPX decompositions with
//! shift parameter `β = ln(n)/(2kW)`, run in fixed round windows.
//!
//! Each repetition keeps a `W`-ball intact with probability `≥ n^{-1/k}`, so across
//! `t` repetitions every node's `W`-ball is fully inside some cluster w.h.p.; tree
//! depth is `O(kW log n)` and each node belongs to exactly `t = Õ(n^{1/k})` trees —
//! the three properties of a `(k, W)`-sparse cover, up to the polylog factors the
//! paper's `Õ` hides (this substitutes Elkin's construction \[13\]; see DESIGN.md §2).

use congest_engine::{BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode};
use congest_graph::{reference, rng, Graph, NodeId};
use rand::Rng;

/// Claim message of one cover repetition (same shape as MPX's claim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverMsg {
    /// Cluster center of this wave.
    pub center: u32,
    /// Quantized shift fraction (tie-breaking).
    pub qfrac: u32,
    /// Sender's distance from the center.
    pub dist: u32,
}

impl Wire for CoverMsg {}

impl WireEncode for CoverMsg {
    const LANES: usize = 3;
    fn encode(&self, out: &mut [u32]) {
        out[0] = self.center;
        out[1] = self.qfrac;
        out[2] = self.dist;
    }
}

impl WireDecode for CoverMsg {
    fn decode(lanes: &[u32]) -> Self {
        Self {
            center: lanes[0],
            qfrac: lanes[1],
            dist: lanes[2],
        }
    }
}

/// The `(k, W)`-sparse neighborhood cover algorithm.
#[derive(Clone, Copy, Debug)]
pub struct NeighborhoodCover {
    k: usize,
    w: u32,
    beta: f64,
    reps: usize,
    window: usize,
}

impl NeighborhoodCover {
    /// Creates a cover algorithm for an `n`-node graph with parameters `k ≥ 1` and
    /// `w ≥ 1`, using the default repetition count `⌈3·n^{1/k}·ln n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `w == 0`.
    pub fn new(n: usize, k: usize, w: u32) -> Self {
        assert!(k >= 1 && w >= 1, "cover parameters must be positive");
        let nf = n.max(2) as f64;
        let reps = (3.0 * nf.powf(1.0 / k as f64) * nf.ln()).ceil() as usize;
        Self::with_reps(n, k, w, reps)
    }

    /// Like [`NeighborhoodCover::new`] with an explicit repetition count.
    pub fn with_reps(n: usize, k: usize, w: u32, reps: usize) -> Self {
        assert!(k >= 1 && w >= 1, "cover parameters must be positive");
        let nf = n.max(2) as f64;
        let beta = (nf.ln() / (2.0 * k as f64 * w as f64)).clamp(0.05, 2.0);
        let horizon = (3.0 * nf.ln() / beta).ceil() as usize;
        Self {
            k,
            w,
            beta,
            reps: reps.max(1),
            window: 2 * horizon + 6,
        }
    }

    /// The cover radius parameter `W`.
    pub fn w(&self) -> u32 {
        self.w
    }

    /// The sparsity parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of repetitions (= trees per node).
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// The per-repetition round window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Per-node, per-rep start round (within the window) and tie fraction — pure.
    fn rep_params(&self, seed: u64, rep: usize) -> (usize, u32) {
        let mut r = rng::seeded(rng::derive(seed, 0xc0fe_0000 ^ rep as u64));
        let tf = 3.0 * 2f64.ln().max(1.0) / self.beta; // placeholder; replaced below
        let _ = tf;
        let u: f64 = r.random::<f64>().max(f64::MIN_POSITIVE);
        let horizon = (self.window - 6) as f64 / 2.0;
        let delta = (-u.ln() / self.beta).min(horizon);
        let start = horizon - delta;
        (
            start.floor() as usize,
            ((start - start.floor()) * (1u32 << 20) as f64) as u32,
        )
    }
}

/// Membership of one node in one repetition's cluster tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverMembership {
    /// The tree's root (cluster center).
    pub center: NodeId,
    /// Depth of this node in the tree.
    pub dist: u32,
    /// Tree parent (`None` at the root).
    pub parent: Option<NodeId>,
}

/// Per-node output: one membership per repetition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverOutput {
    /// Indexed by repetition.
    pub memberships: Vec<CoverMembership>,
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct CoverState {
    me: NodeId,
    seed: u64,
    /// Current repetition whose scratch is live.
    rep: usize,
    claimed: Option<(u32, u32, u32, Option<NodeId>)>,
    claim_broadcast_round: Option<usize>,
    claim_sent: bool,
    finished: Vec<CoverMembership>,
}

impl CoverState {
    fn finalize_current(&mut self, me: NodeId) {
        let (center, _, dist, parent) = self.claimed.unwrap_or((me.raw(), 0, 0, None));
        self.finished.push(CoverMembership {
            center: NodeId::from(center),
            dist,
            parent,
        });
    }
}

impl NeighborhoodCover {
    fn rep_of(&self, round: usize) -> Option<usize> {
        let rep = round / self.window;
        (rep < self.reps).then_some(rep)
    }

    fn ensure_rep(&self, s: &mut CoverState, round: usize) {
        let Some(target) = self.rep_of(round) else {
            return;
        };
        while s.rep < target {
            s.finalize_current(s.me);
            s.rep += 1;
            s.claimed = None;
            s.claim_broadcast_round = None;
            s.claim_sent = false;
        }
    }
}

impl BcongestAlgorithm for NeighborhoodCover {
    type State = CoverState;
    type Msg = CoverMsg;
    type Output = CoverOutput;

    fn name(&self) -> &'static str {
        "neighborhood-cover"
    }

    fn init(&self, view: &LocalView<'_>) -> CoverState {
        CoverState {
            me: view.node(),
            seed: view.seed(),
            rep: 0,
            claimed: None,
            claim_broadcast_round: None,
            claim_sent: false,
            finished: Vec::with_capacity(self.reps),
        }
    }

    fn broadcast(&self, s: &CoverState, round: usize) -> Option<CoverMsg> {
        let rep = self.rep_of(round)?;
        let base = rep * self.window;
        let (start, qfrac) = self.rep_params(s.seed, rep);
        if s.rep < rep || s.claimed.is_none() {
            // Fresh (or stale-scratch) repetition: self-claim at my start round.
            return (round >= base + start).then_some(CoverMsg {
                center: s.me.raw(),
                qfrac,
                dist: 0,
            });
        }
        match s.claimed {
            Some((center, cq, dist, _))
                if !s.claim_sent && s.claim_broadcast_round == Some(round) =>
            {
                Some(CoverMsg {
                    center,
                    qfrac: cq,
                    dist,
                })
            }
            _ => None,
        }
    }

    fn on_broadcast_sent(&self, s: &mut CoverState, round: usize) {
        self.ensure_rep(s, round);
        if s.claimed.is_none() {
            let (_, qfrac) = self.rep_params(s.seed, s.rep);
            s.claimed = Some((s.me.raw(), qfrac, 0, None));
        }
        s.claim_sent = true;
    }

    fn receive(&self, s: &mut CoverState, round: usize, msgs: &[(NodeId, CoverMsg)]) {
        self.ensure_rep(s, round);
        let Some(rep) = self.rep_of(round) else {
            return;
        };
        if s.claimed.is_some() {
            return;
        }
        let base = rep * self.window;
        let best = msgs
            .iter()
            .map(|&(from, m)| ((round + 1, m.qfrac, m.center), (m.dist, from)))
            .min();
        if let Some(((arr, qfrac, center), (dist, from))) = best {
            let (start, my_qfrac) = self.rep_params(s.seed, rep);
            let self_key = (base + start, my_qfrac, s.me.raw());
            if (arr, qfrac, center) < self_key {
                s.claimed = Some((center, qfrac, dist + 1, Some(from)));
                s.claim_broadcast_round = Some(round + 1);
            }
        }
    }

    fn is_done(&self, s: &CoverState) -> bool {
        s.finished.len() == self.reps
    }

    fn output(&self, s: &CoverState) -> CoverOutput {
        // Finalize any repetitions that never saw another event.
        let mut tmp = s.clone();
        while tmp.finished.len() < self.reps {
            tmp.finalize_current(tmp.me);
            tmp.rep += 1;
            tmp.claimed = None;
        }
        CoverOutput {
            memberships: tmp.finished,
        }
    }

    fn next_activity(&self, s: &CoverState, after: usize) -> Option<usize> {
        let end = self.reps * self.window;
        if after >= end {
            return None;
        }
        let rep = after / self.window;
        let base = rep * self.window;
        // If the live scratch is for this rep and a claim is pending, wake for it.
        if s.rep == rep {
            if s.claimed.is_none() {
                let (start, _) = self.rep_params(s.seed, rep);
                return Some(after.max(base + start));
            }
            if !s.claim_sent {
                if let Some(r) = s.claim_broadcast_round {
                    return Some(after.max(r));
                }
            }
            // Claim done: next event is the next repetition.
            let next_base = base + self.window;
            if next_base >= end {
                return None;
            }
            let (start, _) = self.rep_params(s.seed, rep + 1);
            return Some(next_base + start);
        }
        // Scratch is stale: I will self-claim (or join) in this window.
        let (start, _) = self.rep_params(s.seed, rep);
        Some(after.max(base + start))
    }

    fn round_bound(&self, _n: usize, _m: usize) -> usize {
        self.reps * self.window + 8
    }

    fn output_words(&self, out: &CoverOutput) -> usize {
        out.memberships.len().max(1)
    }
}

/// Validates the three `(k, W)`-cover properties on a run's outputs. Returns
/// `(max tree depth, trees per node)` on success.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn validate_cover(
    g: &Graph,
    cover: &NeighborhoodCover,
    outputs: &[CoverOutput],
) -> Result<(u32, usize), String> {
    let reps = cover.reps();
    let mut max_depth = 0;
    for (v, o) in outputs.iter().enumerate() {
        if o.memberships.len() != reps {
            return Err(format!(
                "node {v} has {} memberships, want {reps}",
                o.memberships.len()
            ));
        }
    }
    // Tree validity per repetition.
    for rep in 0..reps {
        for v in g.nodes() {
            let m = outputs[v.index()].memberships[rep];
            max_depth = max_depth.max(m.dist);
            match m.parent {
                None => {
                    if m.center != v || m.dist != 0 {
                        return Err(format!("root mismatch at {v:?} rep {rep}"));
                    }
                }
                Some(p) => {
                    if !g.has_edge(v, p) {
                        return Err(format!("tree link {v:?}->{p:?} not an edge (rep {rep})"));
                    }
                    let pm = outputs[p.index()].memberships[rep];
                    if pm.center != m.center || pm.dist + 1 != m.dist {
                        return Err(format!("inconsistent tree at {v:?} rep {rep}"));
                    }
                }
            }
        }
    }
    // Coverage: some repetition's cluster contains each node's whole W-ball.
    for v in g.nodes() {
        let ball = reference::bfs_limited(g, v, cover.w());
        let covered = (0..reps).any(|rep| {
            let c = outputs[v.index()].memberships[rep].center;
            g.nodes().all(|u| {
                ball[u.index()].is_none() || outputs[u.index()].memberships[rep].center == c
            })
        });
        if !covered {
            return Err(format!("W-ball of {v:?} is never fully covered"));
        }
    }
    Ok((max_depth, reps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::generators;

    fn run_cover(g: &Graph, cover: &NeighborhoodCover, seed: u64) -> Vec<CoverOutput> {
        let opts = RunOptions {
            seed,
            ..Default::default()
        };
        run_bcongest(cover, g, None, &opts).unwrap().outputs
    }

    #[test]
    fn covers_grid() {
        let g = generators::grid(6, 5);
        let cover = NeighborhoodCover::with_reps(g.n(), 2, 2, 40);
        let outs = run_cover(&g, &cover, 1);
        let (depth, trees) = validate_cover(&g, &cover, &outs).unwrap();
        assert_eq!(trees, 40);
        assert!(depth > 0);
    }

    #[test]
    fn covers_random_graphs() {
        for seed in 0..3 {
            let g = generators::gnp_connected(30, 0.12, seed);
            let cover = NeighborhoodCover::with_reps(g.n(), 2, 2, 40);
            let outs = run_cover(&g, &cover, seed);
            validate_cover(&g, &cover, &outs).unwrap();
        }
    }

    #[test]
    fn default_rep_count_formula() {
        let cover = NeighborhoodCover::new(100, 2, 3);
        // 3 · √100 · ln(100) ≈ 138.
        assert!((130..150).contains(&cover.reps()));
    }

    #[test]
    fn w1_cover_on_star_contains_hub_ball() {
        let g = generators::star(12);
        let cover = NeighborhoodCover::with_reps(g.n(), 2, 1, 30);
        let outs = run_cover(&g, &cover, 5);
        validate_cover(&g, &cover, &outs).unwrap();
    }

    #[test]
    fn broadcast_complexity_linear_per_rep() {
        let g = generators::gnp_connected(25, 0.15, 9);
        let cover = NeighborhoodCover::with_reps(g.n(), 2, 2, 20);
        let opts = RunOptions {
            seed: 9,
            ..Default::default()
        };
        let run = run_bcongest(&cover, &g, None, &opts).unwrap();
        // ≤ one claim broadcast per node per rep.
        assert!(run.metrics.broadcasts <= (g.n() * 20) as u64);
    }
}
