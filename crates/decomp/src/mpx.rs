//! The Miller–Peng–Xu (MPX) low-diameter decomposition \[28\], as a real BCONGEST
//! algorithm with exponential random shifts.
//!
//! Every node `u` draws a shift `δ_u ~ Exp(β)` (truncated at `T = 3·ln(n)/β`) and
//! starts a claim wave at round `⌊T − δ_u⌋`; a node is claimed by the wave with the
//! smallest `(arrival round, shift fraction, center ID)` key, which realizes
//! `cluster(v) = argmin_u (d(u,v) − δ_u)` with consistent tie-breaking. Clusters are
//! BFS regions, hence have *strong* diameter `O(log n / β)` w.h.p. and come with
//! spanning trees of the same depth.
//!
//! After the claim window every node announces its cluster to its neighbors, which
//! is exactly the information the LDC decomposition (§2.1) needs to build `F`.

use congest_engine::{BcongestAlgorithm, LocalView, Wire, WireDecode, WireEncode};
use congest_graph::{rng, ClusterId, Graph, NodeId};
use rand::Rng;

/// Messages of the MPX algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpxMsg {
    /// A cluster claim wave: center, the center's quantized shift fraction (for
    /// tie-breaking), and the sender's distance from the center.
    Claim {
        /// The cluster center.
        center: u32,
        /// Quantized fractional part of the center's start time.
        qfrac: u32,
        /// Sender's hop distance from the center.
        dist: u32,
    },
    /// Post-claiming announcement of the final cluster center.
    Announce {
        /// The sender's cluster center.
        center: u32,
    },
}

impl Wire for MpxMsg {}

impl WireEncode for MpxMsg {
    // Lane 0 is the variant tag; Claim fills lanes 1–3, Announce lane 1.
    const LANES: usize = 4;
    fn encode(&self, out: &mut [u32]) {
        out.fill(0);
        match *self {
            MpxMsg::Claim {
                center,
                qfrac,
                dist,
            } => {
                out[0] = 0;
                out[1] = center;
                out[2] = qfrac;
                out[3] = dist;
            }
            MpxMsg::Announce { center } => {
                out[0] = 1;
                out[1] = center;
            }
        }
    }
}

impl WireDecode for MpxMsg {
    fn decode(lanes: &[u32]) -> Self {
        match lanes[0] {
            0 => MpxMsg::Claim {
                center: lanes[1],
                qfrac: lanes[2],
                dist: lanes[3],
            },
            1 => MpxMsg::Announce { center: lanes[1] },
            tag => unreachable!("invalid MpxMsg tag {tag}"),
        }
    }
}

/// The MPX decomposition algorithm with shift parameter `beta`.
///
/// Smaller `beta` ⇒ larger clusters (radius `O(log n / β)`) and fewer inter-cluster
/// edges. `beta = 0.5` gives the `(O(log n), O(log n))` regime Lemma 2.4 needs.
#[derive(Clone, Copy, Debug)]
pub struct MpxAlgorithm {
    beta: f64,
}

impl MpxAlgorithm {
    /// Creates the algorithm with shift parameter `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta <= 4`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 4.0, "beta must be in (0, 4]");
        Self { beta }
    }

    /// The shift truncation horizon `T = 3·ln(n)/β` (all start times fall in `[0,T]`).
    pub fn horizon(&self, n: usize) -> f64 {
        3.0 * (n.max(2) as f64).ln() / self.beta
    }

    fn horizon_rounds(&self, n: usize) -> usize {
        self.horizon(n).ceil() as usize
    }

    /// The fixed round in which every node announces its final cluster.
    pub fn announce_round(&self, n: usize) -> usize {
        2 * self.horizon_rounds(n) + 6
    }
}

/// Per-node output of MPX.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpxOutput {
    /// Final cluster center.
    pub center: NodeId,
    /// Hop distance to the center along the cluster tree.
    pub dist: u32,
    /// Cluster-tree parent (`None` at centers).
    pub parent: Option<NodeId>,
    /// `(neighbor, neighbor's center)` for every neighbor (from the announce round).
    pub neighbor_centers: Vec<(NodeId, NodeId)>,
}

/// Per-node state.
#[derive(Clone, Debug)]
pub struct MpxState {
    me: NodeId,
    /// My own start round and quantized fraction.
    start_round: usize,
    my_qfrac: u32,
    /// Claim: (center, qfrac, dist, parent).
    claimed: Option<(u32, u32, u32, Option<NodeId>)>,
    claim_broadcast_round: Option<usize>,
    claim_sent: bool,
    announced: bool,
    announce_round: usize,
    neighbor_centers: Vec<(NodeId, NodeId)>,
}

impl BcongestAlgorithm for MpxAlgorithm {
    type State = MpxState;
    type Msg = MpxMsg;
    type Output = MpxOutput;

    fn name(&self) -> &'static str {
        "mpx-decomposition"
    }

    fn init(&self, view: &LocalView<'_>) -> MpxState {
        let n = view.n();
        let tf = self.horizon(n);
        let mut r = rng::seeded(rng::derive(view.seed(), 0x6d70_7801));
        // δ ~ Exp(β), truncated at the horizon.
        let u: f64 = r.random::<f64>().max(f64::MIN_POSITIVE);
        let delta = (-u.ln() / self.beta).min(tf);
        let start = tf - delta;
        let start_round = start.floor() as usize;
        let frac = start - start.floor();
        MpxState {
            me: view.node(),
            start_round,
            my_qfrac: (frac * (1u32 << 20) as f64) as u32,
            claimed: None,
            claim_broadcast_round: None,
            claim_sent: false,
            announced: false,
            announce_round: self.announce_round(n),
            neighbor_centers: Vec::new(),
        }
    }

    fn broadcast(&self, s: &MpxState, round: usize) -> Option<MpxMsg> {
        if round == s.announce_round {
            let (center, _, _, _) = s.claimed.expect("all nodes claim by the horizon");
            return (!s.announced).then_some(MpxMsg::Announce { center });
        }
        if round >= s.announce_round {
            return None;
        }
        match s.claimed {
            None if round >= s.start_round => Some(MpxMsg::Claim {
                center: s.me.raw(),
                qfrac: s.my_qfrac,
                dist: 0,
            }),
            Some((center, qfrac, dist, _))
                if !s.claim_sent && s.claim_broadcast_round == Some(round) =>
            {
                Some(MpxMsg::Claim {
                    center,
                    qfrac,
                    dist,
                })
            }
            _ => None,
        }
    }

    fn on_broadcast_sent(&self, s: &mut MpxState, round: usize) {
        if round == s.announce_round {
            s.announced = true;
            return;
        }
        if s.claimed.is_none() {
            // Self-claim: I am a cluster center.
            s.claimed = Some((s.me.raw(), s.my_qfrac, 0, None));
        }
        s.claim_sent = true;
    }

    fn receive(&self, s: &mut MpxState, round: usize, msgs: &[(NodeId, MpxMsg)]) {
        if round >= s.announce_round {
            for (from, m) in msgs {
                if let MpxMsg::Announce { center } = m {
                    s.neighbor_centers.push((*from, NodeId::from(*center)));
                }
            }
            return;
        }
        if s.claimed.is_some() {
            return; // earlier waves always have smaller keys
        }
        // Key of an arriving claim: (this round, qfrac, center). My own future
        // self-claim has key (start_round, my_qfrac, me); I only join a wave whose
        // key beats it.
        let best = msgs
            .iter()
            .filter_map(|(from, m)| match m {
                MpxMsg::Claim {
                    center,
                    qfrac,
                    dist,
                } => Some(((round + 1, *qfrac, *center), (*dist, *from))),
                _ => None,
            })
            .min();
        if let Some(((arr, qfrac, center), (dist, from))) = best {
            let self_key = (s.start_round, s.my_qfrac, s.me.raw());
            if (arr, qfrac, center) < self_key {
                s.claimed = Some((center, qfrac, dist + 1, Some(from)));
                s.claim_broadcast_round = Some(round + 1);
            }
        }
    }

    fn is_done(&self, s: &MpxState) -> bool {
        s.announced
    }

    fn output(&self, s: &MpxState) -> MpxOutput {
        let (center, _, dist, parent) = s.claimed.expect("all nodes claim by the horizon");
        let mut neighbor_centers = s.neighbor_centers.clone();
        neighbor_centers.sort_unstable();
        MpxOutput {
            center: NodeId::from(center),
            dist,
            parent,
            neighbor_centers,
        }
    }

    fn next_activity(&self, s: &MpxState, after: usize) -> Option<usize> {
        if s.announced {
            return None;
        }
        if s.claimed.is_none() {
            return Some(after.max(s.start_round));
        }
        if !s.claim_sent {
            if let Some(r) = s.claim_broadcast_round {
                if r < s.announce_round {
                    return Some(after.max(r));
                }
            }
        }
        Some(after.max(s.announce_round))
    }

    fn round_bound(&self, n: usize, _m: usize) -> usize {
        self.announce_round(n) + 8
    }

    fn output_words(&self, out: &MpxOutput) -> usize {
        1 + out.neighbor_centers.len()
    }
}

/// A clustering of the graph: a partition into clusters, each spanned by a rooted
/// tree (the common output shape of MPX and of each Baswana–Sen level).
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Per node: its cluster.
    pub cluster_of: Vec<ClusterId>,
    /// Per node: its cluster-tree parent (`None` at centers).
    pub parent: Vec<Option<NodeId>>,
    /// Per node: hop distance to its cluster center along the tree.
    pub depth: Vec<u32>,
    /// Per cluster: `(center, members)`.
    pub clusters: Vec<(NodeId, Vec<NodeId>)>,
}

impl Clustering {
    /// Builds a clustering from per-node `(center, parent, depth)` triples.
    pub fn from_assignment(centers: &[NodeId], parents: &[Option<NodeId>], depths: &[u32]) -> Self {
        let n = centers.len();
        let mut uniq: Vec<NodeId> = centers.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let cluster_index = |c: NodeId| uniq.binary_search(&c).expect("center exists");
        let mut clusters: Vec<(NodeId, Vec<NodeId>)> =
            uniq.iter().map(|&c| (c, Vec::new())).collect();
        let mut cluster_of = Vec::with_capacity(n);
        for (v, &center) in centers.iter().enumerate() {
            let ci = cluster_index(center);
            cluster_of.push(ClusterId::new(ci));
            clusters[ci].1.push(NodeId::new(v));
        }
        Self {
            cluster_of,
            parent: parents.to_vec(),
            depth: depths.to_vec(),
            clusters: clusters.clone(),
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (empty graph).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Maximum tree depth over all clusters.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The forest of all cluster trees.
    ///
    /// # Errors
    ///
    /// Propagates forest validation errors (impossible for a valid clustering).
    pub fn forest(&self, g: &Graph) -> Result<congest_engine::Forest, congest_engine::EngineError> {
        congest_engine::Forest::from_parents(g, self.parent.clone())
    }

    /// Checks the strong-diameter property: within each cluster's induced subgraph,
    /// every member is reachable from the center within `bound` hops. Returns the
    /// maximum strong radius observed.
    pub fn strong_radius(&self, g: &Graph) -> u32 {
        let mut worst = 0;
        for (center, members) in &self.clusters {
            let mut in_set = vec![false; g.n()];
            for &v in members {
                in_set[v.index()] = true;
            }
            let sub = congest_graph::induced_subgraph_same_ids(g, &in_set);
            let dist = congest_graph::reference::bfs_distances(&sub, *center);
            for &v in members {
                worst = worst.max(dist[v.index()].expect("clusters are connected"));
            }
        }
        worst
    }

    /// The number of distinct *other* clusters adjacent to `v`.
    pub fn neighboring_clusters(&self, g: &Graph, v: NodeId) -> usize {
        let mine = self.cluster_of[v.index()];
        let mut seen: Vec<ClusterId> = g
            .neighbors(v)
            .iter()
            .map(|&u| self.cluster_of[u.index()])
            .filter(|&c| c != mine)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Result of running MPX: the clustering plus the per-node neighbor-center lists and
/// the realized execution cost.
#[derive(Clone, Debug)]
pub struct MpxRun {
    /// The clustering.
    pub clustering: Clustering,
    /// `(neighbor, neighbor's center)` lists, per node.
    pub neighbor_centers: Vec<Vec<(NodeId, NodeId)>>,
    /// Execution cost of the distributed construction.
    pub metrics: congest_engine::Metrics,
}

/// Runs the distributed MPX decomposition on `g`.
///
/// # Errors
///
/// Propagates engine errors (round-limit; cannot occur for valid parameters).
pub fn run_mpx(g: &Graph, beta: f64, seed: u64) -> Result<MpxRun, congest_engine::EngineError> {
    run_mpx_with(g, beta, seed, &congest_engine::ExecutorConfig::default())
}

/// [`run_mpx`] with an explicit executor: the underlying BCONGEST run honors
/// `exec`, and — like every runner in the workspace — produces identical
/// clusterings and [`congest_engine::Metrics`] under every backend and thread
/// count.
///
/// # Errors
///
/// Propagates engine errors (round-limit; cannot occur for valid parameters).
pub fn run_mpx_with(
    g: &Graph,
    beta: f64,
    seed: u64,
    exec: &congest_engine::ExecutorConfig,
) -> Result<MpxRun, congest_engine::EngineError> {
    let algo = MpxAlgorithm::new(beta);
    let opts = congest_engine::RunOptions {
        seed,
        exec: exec.clone(),
        ..Default::default()
    };
    let run = congest_engine::run_bcongest(&algo, g, None, &opts)?;
    let centers: Vec<NodeId> = run.outputs.iter().map(|o| o.center).collect();
    let parents: Vec<Option<NodeId>> = run.outputs.iter().map(|o| o.parent).collect();
    let depths: Vec<u32> = run.outputs.iter().map(|o| o.dist).collect();
    let clustering = Clustering::from_assignment(&centers, &parents, &depths);
    Ok(MpxRun {
        clustering,
        neighbor_centers: run
            .outputs
            .into_iter()
            .map(|o| o.neighbor_centers)
            .collect(),
        metrics: run.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn partitions_and_trees_are_valid() {
        for seed in 0..5 {
            let g = generators::gnp_connected(50, 0.08, seed);
            let run = run_mpx(&g, 0.5, seed).unwrap();
            let c = &run.clustering;
            // Partition: every node in exactly one cluster.
            let total: usize = c.clusters.iter().map(|(_, m)| m.len()).sum();
            assert_eq!(total, g.n());
            // Trees are valid (parents are edges, no cycles) and stay in-cluster.
            let forest = c.forest(&g).unwrap();
            for v in g.nodes() {
                assert_eq!(
                    c.cluster_of[forest.root_of(v).index()],
                    c.cluster_of[v.index()]
                );
            }
        }
    }

    #[test]
    fn strong_radius_is_logarithmic() {
        let g = generators::gnp_connected(80, 0.06, 3);
        let run = run_mpx(&g, 0.5, 7).unwrap();
        let r = run.clustering.strong_radius(&g);
        // Radius ≤ horizon = 3 ln n / β ≈ 26; and tree depth matches.
        let bound = MpxAlgorithm::new(0.5).horizon(g.n()).ceil() as u32 + 1;
        assert!(r <= bound, "strong radius {r} > {bound}");
        assert!(run.clustering.max_depth() <= bound);
    }

    #[test]
    fn depth_agrees_with_tree() {
        let g = generators::grid(8, 8);
        let run = run_mpx(&g, 0.5, 1).unwrap();
        let forest = run.clustering.forest(&g).unwrap();
        for v in g.nodes() {
            assert_eq!(forest.depth_of(v), run.clustering.depth[v.index()]);
        }
    }

    #[test]
    fn neighbor_centers_complete() {
        let g = generators::gnp_connected(30, 0.15, 2);
        let run = run_mpx(&g, 0.5, 2).unwrap();
        for v in g.nodes() {
            assert_eq!(run.neighbor_centers[v.index()].len(), g.degree(v));
            for &(u, cu) in &run.neighbor_centers[v.index()] {
                let (uc, _) =
                    &run.clustering.clusters[run.clustering.cluster_of[u.index()].index()];
                assert_eq!(*uc, cu);
            }
        }
    }

    #[test]
    fn messages_linear_in_m() {
        let g = generators::gnp_connected(60, 0.1, 5);
        let run = run_mpx(&g, 0.5, 5).unwrap();
        // Each node broadcasts at most twice (claim + announce): messages ≤ 4m + slack.
        assert!(run.metrics.messages <= 4 * g.m() as u64 + 2 * g.n() as u64);
        assert!(run.metrics.broadcasts <= 2 * g.n() as u64);
    }

    #[test]
    fn rounds_logarithmic() {
        let g = generators::gnp_connected(100, 0.05, 6);
        let run = run_mpx(&g, 0.5, 6).unwrap();
        let bound = MpxAlgorithm::new(0.5).round_bound(g.n(), g.m()) as u64;
        assert!(run.metrics.rounds <= bound);
    }

    #[test]
    fn beta_controls_cluster_count() {
        let g = generators::gnp_connected(80, 0.08, 9);
        let coarse = run_mpx(&g, 0.2, 9).unwrap();
        let fine = run_mpx(&g, 2.0, 9).unwrap();
        assert!(coarse.clustering.len() <= fine.clustering.len());
    }
}
