//! Ensembles of independently-constructed pruned Baswana–Sen hierarchies — the
//! congestion-smoothing device of Lemma 3.8: `ζ = ⌈n^ε⌉` hierarchies, with the `ℓ`
//! components of an ℓ-decomposable algorithm split into `ζ` equal batches, one per
//! hierarchy. Lemma 3.7 (an edge is a cluster edge with probability `O(κ·n^{-ε})`)
//! is what makes the smoothing work; [`cluster_edge_frequency`] measures it.

use crate::baswana_sen::Hierarchy;
use crate::pruning::prune;
use congest_engine::Metrics;
use congest_graph::{rng, Graph};

/// An ensemble of independently seeded pruned hierarchies.
#[derive(Clone, Debug)]
pub struct Ensemble {
    /// The hierarchies.
    pub hierarchies: Vec<Hierarchy>,
    /// Total accounted construction cost.
    pub metrics: Metrics,
}

impl Ensemble {
    /// Builds `zeta` independent pruned hierarchies with parameter `epsilon`.
    pub fn build(g: &Graph, epsilon: f64, zeta: usize, seed: u64) -> Self {
        let mut metrics = Metrics::new(g.m());
        let hierarchies: Vec<Hierarchy> = (0..zeta.max(1))
            .map(|k| {
                let h = Hierarchy::build(g, epsilon, rng::derive(seed, 0xe5e0 + k as u64));
                let p = prune(g, &h);
                metrics.merge_sequential(&p.metrics);
                p
            })
            .collect();
        Self {
            hierarchies,
            metrics,
        }
    }

    /// The paper's choice `ζ = ⌈n^ε⌉`.
    pub fn paper_zeta(n: usize, epsilon: f64) -> usize {
        (n.max(2) as f64).powf(epsilon).ceil() as usize
    }

    /// Number of hierarchies.
    pub fn len(&self) -> usize {
        self.hierarchies.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.hierarchies.is_empty()
    }

    /// Assigns `l` components to hierarchies in equal contiguous batches
    /// (Lemma 3.8's partition): component `j` uses hierarchy `assignment[j]`.
    pub fn batch_assignment(&self, l: usize) -> Vec<usize> {
        let z = self.len();
        (0..l).map(|j| j * z / l.max(1)).collect()
    }

    /// In how many hierarchies each edge is a cluster edge (Lemma 3.7's measured
    /// counterpart: expectation `O(κ·n^{-ε}·ζ)` per edge).
    pub fn cluster_edge_counts(&self, g: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; g.m()];
        for h in &self.hierarchies {
            for (e, c) in counts.iter_mut().enumerate() {
                if h.cluster_edge[e] {
                    *c += 1;
                }
            }
        }
        counts
    }
}

/// Empirical per-edge cluster-edge frequency over `trials` fresh hierarchies (for
/// the Lemma 3.7 experiment): returns the average over edges and the max over edges.
pub fn cluster_edge_frequency(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> (f64, f64) {
    let mut counts = vec![0usize; g.m()];
    for t in 0..trials {
        let h = Hierarchy::build(g, epsilon, rng::derive(seed, 0x1e37 + t as u64));
        for (e, c) in counts.iter_mut().enumerate() {
            if h.cluster_edge[e] {
                *c += 1;
            }
        }
    }
    if g.m() == 0 || trials == 0 {
        return (0.0, 0.0);
    }
    let avg = counts.iter().sum::<usize>() as f64 / (g.m() * trials) as f64;
    let max = counts.iter().copied().max().unwrap_or(0) as f64 / trials as f64;
    (avg, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn builds_independent_hierarchies() {
        let g = generators::gnp_connected(40, 0.12, 1);
        let ens = Ensemble::build(&g, 0.5, 4, 1);
        assert_eq!(ens.len(), 4);
        // Independence: at least two hierarchies differ in cluster edges (w.h.p.).
        let distinct = ens
            .hierarchies
            .windows(2)
            .any(|w| w[0].cluster_edge != w[1].cluster_edge);
        assert!(distinct);
    }

    #[test]
    fn paper_zeta_matches_formula() {
        assert_eq!(Ensemble::paper_zeta(100, 0.5), 10);
        assert_eq!(Ensemble::paper_zeta(100, 1.0), 100);
    }

    #[test]
    fn batch_assignment_is_balanced() {
        let g = generators::path(10);
        let ens = Ensemble::build(&g, 0.5, 3, 2);
        let a = ens.batch_assignment(9);
        assert_eq!(a.len(), 9);
        for k in 0..3 {
            assert_eq!(a.iter().filter(|&&x| x == k).count(), 3);
        }
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cluster_edge_probability_small() {
        // Lemma 3.7: P[cluster edge] = O(κ n^{-ε}); with n = 49, ε = 0.5, κ = 2 the
        // bound is ~2/7 ≈ 0.29 (up to constants). Check the average is well below 1.
        let g = generators::gnp_connected(49, 0.15, 5);
        let (avg, _max) = cluster_edge_frequency(&g, 0.5, 20, 5);
        let kappa = 2.0;
        let bound = 3.0 * kappa * (49f64).powf(-0.5);
        assert!(avg <= bound, "avg frequency {avg} > {bound}");
    }

    #[test]
    fn counts_match_frequency() {
        let g = generators::gnp_connected(30, 0.2, 7);
        let ens = Ensemble::build(&g, 0.5, 5, 7);
        let counts = ens.cluster_edge_counts(&g);
        assert_eq!(counts.len(), g.m());
        assert!(counts.iter().all(|&c| c <= 5));
    }
}
