//! **Theorem 1.2** — the message-time trade-off for unweighted APSP: for any
//! `ε ∈ [0, 1]`, `Õ(n^{2-ε})` rounds and `Õ(n^{2+ε})` messages, by dispatching to
//! the right machinery per regime (paper §3.3):
//!
//! * `ε ≲ 1/log n` — the message-optimal route: all-sources BFS through the
//!   Theorem 2.1 simulation (a special case of Theorem 1.1);
//! * `ε ∈ (1/Θ(log n), 1/2]` — depth-`Õ(n^{1-ε})` BFS batches over an ensemble of
//!   pruned hierarchies (Lemma 3.23) for the near pairs, plus sampled landmarks for
//!   the far pairs;
//! * `ε ∈ (1/2, 1]` — all `n` full BFS under Theorem 1.4's random delays, simulated
//!   via Theorem 3.10 (Lemma 3.22).

use crate::bfs_trees::{all_bfs_batched, all_bfs_star};
use crate::landmarks::{landmark_distances, sampling_probability};
use crate::simulate::{simulate_bcongest_via_ldc, LdcSimOptions};
use congest_algos::bfs_collection::BfsCollection;
use congest_engine::{EngineError, Metrics};
use congest_graph::Graph;

/// Which regime of the trade-off served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `ε ≈ 0`: Theorem 2.1 simulation (message-optimal end).
    MessageOptimal,
    /// `ε ∈ (1/Θ(log n), 1/2]`: Lemma 3.23 batches + landmarks.
    BatchedPlusLandmarks,
    /// `ε ∈ (1/2, 1]`: Lemma 3.22 (round-optimal end at ε = 1).
    StarDirect,
}

/// Result of the trade-off APSP.
#[derive(Clone, Debug)]
pub struct TradeoffResult {
    /// `dist[v][s]` = exact hop distance from `s` to `v`.
    pub dist: Vec<Vec<Option<u32>>>,
    /// Which route ran.
    pub route: Route,
    /// Realized total cost.
    pub metrics: Metrics,
    /// The ε requested.
    pub epsilon: f64,
}

/// Unweighted APSP at trade-off point `ε ∈ [0, 1]` (Theorem 1.2).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `epsilon` is outside `[0, 1]`.
pub fn tradeoff_apsp(g: &Graph, epsilon: f64, seed: u64) -> Result<TradeoffResult, EngineError> {
    assert!((0.0..=1.0).contains(&epsilon), "ε must be in [0, 1]");
    let n = g.n();
    let log_threshold = 1.0 / (n.max(4) as f64).log2();

    if epsilon <= log_threshold {
        // Message-optimal end: simulate the all-sources BFS collection through
        // Theorem 2.1 (delays unnecessary — queueing plus re-broadcast keeps the
        // collection exact).
        let algo = BfsCollection::new(g.nodes().collect());
        let sim = simulate_bcongest_via_ldc(
            &algo,
            g,
            None,
            &LdcSimOptions {
                seed,
                ..Default::default()
            },
        )?;
        return Ok(TradeoffResult {
            dist: sim
                .outputs
                .iter()
                .map(|o| o.entries.iter().map(|e| e.dist).collect())
                .collect(),
            route: Route::MessageOptimal,
            metrics: sim.metrics,
            epsilon,
        });
    }

    if epsilon <= 0.5 {
        // Near pairs within depth Õ(n^{1-ε}), far pairs via landmarks.
        let nf = n.max(2) as f64;
        let depth = (2.0 * nf.powf(1.0 - epsilon)).ceil().min(nf) as u32;
        let near = all_bfs_batched(g, epsilon, depth, seed)?;
        let far = landmark_distances(g, sampling_probability(n, depth), seed)?;
        let mut metrics = near.metrics;
        metrics.merge_sequential(&far.metrics);
        let mut dist = near.dist;
        for (row, through_row) in dist.iter_mut().zip(&far.through) {
            for (slot, &through) in row.iter_mut().zip(through_row) {
                if let Some(t) = through {
                    if slot.is_none_or(|d| t < d) {
                        *slot = Some(t);
                    }
                }
            }
        }
        return Ok(TradeoffResult {
            dist,
            route: Route::BatchedPlusLandmarks,
            metrics,
            epsilon,
        });
    }

    let res = all_bfs_star(g, epsilon, seed)?;
    Ok(TradeoffResult {
        dist: res.dist,
        route: Route::StarDirect,
        metrics: res.metrics,
        epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    fn check_exact(g: &Graph, res: &TradeoffResult) {
        let want = reference::all_pairs_bfs(g);
        for (v, row) in res.dist.iter().enumerate() {
            for (s, &d) in row.iter().enumerate() {
                assert_eq!(d, want[s][v], "dist({s},{v}) via {:?}", res.route);
            }
        }
    }

    #[test]
    fn all_routes_are_exact() {
        let g = generators::gnp_connected(20, 0.15, 5);
        for &(eps, route) in &[
            (0.0, Route::MessageOptimal),
            (0.4, Route::BatchedPlusLandmarks),
            (0.75, Route::StarDirect),
            (1.0, Route::StarDirect),
        ] {
            let res = tradeoff_apsp(&g, eps, 31).unwrap();
            assert_eq!(res.route, route, "eps = {eps}");
            check_exact(&g, &res);
        }
    }

    #[test]
    fn grid_and_caveman_exact_at_half() {
        for (i, g) in [generators::grid(5, 4), generators::caveman(4, 5)]
            .iter()
            .enumerate()
        {
            let res = tradeoff_apsp(g, 0.5, 7 + i as u64).unwrap();
            check_exact(g, &res);
        }
    }

    #[test]
    fn messages_increase_and_rounds_decrease_along_the_tradeoff() {
        // The headline shape: moving ε up trades messages for rounds.
        let g = generators::gnp_connected(28, 0.25, 9);
        let low = tradeoff_apsp(&g, 0.0, 3).unwrap();
        let high = tradeoff_apsp(&g, 1.0, 3).unwrap();
        assert!(
            high.metrics.rounds < low.metrics.rounds,
            "rounds: high-ε {} vs low-ε {}",
            high.metrics.rounds,
            low.metrics.rounds
        );
    }

    #[test]
    #[should_panic(expected = "ε must be in [0, 1]")]
    fn rejects_bad_epsilon() {
        let g = generators::path(4);
        let _ = tradeoff_apsp(&g, 1.5, 0);
    }
}
