//! **Extension (the paper's concluding open question)** — message-time trade-offs
//! for *weighted* APSP.
//!
//! The paper asks ("Conclusions and Future Work") whether its framework yields
//! trade-offs for weighted APSP. The obstacle is aggregation: for a weighted
//! relaxation, the per-source minimum *message* is not the per-source minimum
//! *candidate distance*, because different senders sit at different edge weights
//! from the receiver. [`WeightedApspOverHierarchy`] fixes this with a
//! **receiver-aware aggregate** — Definition 3.1 explicitly allows `agg_{v,r}` to
//! depend on the receiver `v`, and cluster centers know all edges incident to
//! their members after preprocessing, so they can evaluate
//! `min_(sender) (dist_sender + w(sender, v))` exactly.
//!
//! With that, the weight-delayed Dijkstra payload runs through Theorems 3.9/3.10
//! unchanged, giving (experimentally) a weighted trade-off with the same shape as
//! Theorem 1.2. Dilation is `Õ(wdiam + n)` rather than `Õ(n)`, so the round end of
//! the trade-off is weaker than in the unweighted case — matching the paper's
//! intuition for why the weighted case is harder.

use crate::simulate::{
    simulate_aggregation_general, simulate_aggregation_star, AggSimOptions, SimulationRun,
};
use crate::weighted_apsp::WeightedApspResult;
use congest_algos::apsp_weighted::{WApspMsg, WApspOutput, WApspState, WeightedApsp};
use congest_decomp::pruning::prune;
use congest_decomp::Hierarchy;
use congest_engine::{AggregationAlgorithm, BcongestAlgorithm, EngineError, LocalView};
use congest_graph::{NodeId, WeightedGraph};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The weighted APSP payload with a receiver-aware aggregate, suitable for the
/// hierarchy simulations.
#[derive(Clone, Debug)]
pub struct WeightedApspOverHierarchy {
    inner: WeightedApsp,
    /// Per node: neighbor → edge weight (global knowledge for the *aggregator*,
    /// i.e. cluster centers, which legitimately hold member adjacency).
    weight_of: Arc<Vec<BTreeMap<NodeId, u64>>>,
}

impl WeightedApspOverHierarchy {
    /// Builds the payload for `wg`.
    pub fn new(wg: &WeightedGraph) -> Self {
        let weight_of: Vec<BTreeMap<NodeId, u64>> = wg
            .graph()
            .nodes()
            .map(|v| wg.incident(v).map(|(_, u, w)| (u, w)).collect())
            .collect();
        Self {
            inner: WeightedApsp::new(wg.max_weight()),
            weight_of: Arc::new(weight_of),
        }
    }
}

impl BcongestAlgorithm for WeightedApspOverHierarchy {
    type State = WApspState;
    type Msg = WApspMsg;
    type Output = WApspOutput;

    fn name(&self) -> &'static str {
        "weighted-apsp/hierarchy"
    }
    fn init(&self, view: &LocalView<'_>) -> WApspState {
        self.inner.init(view)
    }
    fn broadcast(&self, s: &WApspState, round: usize) -> Option<WApspMsg> {
        self.inner.broadcast(s, round)
    }
    fn on_broadcast_sent(&self, s: &mut WApspState, round: usize) {
        self.inner.on_broadcast_sent(s, round)
    }
    fn receive(&self, s: &mut WApspState, round: usize, msgs: &[(NodeId, WApspMsg)]) {
        self.inner.receive(s, round, msgs)
    }
    fn is_done(&self, s: &WApspState) -> bool {
        self.inner.is_done(s)
    }
    fn output(&self, s: &WApspState) -> WApspOutput {
        self.inner.output(s)
    }
    fn next_activity(&self, s: &WApspState, after: usize) -> Option<usize> {
        self.inner.next_activity(s, after)
    }
    fn round_bound(&self, n: usize, m: usize) -> usize {
        self.inner.round_bound(n, m)
    }
    fn output_words(&self, out: &WApspOutput) -> usize {
        self.inner.output_words(out)
    }
}

impl AggregationAlgorithm for WeightedApspOverHierarchy {
    fn aggregate(
        &self,
        receiver: NodeId,
        _round: usize,
        msgs: Vec<(NodeId, WApspMsg)>,
    ) -> Vec<(NodeId, WApspMsg)> {
        // Per source, keep the message minimizing the *candidate distance at the
        // receiver* (dist + w(sender, receiver)), ties by sender — exactly the
        // message the receiver's relaxation would pick from this batch.
        let w = &self.weight_of[receiver.index()];
        let mut best: BTreeMap<u32, (u64, NodeId, WApspMsg)> = BTreeMap::new();
        for (from, m) in msgs {
            let Some(&edge_w) = w.get(&from) else {
                continue; // only neighbors can deliver relaxations
            };
            let cand = m.dist + edge_w;
            match best.get(&m.source) {
                Some(&(c, f, _)) if (c, f) <= (cand, from) => {}
                _ => {
                    best.insert(m.source, (cand, from, m));
                }
            }
        }
        best.into_values().map(|(_, from, m)| (from, m)).collect()
    }

    fn aggregate_budget(&self, n: usize) -> usize {
        n.max(1)
    }
}

/// Configuration of the weighted trade-off.
#[derive(Clone, Debug)]
pub struct WeightedTradeoffConfig {
    /// Trade-off parameter `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// Master seed.
    pub seed: u64,
}

/// Weighted APSP through the trade-off machinery (experimental extension): the
/// hierarchy simulation of Theorem 3.9 (or 3.10 when `ε ≥ 1/2`) applied to the
/// weighted payload.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `epsilon ∉ (0, 1]`.
pub fn weighted_apsp_tradeoff(
    wg: &WeightedGraph,
    cfg: &WeightedTradeoffConfig,
) -> Result<WeightedApspResult, EngineError> {
    assert!(
        cfg.epsilon > 0.0 && cfg.epsilon <= 1.0,
        "ε must be in (0, 1]"
    );
    let g = wg.graph();
    let h = prune(g, &Hierarchy::build(g, cfg.epsilon, cfg.seed));
    let algo = WeightedApspOverHierarchy::new(wg);
    let opts = AggSimOptions {
        seed: cfg.seed,
        charge_hierarchy: true,
        ..Default::default()
    };
    let sim: SimulationRun<WApspOutput> = if cfg.epsilon >= 0.5 {
        simulate_aggregation_star(&algo, g, Some(wg.weights()), &h, &opts)?
    } else {
        simulate_aggregation_general(&algo, g, Some(wg.weights()), &h, &opts)?
    };
    Ok(WeightedApspResult {
        distances: sim.outputs.iter().map(|o| o.dist.clone()).collect(),
        metrics: sim.metrics,
        simulated_broadcasts: sim.simulated_broadcasts,
        simulated_rounds: sim.simulated_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_weighted_apsp;
    use congest_graph::generators;

    #[test]
    fn weighted_tradeoff_is_exact_across_epsilon() {
        let g = generators::gnp_connected(18, 0.2, 4);
        let wg = WeightedGraph::random_weights(&g, 1..=6, 4);
        for &eps in &[0.34, 0.5, 1.0] {
            let res = weighted_apsp_tradeoff(
                &wg,
                &WeightedTradeoffConfig {
                    epsilon: eps,
                    seed: 9,
                },
            )
            .unwrap();
            check_weighted_apsp(&wg, &res.distances).unwrap_or_else(|e| panic!("eps {eps}: {e}"));
        }
    }

    #[test]
    fn receiver_aware_aggregate_prefers_better_candidates() {
        // Sender A is far (dist 10) over a weight-1 edge; sender B is near (dist 2)
        // over a weight-100 edge. The receiver-aware aggregate must keep A.
        let g = congest_graph::Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let wg = WeightedGraph::from_weights(g, vec![1, 100]).unwrap();
        let algo = WeightedApspOverHierarchy::new(&wg);
        let msgs = vec![
            (
                NodeId::new(1),
                WApspMsg {
                    source: 9,
                    dist: 10,
                },
            ),
            (NodeId::new(2), WApspMsg { source: 9, dist: 2 }),
        ];
        let agg = algo.aggregate(NodeId::new(0), 0, msgs);
        assert_eq!(
            agg,
            vec![(
                NodeId::new(1),
                WApspMsg {
                    source: 9,
                    dist: 10
                }
            )]
        );
    }

    #[test]
    fn tradeoff_shape_weighted() {
        let g = generators::gnp_connected(20, 0.3, 6);
        let wg = WeightedGraph::random_weights(&g, 1..=4, 6);
        let low = weighted_apsp_tradeoff(
            &wg,
            &WeightedTradeoffConfig {
                epsilon: 0.34,
                seed: 2,
            },
        )
        .unwrap();
        let high = weighted_apsp_tradeoff(
            &wg,
            &WeightedTradeoffConfig {
                epsilon: 1.0,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(low.distances, high.distances);
        // Both regimes pay for the payload's broadcasts at least once.
        assert!(low.metrics.messages as u128 >= u128::from(low.simulated_broadcasts));
        assert!(high.metrics.messages as u128 >= u128::from(high.simulated_broadcasts));
    }
}
