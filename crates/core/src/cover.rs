//! **Corollary 2.9** — `(k, W)`-sparse neighborhood covers with `Õ(n²)` messages:
//! the repeated-MPX cover payload through the Theorem 2.1 simulation.

use crate::simulate::{simulate_bcongest_via_ldc, LdcSimOptions};
use congest_decomp::cover::{validate_cover, CoverOutput, NeighborhoodCover};
use congest_engine::{EngineError, Metrics};
use congest_graph::Graph;

/// Result of the message-optimal cover construction.
#[derive(Clone, Debug)]
pub struct CoverResult {
    /// Per-node memberships (one tree per repetition).
    pub outputs: Vec<CoverOutput>,
    /// The algorithm parameters actually used.
    pub algorithm: NeighborhoodCover,
    /// Realized cost.
    pub metrics: Metrics,
    /// Broadcast complexity of the simulated payload.
    pub simulated_broadcasts: u64,
}

/// Builds a `(k, W)`-sparse neighborhood cover message-optimally (Corollary 2.9).
/// `reps` overrides the default `Θ(n^{1/k} log n)` repetition count (useful for
/// experiments; correctness of the covering property is w.h.p. in the default).
///
/// # Errors
///
/// Propagates engine errors.
pub fn sparse_neighborhood_cover(
    g: &Graph,
    k: usize,
    w: u32,
    reps: Option<usize>,
    seed: u64,
) -> Result<CoverResult, EngineError> {
    let algorithm = match reps {
        Some(r) => NeighborhoodCover::with_reps(g.n(), k, w, r),
        None => NeighborhoodCover::new(g.n(), k, w),
    };
    let sim = simulate_bcongest_via_ldc(
        &algorithm,
        g,
        None,
        &LdcSimOptions {
            seed,
            ..Default::default()
        },
    )?;
    Ok(CoverResult {
        outputs: sim.outputs,
        algorithm,
        metrics: sim.metrics,
        simulated_broadcasts: sim.simulated_broadcasts,
    })
}

impl CoverResult {
    /// Validates the three cover properties; returns `(max depth, trees per node)`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self, g: &Graph) -> Result<(u32, usize), String> {
        validate_cover(g, &self.algorithm, &self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn simulated_cover_is_valid() {
        let g = generators::grid(5, 4);
        let res = sparse_neighborhood_cover(&g, 2, 2, Some(30), 3).unwrap();
        let (depth, trees) = res.validate(&g).unwrap();
        assert_eq!(trees, 30);
        assert!(depth >= 1);
    }

    #[test]
    fn cover_on_random_graph() {
        let g = generators::gnp_connected(24, 0.15, 5);
        let res = sparse_neighborhood_cover(&g, 2, 2, Some(30), 5).unwrap();
        res.validate(&g).unwrap();
    }
}
