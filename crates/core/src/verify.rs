//! Verification oracles used by tests, examples and the experiment harness.

use congest_graph::{reference, EdgeId, Graph, WeightedGraph};

/// Checks an unweighted APSP answer (`dist[v][s]`) against sequential all-pairs BFS.
///
/// # Errors
///
/// Returns the first mismatching `(source, node)` pair.
pub fn check_unweighted_apsp(g: &Graph, dist: &[Vec<Option<u32>>]) -> Result<(), String> {
    let want = reference::all_pairs_bfs(g);
    for v in 0..g.n() {
        for s in 0..g.n() {
            if dist[v][s] != want[s][v] {
                return Err(format!(
                    "dist({s},{v}) = {:?}, want {:?}",
                    dist[v][s], want[s][v]
                ));
            }
        }
    }
    Ok(())
}

/// Checks a weighted APSP answer against sequential all-pairs Dijkstra.
///
/// # Errors
///
/// Returns the first mismatching `(source, node)` pair.
pub fn check_weighted_apsp(wg: &WeightedGraph, dist: &[Vec<Option<u64>>]) -> Result<(), String> {
    let want = reference::all_pairs_dijkstra(wg);
    for v in 0..wg.n() {
        for s in 0..wg.n() {
            if dist[v][s] != want[s][v] {
                return Err(format!(
                    "dist({s},{v}) = {:?}, want {:?}",
                    dist[v][s], want[s][v]
                ));
            }
        }
    }
    Ok(())
}

/// Checks that `edges` is exactly the minimum spanning forest of `wg` under the
/// `(weight, EdgeId)` total order, differentially against **both** sequential oracles
/// (Kruskal and Prim) plus the structural spanning-forest validator.
///
/// # Errors
///
/// Describes the first violation (oracle disagreement, wrong edge set, wrong weight,
/// or not a spanning forest).
pub fn check_mst(wg: &WeightedGraph, edges: &[EdgeId]) -> Result<(), String> {
    let kruskal = reference::mst_kruskal(wg);
    let prim = reference::mst_prim(wg);
    if kruskal != prim {
        return Err("oracle disagreement: Kruskal != Prim (tie-break bug)".into());
    }
    let mut sorted = edges.to_vec();
    sorted.sort_unstable();
    if sorted != kruskal.edges {
        return Err(format!(
            "edge set mismatch: got {} edges, oracle has {} (first diff at {:?})",
            sorted.len(),
            kruskal.edges.len(),
            sorted
                .iter()
                .zip(&kruskal.edges)
                .find(|(a, b)| a != b)
                .map(|(a, _)| *a)
        ));
    }
    if !reference::is_spanning_forest(wg.graph(), &sorted) {
        return Err("edge set is not a spanning forest".into());
    }
    Ok(())
}

/// Checks a realized message count against a closed-form budget (e.g.
/// [`congest_algos::mst::message_bound`]).
///
/// # Errors
///
/// Reports the overdraft.
pub fn check_message_budget(what: &str, messages: u64, budget: u64) -> Result<(), String> {
    if messages > budget {
        return Err(format!(
            "{what}: {messages} messages exceed budget {budget}"
        ));
    }
    Ok(())
}

/// Checks a matching is a *maximum* matching of a bipartite graph.
///
/// # Errors
///
/// Describes the violation (not a matching / not maximum / not bipartite).
pub fn check_maximum_matching(
    g: &Graph,
    pairs: &[(congest_graph::NodeId, congest_graph::NodeId)],
) -> Result<(), String> {
    if !reference::is_matching(g, pairs) {
        return Err("not a matching".into());
    }
    let want = reference::hopcroft_karp(g).ok_or("graph is not bipartite")?;
    if pairs.len() != want {
        return Err(format!("matching size {} ≠ maximum {want}", pairs.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn apsp_checkers_accept_reference_answers() {
        let g = generators::gnp_connected(12, 0.3, 1);
        let bfs = reference::all_pairs_bfs(&g);
        // Transpose: checkers take dist[v][s].
        let dist: Vec<Vec<Option<u32>>> = (0..g.n())
            .map(|v| (0..g.n()).map(|s| bfs[s][v]).collect())
            .collect();
        check_unweighted_apsp(&g, &dist).unwrap();

        let wg = WeightedGraph::random_weights(&g, 1..=5, 1);
        let dij = reference::all_pairs_dijkstra(&wg);
        let wdist: Vec<Vec<Option<u64>>> = (0..g.n())
            .map(|v| (0..g.n()).map(|s| dij[s][v]).collect())
            .collect();
        check_weighted_apsp(&wg, &wdist).unwrap();
    }

    #[test]
    fn apsp_checker_rejects_wrong_answers() {
        let g = generators::path(4);
        let mut dist: Vec<Vec<Option<u32>>> = vec![vec![Some(0); 4]; 4];
        dist[3][0] = Some(99);
        assert!(check_unweighted_apsp(&g, &dist).is_err());
    }

    #[test]
    fn mst_checker_accepts_oracle_and_rejects_wrong_sets() {
        let g = generators::gnp_connected(18, 0.25, 4);
        let wg = WeightedGraph::random_weights(&g, 1..=5, 4);
        let want = reference::mst_kruskal(&wg);
        check_mst(&wg, &want.edges).unwrap();
        // Any strict subset fails.
        assert!(check_mst(&wg, &want.edges[1..]).is_err());
        // Swapping in a non-MST edge fails.
        let non_tree = (0..g.m())
            .map(EdgeId::new)
            .find(|e| !want.edges.contains(e))
            .unwrap();
        let mut wrong = want.edges.clone();
        wrong[0] = non_tree;
        assert!(check_mst(&wg, &wrong).is_err());
    }

    #[test]
    fn message_budget_checker() {
        check_message_budget("mst", 10, 10).unwrap();
        let err = check_message_budget("mst", 11, 10).unwrap_err();
        assert!(err.contains("exceed"));
    }

    #[test]
    fn matching_checker() {
        let g = generators::cycle(6);
        use congest_graph::NodeId;
        let max = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
            (NodeId::new(4), NodeId::new(5)),
        ];
        check_maximum_matching(&g, &max).unwrap();
        assert!(check_maximum_matching(&g, &max[..2]).is_err());
    }
}
