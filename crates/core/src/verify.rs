//! Verification oracles used by tests, examples and the experiment harness.
//!
//! Distance answers are checked **generically** through
//! [`crate::distance::DistanceSource`] — [`check_distance_source_weighted`]
//! and [`check_distance_source_unweighted`] validate any source (exact
//! matrices, landmark sketches, serving oracles) against the sequential
//! references without pattern-matching concrete result structs; the
//! matrix-shaped checkers below are thin adapters over them.

use crate::distance::{Distance, DistanceSource, MatrixSource};
use congest_graph::{reference, EdgeId, Graph, NodeId, WeightedGraph};

/// Validates one source answer against the reference distance for the pair.
///
/// Exact sources must reproduce the reference everywhere (including
/// [`Distance::Unknown`] exactly on unreachable pairs); estimate sources must
/// stay **admissible** — never below the true distance, and never an answer
/// where no path exists.
fn check_answer(s: usize, t: usize, got: Distance, want: Option<u64>) -> Result<(), String> {
    match (got, want) {
        (Distance::Exact(d), Some(w)) if d == w => Ok(()),
        (Distance::Estimate(d), Some(w)) if d >= w => Ok(()),
        (Distance::Unknown, None) => Ok(()),
        (Distance::Unknown, Some(_)) => Ok(()), // estimates may not cover near pairs
        _ => Err(format!("distance({s},{t}) = {got:?}, reference {want:?}")),
    }
}

/// Checks every pair a [`DistanceSource`] answers against a reference
/// `want[s][t]` matrix. Exact sources must match the reference exactly
/// (`Unknown` only on unreachable pairs); estimate sources must be admissible
/// upper bounds.
fn check_source(src: &dyn DistanceSource, want: &[Vec<Option<u64>>]) -> Result<(), String> {
    if src.n() != want.len() {
        return Err(format!(
            "source covers {} nodes, reference has {}",
            src.n(),
            want.len()
        ));
    }
    for (s, row) in want.iter().enumerate() {
        for (t, &cell) in row.iter().enumerate() {
            let got = src.distance(NodeId::new(s), NodeId::new(t));
            if src.is_exact() {
                if got == Distance::Unknown && cell.is_some() {
                    return Err(format!(
                        "exact source does not cover reachable pair ({s},{t})"
                    ));
                }
                if matches!(got, Distance::Estimate(_)) {
                    return Err(format!("exact source answered an estimate for ({s},{t})"));
                }
            }
            check_answer(s, t, got, cell)?;
        }
    }
    Ok(())
}

/// Checks a [`DistanceSource`] against sequential all-pairs Dijkstra.
///
/// # Errors
///
/// Returns the first violating `(source, target)` pair.
pub fn check_distance_source_weighted(
    wg: &WeightedGraph,
    src: &dyn DistanceSource,
) -> Result<(), String> {
    check_source(src, &reference::all_pairs_dijkstra(wg))
}

/// Checks a [`DistanceSource`] against sequential all-pairs BFS.
///
/// # Errors
///
/// Returns the first violating `(source, target)` pair.
pub fn check_distance_source_unweighted(g: &Graph, src: &dyn DistanceSource) -> Result<(), String> {
    let want: Vec<Vec<Option<u64>>> = reference::all_pairs_bfs(g)
        .into_iter()
        .map(|row| row.into_iter().map(|d| d.map(u64::from)).collect())
        .collect();
    check_source(src, &want)
}

/// Checks an unweighted APSP answer (`dist[v][s]`) against sequential all-pairs BFS.
///
/// # Errors
///
/// Returns the first mismatching `(source, node)` pair.
pub fn check_unweighted_apsp(g: &Graph, dist: &[Vec<Option<u32>>]) -> Result<(), String> {
    let widened: Vec<Vec<Option<u64>>> = dist
        .iter()
        .map(|row| row.iter().map(|d| d.map(u64::from)).collect())
        .collect();
    check_distance_source_unweighted(g, &MatrixSource::new(&widened))
}

/// Checks a weighted APSP answer (`dist[v][s]`) against sequential all-pairs
/// Dijkstra.
///
/// # Errors
///
/// Returns the first mismatching `(source, node)` pair.
pub fn check_weighted_apsp(wg: &WeightedGraph, dist: &[Vec<Option<u64>>]) -> Result<(), String> {
    check_distance_source_weighted(wg, &MatrixSource::new(dist))
}

/// Checks that `edges` is exactly the minimum spanning forest of `wg` under the
/// `(weight, EdgeId)` total order, differentially against **both** sequential oracles
/// (Kruskal and Prim) plus the structural spanning-forest validator.
///
/// # Errors
///
/// Describes the first violation (oracle disagreement, wrong edge set, wrong weight,
/// or not a spanning forest).
pub fn check_mst(wg: &WeightedGraph, edges: &[EdgeId]) -> Result<(), String> {
    let kruskal = reference::mst_kruskal(wg);
    let prim = reference::mst_prim(wg);
    if kruskal != prim {
        return Err("oracle disagreement: Kruskal != Prim (tie-break bug)".into());
    }
    let mut sorted = edges.to_vec();
    sorted.sort_unstable();
    if sorted != kruskal.edges {
        return Err(format!(
            "edge set mismatch: got {} edges, oracle has {} (first diff at {:?})",
            sorted.len(),
            kruskal.edges.len(),
            sorted
                .iter()
                .zip(&kruskal.edges)
                .find(|(a, b)| a != b)
                .map(|(a, _)| *a)
        ));
    }
    if !reference::is_spanning_forest(wg.graph(), &sorted) {
        return Err("edge set is not a spanning forest".into());
    }
    Ok(())
}

/// Checks a realized message count against a closed-form budget (e.g.
/// [`congest_algos::mst::message_bound`]).
///
/// # Errors
///
/// Reports the overdraft.
pub fn check_message_budget(what: &str, messages: u64, budget: u64) -> Result<(), String> {
    if messages > budget {
        return Err(format!(
            "{what}: {messages} messages exceed budget {budget}"
        ));
    }
    Ok(())
}

/// Checks a matching is a *maximum* matching of a bipartite graph.
///
/// # Errors
///
/// Describes the violation (not a matching / not maximum / not bipartite).
pub fn check_maximum_matching(
    g: &Graph,
    pairs: &[(congest_graph::NodeId, congest_graph::NodeId)],
) -> Result<(), String> {
    if !reference::is_matching(g, pairs) {
        return Err("not a matching".into());
    }
    let want = reference::hopcroft_karp(g).ok_or("graph is not bipartite")?;
    if pairs.len() != want {
        return Err(format!("matching size {} ≠ maximum {want}", pairs.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn apsp_checkers_accept_reference_answers() {
        let g = generators::gnp_connected(12, 0.3, 1);
        let bfs = reference::all_pairs_bfs(&g);
        // Transpose: checkers take dist[v][s].
        let dist: Vec<Vec<Option<u32>>> = (0..g.n())
            .map(|v| (0..g.n()).map(|s| bfs[s][v]).collect())
            .collect();
        check_unweighted_apsp(&g, &dist).unwrap();

        let wg = WeightedGraph::random_weights(&g, 1..=5, 1);
        let dij = reference::all_pairs_dijkstra(&wg);
        let wdist: Vec<Vec<Option<u64>>> = (0..g.n())
            .map(|v| (0..g.n()).map(|s| dij[s][v]).collect())
            .collect();
        check_weighted_apsp(&wg, &wdist).unwrap();
    }

    #[test]
    fn apsp_checker_rejects_wrong_answers() {
        let g = generators::path(4);
        let mut dist: Vec<Vec<Option<u32>>> = vec![vec![Some(0); 4]; 4];
        dist[3][0] = Some(99);
        assert!(check_unweighted_apsp(&g, &dist).is_err());
    }

    #[test]
    fn mst_checker_accepts_oracle_and_rejects_wrong_sets() {
        let g = generators::gnp_connected(18, 0.25, 4);
        let wg = WeightedGraph::random_weights(&g, 1..=5, 4);
        let want = reference::mst_kruskal(&wg);
        check_mst(&wg, &want.edges).unwrap();
        // Any strict subset fails.
        assert!(check_mst(&wg, &want.edges[1..]).is_err());
        // Swapping in a non-MST edge fails.
        let non_tree = (0..g.m())
            .map(EdgeId::new)
            .find(|e| !want.edges.contains(e))
            .unwrap();
        let mut wrong = want.edges.clone();
        wrong[0] = non_tree;
        assert!(check_mst(&wg, &wrong).is_err());
    }

    #[test]
    fn message_budget_checker() {
        check_message_budget("mst", 10, 10).unwrap();
        let err = check_message_budget("mst", 11, 10).unwrap_err();
        assert!(err.contains("exceed"));
    }

    #[test]
    fn matching_checker() {
        let g = generators::cycle(6);
        use congest_graph::NodeId;
        let max = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
            (NodeId::new(4), NodeId::new(5)),
        ];
        check_maximum_matching(&g, &max).unwrap();
        assert!(check_maximum_matching(&g, &max[..2]).is_err());
    }
}
