//! The common query surface over every distance structure the paper builds.
//!
//! The APSP, landmark and BFS computations all end in the same place: a data
//! structure whose entire point is to answer "how far is `t` from `s`?". Until
//! now each result struct exposed its own matrix layout and every consumer
//! pattern-matched the concrete type. [`DistanceSource`] unifies them: one
//! `distance(s, t)` signature whose return type distinguishes **exact**
//! answers from admissible **estimates** — the landmark structure of §3.3
//! answers with upper bounds that are only guaranteed tight for far pairs,
//! while the Theorem 1.1/1.2 matrices are exact everywhere.
//!
//! `congest-serve` builds its [`DistanceOracle`] over this trait, and the
//! [`crate::verify`] checkers validate any source generically
//! ([`crate::verify::check_distance_source_weighted`] and friends), so new
//! distance structures plug into serving and verification by implementing one
//! trait.
//!
//! [`DistanceOracle`]: https://docs.rs/congest-serve

use crate::bfs_trees::BfsForestResult;
use crate::landmarks::LandmarkResult;
use crate::tradeoff::TradeoffResult;
use crate::weighted_apsp::WeightedApspResult;
use congest_graph::NodeId;

/// One answer to a distance query, with its guarantee in the type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Distance {
    /// The exact shortest-path distance.
    Exact(u64),
    /// An admissible estimate: an upper bound on the true distance (the
    /// landmark guarantee — exact whenever a landmark lies on a shortest
    /// path, an overshoot otherwise; never an undershoot).
    Estimate(u64),
    /// The structure does not cover the pair — no path exists (exact
    /// sources), or no landmark reaches both endpoints (estimate sources).
    Unknown,
}

impl Distance {
    /// The numeric value, if the pair is covered.
    pub fn value(self) -> Option<u64> {
        match self {
            Distance::Exact(d) | Distance::Estimate(d) => Some(d),
            Distance::Unknown => None,
        }
    }

    /// Whether this answer carries the exact-distance guarantee.
    pub fn is_exact(self) -> bool {
        matches!(self, Distance::Exact(_))
    }
}

/// A queryable distance structure over nodes `0..n`.
///
/// Implementations must be **pure**: `distance` is a function of the built
/// structure only, so repeated queries (and cached re-serves) are
/// byte-identical — the `tests/serve_conformance.rs` suite pins this.
pub trait DistanceSource {
    /// Number of nodes the structure covers (queries take `NodeId`s below
    /// this).
    fn n(&self) -> usize;

    /// Whether every covered pair is answered [`Distance::Exact`] (`false`
    /// for estimate structures like the landmark sketch).
    fn is_exact(&self) -> bool;

    /// The distance from `s` to `t` as this structure knows it.
    fn distance(&self, s: NodeId, t: NodeId) -> Distance;
}

/// Every `&S` serves like `S` — lets callers hand out borrowed sources.
impl<S: DistanceSource + ?Sized> DistanceSource for &S {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn is_exact(&self) -> bool {
        (**self).is_exact()
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        (**self).distance(s, t)
    }
}

/// Theorem 1.1's output serves exact weighted distances
/// (`distances[t][s]` = d(s, t)).
impl DistanceSource for WeightedApspResult {
    fn n(&self) -> usize {
        self.distances.len()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        match self.distances[t.index()][s.index()] {
            Some(d) => Distance::Exact(d),
            None => Distance::Unknown,
        }
    }
}

/// Theorem 1.2's output serves exact hop distances (`dist[t][s]` = d(s, t)).
impl DistanceSource for TradeoffResult {
    fn n(&self) -> usize {
        self.dist.len()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        match self.dist[t.index()][s.index()] {
            Some(d) => Distance::Exact(u64::from(d)),
            None => Distance::Unknown,
        }
    }
}

/// Lemma 3.22/3.23 BFS forests serve exact hop distances up to their depth
/// limit (`Unknown` beyond it).
impl DistanceSource for BfsForestResult {
    fn n(&self) -> usize {
        self.dist.len()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        match self.dist[t.index()][s.index()] {
            Some(d) => Distance::Exact(u64::from(d)),
            None => Distance::Unknown,
        }
    }
}

/// The landmark sketch of §3.3 serves **estimates**: `through[s][t]` is the
/// best landmark-mediated distance — an upper bound on d(s, t), exact w.h.p.
/// for pairs farther apart than the sampling scale.
impl DistanceSource for LandmarkResult {
    fn n(&self) -> usize {
        self.through.len()
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        match self.through[s.index()][t.index()] {
            Some(d) => Distance::Estimate(u64::from(d)),
            None => Distance::Unknown,
        }
    }
}

/// A borrowed `dist[t][s]` matrix (the layout every checker historically
/// consumed) as an exact [`DistanceSource`] — the adapter
/// [`crate::verify::check_weighted_apsp`] now routes through instead of
/// pattern-matching result structs.
#[derive(Clone, Copy, Debug)]
pub struct MatrixSource<'a> {
    dist: &'a [Vec<Option<u64>>],
}

impl<'a> MatrixSource<'a> {
    /// Wraps a `dist[t][s]` matrix of exact distances.
    pub fn new(dist: &'a [Vec<Option<u64>>]) -> Self {
        Self { dist }
    }
}

impl DistanceSource for MatrixSource<'_> {
    fn n(&self) -> usize {
        self.dist.len()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        match self.dist[t.index()][s.index()] {
            Some(d) => Distance::Exact(d),
            None => Distance::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_engine::Metrics;

    #[test]
    fn distance_value_and_exactness() {
        assert_eq!(Distance::Exact(3).value(), Some(3));
        assert_eq!(Distance::Estimate(4).value(), Some(4));
        assert_eq!(Distance::Unknown.value(), None);
        assert!(Distance::Exact(0).is_exact());
        assert!(!Distance::Estimate(0).is_exact());
        assert!(!Distance::Unknown.is_exact());
    }

    #[test]
    fn matrix_source_transposes_to_query_order() {
        // dist[t][s]: d(0→1) = 7 lives at dist[1][0].
        let dist = vec![vec![Some(0), None], vec![Some(7), Some(0)]];
        let src = MatrixSource::new(&dist);
        assert_eq!(src.n(), 2);
        assert!(src.is_exact());
        assert_eq!(
            src.distance(NodeId::new(0), NodeId::new(1)),
            Distance::Exact(7)
        );
        assert_eq!(
            src.distance(NodeId::new(1), NodeId::new(0)),
            Distance::Unknown
        );
    }

    #[test]
    fn result_structs_serve_their_matrices() {
        let apsp = WeightedApspResult {
            distances: vec![vec![Some(0), Some(2)], vec![Some(2), Some(0)]],
            metrics: Metrics::new(1),
            simulated_broadcasts: 0,
            simulated_rounds: 0,
        };
        assert!(apsp.is_exact());
        assert_eq!(
            apsp.distance(NodeId::new(1), NodeId::new(0)),
            Distance::Exact(2)
        );

        let lm = LandmarkResult {
            landmarks: vec![NodeId::new(0)],
            through: vec![vec![Some(0), Some(5)], vec![Some(5), None]],
            metrics: Metrics::new(1),
        };
        assert!(!lm.is_exact());
        assert_eq!(
            lm.distance(NodeId::new(0), NodeId::new(1)),
            Distance::Estimate(5)
        );
        assert_eq!(
            lm.distance(NodeId::new(1), NodeId::new(1)),
            Distance::Unknown
        );
    }
}
