//! **Lemmas 3.22 and 3.23** — computing many BFS trees message-efficiently.
//!
//! * [`all_bfs_star`] (Lemma 3.22, `ε ∈ [1/2, 1]`): all `n` BFS under random delays
//!   (Theorem 1.4), simulated via Theorem 3.10 over one pruned hierarchy —
//!   `Õ(n^{2-ε})` rounds, `Õ(n^{2+ε})` messages.
//! * [`all_bfs_batched`] (Lemma 3.23, `ε ∈ (0, 1/2]`): the `n` depth-limited BFS
//!   split into `⌈n^ε⌉` batches, each simulated via Theorem 3.9 over its own member
//!   of an ensemble of pruned hierarchies (Lemma 3.8's congestion smoothing), then
//!   composed with the congestion+dilation accounting of Theorem 1.3.
//!
//! Both charge the shared-randomness distribution exactly as the paper prescribes
//! (Õ(n) rounds, Õ(n²) messages per use).

use congest_algos::bfs_collection::BfsCollection;
use congest_algos::leader::setup_network;
use congest_decomp::pruning::prune;
use congest_decomp::{Ensemble, Hierarchy};
use congest_engine::{EngineError, Metrics};
use congest_graph::{Graph, NodeId};
use congest_sched::{compose_measured, paper_shared_words, shared_randomness};

use crate::simulate::{simulate_aggregation_general, simulate_aggregation_star, AggSimOptions};

/// Result of a many-BFS computation.
#[derive(Clone, Debug)]
pub struct BfsForestResult {
    /// `dist[v][s]` = hop distance from source `s` (node ID `s`) to `v`, up to the
    /// depth limit (`None` beyond it).
    pub dist: Vec<Vec<Option<u32>>>,
    /// Realized total cost.
    pub metrics: Metrics,
    /// The depth limit used (`u32::MAX` for full BFS).
    pub depth_limit: u32,
}

/// Lemma 3.22: `n` full BFS trees for `ε ∈ [1/2, 1]`.
///
/// # Errors
///
/// Propagates engine errors.
pub fn all_bfs_star(g: &Graph, epsilon: f64, seed: u64) -> Result<BfsForestResult, EngineError> {
    assert!(
        (0.5..=1.0).contains(&epsilon),
        "Lemma 3.22 needs ε ∈ [1/2, 1]"
    );
    let mut metrics = Metrics::new(g.m());

    // Shared randomness for the random delays (Theorem 1.4).
    let setup = setup_network(g, seed)?;
    let sr = shared_randomness(g, &setup.tree, paper_shared_words(g.n()), seed);
    metrics.merge_sequential(&setup.metrics);
    metrics.merge_sequential(&sr.metrics);

    let h = prune(g, &Hierarchy::build(g, epsilon, seed));
    let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(sr.seed);
    let sim = simulate_aggregation_star(
        &algo,
        g,
        None,
        &h,
        &AggSimOptions {
            seed,
            charge_hierarchy: true,
            ..Default::default()
        },
    )?;
    metrics.merge_sequential(&sim.metrics);

    Ok(BfsForestResult {
        dist: sim
            .outputs
            .iter()
            .map(|o| o.entries.iter().map(|e| e.dist).collect())
            .collect(),
        metrics,
        depth_limit: u32::MAX,
    })
}

/// Lemma 3.23: `n` BFS trees truncated at `depth_limit`, for `ε ∈ (0, 1/2]`.
///
/// # Errors
///
/// Propagates engine errors.
pub fn all_bfs_batched(
    g: &Graph,
    epsilon: f64,
    depth_limit: u32,
    seed: u64,
) -> Result<BfsForestResult, EngineError> {
    assert!(
        epsilon > 0.0 && epsilon <= 0.5,
        "Lemma 3.23 needs ε ∈ (0, 1/2]"
    );
    let n = g.n();
    let mut metrics = Metrics::new(g.m());

    let batches = Ensemble::paper_zeta(n, epsilon).max(1);
    let setup = setup_network(g, seed)?;
    metrics.merge_sequential(&setup.metrics);
    // One shared-randomness distribution per batch (as in the Lemma 3.23 proof).
    for _ in 0..batches {
        let sr = shared_randomness(g, &setup.tree, paper_shared_words(n), seed);
        metrics.merge_sequential(&sr.metrics);
    }
    let ensemble = Ensemble::build(g, epsilon, batches, seed);
    metrics.merge_sequential(&ensemble.metrics);

    let sources: Vec<NodeId> = g.nodes().collect();
    let chunk = n.div_ceil(batches);
    let mut dist: Vec<Vec<Option<u32>>> = vec![vec![None; n]; n];
    let mut batch_metrics: Vec<Metrics> = Vec::with_capacity(batches);

    for (b, chunk_sources) in sources.chunks(chunk).enumerate() {
        let h = &ensemble.hierarchies[b % ensemble.len()];
        let algo = BfsCollection::new(chunk_sources.to_vec())
            .with_depth_limit(depth_limit)
            .with_random_delays(congest_graph::rng::derive(seed, 0xba7c_0000 + b as u64));
        let sim = simulate_aggregation_general(
            &algo,
            g,
            None,
            h,
            &AggSimOptions {
                seed: congest_graph::rng::derive(seed, 0x5eed_0000 + b as u64),
                charge_hierarchy: false, // the ensemble is charged once above
                ..Default::default()
            },
        )?;
        for (v, out) in sim.outputs.iter().enumerate() {
            for (j, entry) in out.entries.iter().enumerate() {
                let s = chunk_sources[j].index();
                dist[v][s] = entry.dist;
            }
        }
        batch_metrics.push(sim.metrics);
    }

    // The batches run together under Theorem 1.3: congestion+dilation accounting
    // over the measured executions (see DESIGN.md §2).
    let composed = compose_measured(g, &batch_metrics);
    metrics.merge_sequential(&composed.metrics);

    Ok(BfsForestResult {
        dist,
        metrics,
        depth_limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    #[test]
    fn star_route_matches_reference() {
        let g = generators::gnp_connected(22, 0.15, 1);
        let res = all_bfs_star(&g, 0.5, 11).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, row) in res.dist.iter().enumerate() {
            for (s, &d) in row.iter().enumerate() {
                assert_eq!(d, want[s][v]);
            }
        }
    }

    #[test]
    fn batched_route_matches_truncated_reference() {
        let g = generators::gnp_connected(24, 0.12, 2);
        let depth = 4;
        let res = all_bfs_batched(&g, 0.5, depth, 13).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, row) in res.dist.iter().enumerate() {
            for (s, &d) in row.iter().enumerate() {
                let expect = want[s][v].filter(|&d| d <= depth);
                assert_eq!(d, expect, "({s},{v})");
            }
        }
    }

    #[test]
    fn batched_route_small_epsilon() {
        let g = generators::grid(5, 5);
        let res = all_bfs_batched(&g, 0.34, 3, 17).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, row) in res.dist.iter().enumerate() {
            for (s, &d) in row.iter().enumerate() {
                assert_eq!(d, want[s][v].filter(|&d| d <= 3));
            }
        }
    }

    #[test]
    #[should_panic(expected = "Lemma 3.22")]
    fn star_route_rejects_small_epsilon() {
        let g = generators::path(4);
        let _ = all_bfs_star(&g, 0.3, 1);
    }
}
