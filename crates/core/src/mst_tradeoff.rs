//! The time–message trade-off for MST, `k`-parameterized — the "Beyond" companion to
//! [`crate::tradeoff`] (Gmyr–Pandurangan's trade-off framework applied to
//! Pandurangan–Robinson–Scquizzato-style MST):
//!
//! * `k ≥ n` — the **message-optimal route**: pure GHS merging
//!   ([`congest_algos::mst::distributed_mst`]), `Õ(m)` messages, but round cost
//!   proportional to fragment depth (up to `Õ(n)` on path-like fragments);
//! * `k < n` — **controlled merging plus a central finish**: fragments grow only to
//!   size `k`, then a leader (elected over a BFS tree) collects each node's lightest
//!   edge per neighboring fragment via a pipelined upcast, finishes the MST of the
//!   contracted fragment graph locally, and downcasts the chosen edges. Small `k`
//!   keeps fragment trees shallow (few, cheap rounds) at the price of upcasting up to
//!   `Õ(min(m, (n/k)·n))` candidate words — at `k = √n` the collection is the
//!   `Õ(n^{3/2})` point of the trade-off.
//!
//! Both routes produce the *same* edge set — the unique minimum spanning forest under
//! the `(weight, EdgeId)` total order — so every point of the sweep is differentially
//! checked against the sequential oracles.

use congest_algos::leader::setup_network_with;
use congest_algos::mst::{distributed_mst, MstConfig, MstRun};
use congest_engine::{treeops, EngineError, ExecutorConfig, Metrics};
use congest_graph::{reference, EdgeId, NodeId, WeightedGraph};
use std::collections::BTreeMap;

/// Which regime of the MST trade-off served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MstRoute {
    /// `k ≥ n`: pure GHS merging (message-optimal end).
    MessageOptimal,
    /// `k < n`: controlled merging to size-`k` fragments, then a central finish.
    ControlledPlusCentral,
}

/// Result of the trade-off MST.
#[derive(Clone, Debug)]
pub struct MstTradeoffResult {
    /// The minimum spanning forest's edges, sorted ascending by [`EdgeId`].
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' weights.
    pub total_weight: u64,
    /// Which route ran.
    pub route: MstRoute,
    /// Realized total cost (merging + election/collection/finish where applicable).
    pub metrics: Metrics,
    /// The growth parameter requested.
    pub k: usize,
}

/// Minimum spanning forest at trade-off point `k ∈ [1, n]` (values above `n` clamp to
/// the message-optimal route).
///
/// # Errors
///
/// Propagates engine errors.
pub fn mst_tradeoff(
    wg: &WeightedGraph,
    k: usize,
    seed: u64,
) -> Result<MstTradeoffResult, EngineError> {
    mst_tradeoff_with(wg, k, seed, &ExecutorConfig::default())
}

/// [`mst_tradeoff`] with an explicit executor for every per-node phase. Edges and
/// metrics are identical at every thread count.
///
/// # Errors
///
/// Propagates engine errors, like [`mst_tradeoff`].
pub fn mst_tradeoff_with(
    wg: &WeightedGraph,
    k: usize,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<MstTradeoffResult, EngineError> {
    let n = wg.n();
    if k >= n.max(1) {
        let run = distributed_mst(
            wg,
            &MstConfig {
                exec: exec.clone(),
                ..Default::default()
            },
        )?;
        return Ok(MstTradeoffResult {
            edges: run.edges,
            total_weight: run.total_weight,
            route: MstRoute::MessageOptimal,
            metrics: run.metrics,
            k,
        });
    }

    // Part 1: controlled merging until every active fragment spans ≥ k nodes.
    let part1 = distributed_mst(
        wg,
        &MstConfig {
            exec: exec.clone(),
            growth_threshold: Some(k.max(2)),
            ..Default::default()
        },
    )?;
    let mut metrics = part1.metrics.clone();
    let mut edges = part1.edges.clone();

    if !part1.complete {
        let (chosen, finish_metrics) = central_finish(wg, &part1, seed, exec)?;
        metrics.merge_sequential(&finish_metrics);
        edges.extend(chosen);
        edges.sort_unstable();
    }

    let total_weight = edges.iter().map(|&e| wg.weight(e)).sum();
    Ok(MstTradeoffResult {
        edges,
        total_weight,
        route: MstRoute::ControlledPlusCentral,
        metrics,
        k,
    })
}

/// The central finish: elect a leader over a BFS tree, upcast each node's lightest
/// edge per neighboring fragment, complete the MST of the contracted fragment graph
/// at the leader (Kruskal under `(weight, EdgeId)`), downcast the chosen edges.
fn central_finish(
    wg: &WeightedGraph,
    part1: &MstRun,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<(Vec<EdgeId>, Metrics), EngineError> {
    let g = wg.graph();
    let setup = setup_network_with(g, seed, exec)?;
    let mut metrics = setup.metrics;

    // Each node's lightest incident edge per neighboring fragment — the only crossing
    // edges the fragment-graph MST can ever use (the pair MWOE is among them).
    let mut items: Vec<(NodeId, (u64, u64))> = Vec::new();
    for v in g.nodes() {
        let mut best: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();
        for (e, u, w) in wg.incident(v) {
            let (fv, fu) = (part1.fragment[v.index()], part1.fragment[u.index()]);
            if fv == fu {
                continue;
            }
            let cand = (w, e.index() as u64);
            let slot = best.entry(fu).or_insert(cand);
            if cand < *slot {
                *slot = cand;
            }
        }
        items.extend(best.into_values().map(|c| (v, c)));
    }
    let up = treeops::upcast_with(g, &setup.tree, items, exec)?;
    metrics.merge_sequential(&up.metrics);

    // Kruskal on the contracted fragment graph, over all collected candidates (the
    // graph may be disconnected: each BFS-tree root collected its own component's
    // candidates; finishing them together is equivalent, crossing edges don't exist).
    // Fragments are identified by their leader node, so the oracles' UnionFind over
    // node indices contracts them directly.
    let mut cands: Vec<(u64, u64)> = up.at_root.iter().flatten().map(|d| d.payload).collect();
    cands.sort_unstable();
    let mut uf = reference::UnionFind::new(g.n());
    let mut chosen: Vec<EdgeId> = Vec::new();
    for (_, ei) in cands {
        let e = EdgeId::new(ei as usize);
        let (u, v) = g.endpoints(e);
        if uf.union(
            part1.fragment[u.index()].index(),
            part1.fragment[v.index()].index(),
        ) {
            chosen.push(e);
        }
    }

    // Downcast each chosen edge to its canonical lower endpoint, which then notifies
    // its partner across the edge (one extra word per chosen edge, one round).
    let notify: Vec<(NodeId, u64)> = chosen
        .iter()
        .map(|&e| (g.endpoints(e).0, e.index() as u64))
        .collect();
    let down = treeops::downcast_with(g, &setup.tree, notify, exec)?;
    metrics.merge_sequential(&down.metrics);
    let mut connect = Metrics::new(g.m());
    if !chosen.is_empty() {
        connect.rounds = 1;
        for &e in &chosen {
            connect.add_messages(e, 1);
        }
    }
    metrics.merge_sequential(&connect);

    chosen.sort_unstable();
    Ok((chosen, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    fn check_exact(wg: &WeightedGraph, res: &MstTradeoffResult) {
        let want = reference::mst_kruskal(wg);
        assert_eq!(res.edges, want.edges, "k = {}", res.k);
        assert_eq!(res.total_weight, want.total_weight);
    }

    #[test]
    fn all_routes_are_exact() {
        let g = generators::gnp_connected(30, 0.2, 5);
        let wg = WeightedGraph::random_unique_weights(&g, 5);
        for (k, route) in [
            (2, MstRoute::ControlledPlusCentral),
            (6, MstRoute::ControlledPlusCentral),
            (30, MstRoute::MessageOptimal),
            (100, MstRoute::MessageOptimal),
        ] {
            let res = mst_tradeoff(&wg, k, 31).unwrap();
            assert_eq!(res.route, route, "k = {k}");
            check_exact(&wg, &res);
        }
    }

    #[test]
    fn tie_heavy_and_structured_graphs_exact_at_sqrt_n() {
        for (i, g) in [
            generators::grid(6, 5),
            generators::caveman(5, 6),
            generators::barbell(8, 6),
        ]
        .into_iter()
        .enumerate()
        {
            let wg = WeightedGraph::random_weights(&g, 1..=6, 7 + i as u64);
            let k = (g.n() as f64).sqrt().ceil() as usize;
            let res = mst_tradeoff(&wg, k, 7).unwrap();
            check_exact(&wg, &res);
        }
    }

    #[test]
    fn central_route_also_handles_disconnected_graphs() {
        let g = congest_graph::Graph::from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (8, 9),
                (9, 10),
                (10, 11),
                (11, 8),
            ],
        );
        let wg = WeightedGraph::random_unique_weights(&g, 3);
        let res = mst_tradeoff(&wg, 2, 3).unwrap();
        check_exact(&wg, &res);
    }

    #[test]
    fn k_equals_n_is_the_message_optimal_end() {
        // The headline shape: across families, the pure-GHS end (k = n) spends the
        // fewest messages — moving k down buys rounds with extra collection traffic.
        for g in [
            generators::path(64),
            generators::complete(48),
            generators::gnp_connected(64, 0.15, 9),
            generators::caveman(8, 8),
        ] {
            let wg = WeightedGraph::random_unique_weights(&g, 11);
            let small = mst_tradeoff(&wg, 2, 1).unwrap();
            let big = mst_tradeoff(&wg, g.n(), 1).unwrap();
            check_exact(&wg, &small);
            check_exact(&wg, &big);
            assert!(
                small.metrics.messages > big.metrics.messages,
                "messages: k=2 {} vs k=n {} on {g:?}",
                small.metrics.messages,
                big.metrics.messages
            );
        }
    }

    #[test]
    fn small_k_buys_rounds_on_dense_graphs() {
        // Dense + shallow: the central finish is round-cheap (BFS tree of depth 1)
        // while full GHS merging pays fragment-tree depth for every phase.
        let g = generators::complete(48);
        let wg = WeightedGraph::random_unique_weights(&g, 11);
        let small = mst_tradeoff(&wg, 2, 1).unwrap();
        let big = mst_tradeoff(&wg, g.n(), 1).unwrap();
        assert!(
            small.metrics.rounds < big.metrics.rounds,
            "rounds: k=2 {} vs k=n {}",
            small.metrics.rounds,
            big.metrics.rounds
        );
    }
}
