//! **Theorem 3.10** — the improved simulation for `ε ≥ 1/2` (paper §3.2.2), where
//! the pruned hierarchy has at most three levels: singletons, *star clusters*
//! (depth ≤ 1), and the all-dropped top level.
//!
//! The send step differs from the general simulation:
//!
//! * `L₁` nodes broadcast directly over all their incident edges (Lemma 3.16: all of
//!   them are inter-communication edges);
//! * star-cluster broadcasters send to their center, which computes a **maximal
//!   matching** `M(C, C′)` towards every neighboring star cluster and, per matched
//!   edge, routes an identity packet `m₁ = (w, m_w)` plus an aggregate packet
//!   `m₂ = agg(B_p(u) ∩ C)` through the matched edge;
//! * (deviation documented in DESIGN.md §2) singleton `F₁`-edges owned by `L₁` nodes
//!   receive the broadcast of their star endpoint directly — the level-0 duty of the
//!   general simulation — closing the star→`L₁` gap the paper's prose leaves open.
//!
//! The receive and compute steps match the general simulation. Congestion over star
//! edges per phase is `Õ(n^{1-ε})` (Lemma 3.18), which is what buys the faster
//! phases and, through Lemma 3.22, the round-optimal end of the trade-off.

use crate::simulate::common::{dedupe_msgs, input_words, Pad, SimulationRun, Stepper};
use congest_algos::leader::setup_network_with;
use congest_decomp::Hierarchy;
use congest_engine::{
    downcast_with, upcast_with, AggregationAlgorithm, EngineError, Forest, Metrics, Wire,
};
use congest_graph::{ClusterId, EdgeId, Graph, NodeId};

pub use super::agg_general::AggSimOptions;

/// Simulates the aggregation-based `algo` over `g` using a pruned hierarchy with
/// parameter `ε ≥ 1/2` (κ ≤ 2), per Theorem 3.10.
///
/// # Errors
///
/// Returns [`EngineError::RoundLimitExceeded`] on a diverging payload; propagates
/// preprocessing errors. Panics if the hierarchy has more than three levels (use
/// [`super::agg_general::simulate_aggregation_general`] for smaller ε).
pub fn simulate_aggregation_star<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    h: &Hierarchy,
    opts: &AggSimOptions,
) -> Result<SimulationRun<A::Output>, EngineError>
where
    A: AggregationAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    assert!(
        h.kappa <= 2,
        "the star simulation needs ε ≥ 1/2 (κ ≤ 2); got κ = {}",
        h.kappa
    );
    let n = g.n();
    let mut metrics = Metrics::new(g.m());

    // ---- Preprocessing (identical to the general simulation) ----
    let setup = setup_network_with(g, opts.seed, &opts.exec)?;
    metrics.merge_sequential(&setup.metrics);
    if opts.charge_hierarchy {
        metrics.merge_sequential(&h.metrics);
    }
    let star_level = (h.levels.len() > 1).then(|| &h.levels[1]);
    let star_forest: Option<Forest> = match star_level {
        Some(lvl) => Some(Forest::from_parents(g, lvl.parent.clone())?),
        None => None,
    };
    if let (Some(lvl), Some(forest)) = (star_level, star_forest.as_ref()) {
        let items: Vec<(NodeId, Pad)> = g
            .nodes()
            .filter(|v| lvl.cluster_of[v.index()].is_some())
            .map(|v| (v, Pad(g.degree(v) + 1)))
            .collect();
        if !items.is_empty() {
            let up = upcast_with(g, forest, items, &opts.exec)?;
            metrics.merge_sequential(&up.metrics);
        }
    }
    // Level-0 duty edges: F₁ edges grouped by their star-side endpoint.
    let mut duty_of: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n]; // endpoint -> (owner, edge)
    if h.levels.len() > 1 {
        for f in &h.levels[1].f_edges {
            duty_of[f.other.index()].push((f.owner, f.edge));
        }
    }
    let in_l1: Vec<bool> = (0..n).map(|v| h.dropout[v] == 1).collect();
    let preprocessing = metrics.clone();

    let mut stepper = Stepper::new(algo, g, weights, opts.seed).with_exec(opts.exec.clone());
    let limit = opts
        .max_phases
        .unwrap_or_else(|| 4 * algo.round_bound(n, g.m()) + 64);

    let mut phase = 0usize;
    let mut simulated_rounds = 0usize;
    loop {
        if phase > limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: algo.name(),
                limit,
            });
        }
        let broadcasters = stepper.collect_broadcasts(phase);
        let mut phase_cost = Metrics::new(g.m());
        let mut raw_packets: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        let mut direct_packets: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        let mut receive_packets: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        let mut star_arrivals: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];

        if !broadcasters.is_empty() {
            let mut bp: Vec<Option<A::Msg>> = vec![None; n];
            for (v, m) in &broadcasters {
                bp[v.index()] = Some(m.clone());
            }

            // ---- Send: L₁ broadcasters use all incident edges; star-endpoint
            //      duty edges deliver their endpoint's broadcast. One round. ----
            {
                let mut step = Metrics::new(g.m());
                step.rounds = 1;
                for (v, m) in &broadcasters {
                    if in_l1[v.index()] {
                        for (e, u) in g.incident(*v) {
                            step.add_messages(e, 1);
                            raw_packets[u.index()].push((*v, m.clone()));
                        }
                    }
                }
                for (w, duties) in duty_of.iter().enumerate() {
                    if in_l1[w] {
                        continue; // L₁ endpoints already broadcast everywhere
                    }
                    if let Some(m) = &bp[w] {
                        for &(owner, e) in duties {
                            step.add_messages(e, 1);
                            raw_packets[owner.index()].push((NodeId::new(w), m.clone()));
                        }
                    }
                }
                phase_cost.merge_sequential(&step);
            }

            // ---- Star-cluster machinery ----
            if let (Some(lvl), Some(forest)) = (star_level, star_forest.as_ref()) {
                // Broadcasting members send to their center (upcast: depth ≤ 1).
                let to_center: Vec<(NodeId, Pad)> = broadcasters
                    .iter()
                    .filter(|(v, _)| lvl.cluster_of[v.index()].is_some())
                    .map(|(v, _)| (*v, Pad(1)))
                    .collect();
                if !to_center.is_empty() {
                    let up = upcast_with(g, forest, to_center, &opts.exec)?;
                    phase_cost.merge_sequential(&up.metrics);
                }

                // Per cluster: matchings to every neighboring star cluster.
                let mut down_items: Vec<(NodeId, Pad)> = Vec::new();
                let mut forwards: Vec<(EdgeId, usize)> = Vec::new();
                for (ci, (_center, members)) in lvl.clusters.iter().enumerate() {
                    let cid = ClusterId::new(ci);
                    let senders: Vec<NodeId> = members
                        .iter()
                        .copied()
                        .filter(|v| bp[v.index()].is_some())
                        .collect();
                    if senders.is_empty() {
                        continue;
                    }
                    // Candidate matching edges, grouped by neighboring cluster.
                    let mut by_target: Vec<(ClusterId, Vec<(NodeId, NodeId)>)> = Vec::new();
                    for &w in &senders {
                        for &u in g.neighbors(w) {
                            let Some(cu) = lvl.cluster_of[u.index()] else {
                                continue;
                            };
                            if cu == cid {
                                continue;
                            }
                            match by_target.iter_mut().find(|(c, _)| *c == cu) {
                                Some((_, v)) => v.push((w, u)),
                                None => by_target.push((cu, vec![(w, u)])),
                            }
                        }
                    }
                    for (_, mut cand) in by_target {
                        cand.sort_unstable();
                        let mut used_w = vec![];
                        let mut used_u = vec![];
                        for (w, u) in cand {
                            if used_w.contains(&w) || used_u.contains(&u) {
                                continue;
                            }
                            used_w.push(w);
                            used_u.push(u);
                            // m₁: identity packet; m₂: aggregate for u over C.
                            let msgs: Vec<(NodeId, A::Msg)> = g
                                .neighbors(u)
                                .iter()
                                .filter(|x| lvl.cluster_of[x.index()] == Some(cid))
                                .filter_map(|x| bp[x.index()].clone().map(|m| (*x, m)))
                                .collect();
                            let agg = algo.aggregate(u, phase, msgs);
                            let m1 = bp[w.index()].clone().expect("w is a sender");
                            let words =
                                1 + agg.iter().map(|(_, m)| m.words().max(1)).sum::<usize>();
                            down_items.push((w, Pad(words)));
                            let e = g.edge_between(w, u).expect("matched pairs are edges");
                            forwards.push((e, words));
                            star_arrivals[u.index()].push((w, m1));
                            direct_packets[u.index()].extend(agg);
                        }
                    }
                }
                if !down_items.is_empty() {
                    let down = downcast_with(g, forest, down_items, &opts.exec)?;
                    phase_cost.merge_sequential(&down.metrics);
                }
                if !forwards.is_empty() {
                    let mut step = Metrics::new(g.m());
                    step.rounds = 1;
                    for (e, w) in forwards {
                        step.add_messages(e, w as u64);
                    }
                    phase_cost.merge_sequential(&step);
                }

                // ---- Receive step: members upcast m₁ arrivals + own broadcasts;
                //      centers downcast per-member aggregates. ----
                let mut avail: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); lvl.clusters.len()];
                let mut up_items: Vec<(NodeId, Pad)> = Vec::new();
                for v in g.nodes() {
                    let Some(c) = lvl.cluster_of[v.index()] else {
                        continue;
                    };
                    let mut words = 0usize;
                    if let Some(m) = &bp[v.index()] {
                        avail[c.index()].push((v, m.clone()));
                        words += 1;
                    }
                    if !star_arrivals[v.index()].is_empty() {
                        avail[c.index()].extend(star_arrivals[v.index()].iter().cloned());
                        words += star_arrivals[v.index()].len();
                    }
                    if words > 0 {
                        up_items.push((v, Pad(words)));
                    }
                }
                if !up_items.is_empty() {
                    let up = upcast_with(g, forest, up_items, &opts.exec)?;
                    phase_cost.merge_sequential(&up.metrics);
                }
                let mut down2: Vec<(NodeId, Pad)> = Vec::new();
                for (ci, msgs) in avail.iter().enumerate() {
                    if msgs.is_empty() {
                        continue;
                    }
                    for &u in &lvl.clusters[ci].1 {
                        let relevant: Vec<(NodeId, A::Msg)> = msgs
                            .iter()
                            .filter(|(v, _)| *v != u && g.has_edge(*v, u))
                            .cloned()
                            .collect();
                        if relevant.is_empty() {
                            continue;
                        }
                        let agg = algo.aggregate(u, phase, relevant);
                        if agg.is_empty() {
                            continue;
                        }
                        let words: usize = agg.iter().map(|(_, m)| m.words().max(1)).sum();
                        down2.push((u, Pad(words)));
                        receive_packets[u.index()].extend(agg);
                    }
                }
                if !down2.is_empty() {
                    let down = downcast_with(g, forest, down2, &opts.exec)?;
                    phase_cost.merge_sequential(&down.metrics);
                }
            }
        }
        metrics.merge_sequential(&phase_cost);

        // ---- Compute ----
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        for u in 0..n {
            let mut all = std::mem::take(&mut raw_packets[u]);
            all.extend(std::mem::take(&mut direct_packets[u]));
            all.extend(std::mem::take(&mut receive_packets[u]));
            if all.is_empty() {
                continue;
            }
            inboxes[u] = dedupe_msgs(all);
        }
        let any = stepper.deliver(phase, inboxes);
        if !broadcasters.is_empty() || any {
            simulated_rounds = phase + 1;
            phase += 1;
            continue;
        }
        match stepper.next_activity(phase + 1) {
            Some(next) => phase = next,
            None => break,
        }
    }

    let (outputs, output_words) = stepper.outputs();
    Ok(SimulationRun {
        outputs,
        metrics,
        preprocessing,
        simulated_rounds,
        simulated_broadcasts: stepper.broadcasts,
        input_words: input_words(g),
        output_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algos::bfs_collection::BfsCollection;
    use congest_decomp::pruning::prune;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::generators;

    fn pruned(g: &Graph, eps: f64, seed: u64) -> Hierarchy {
        let h = Hierarchy::build(g, eps, seed);
        prune(g, &h)
    }

    #[test]
    fn star_sim_equals_direct_for_bfs_collection() {
        for &eps in &[0.5, 0.75, 1.0] {
            let g = generators::gnp_connected(26, 0.15, 8);
            let h = pruned(&g, eps, 81);
            let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(6);
            let direct = run_bcongest(
                &algo,
                &g,
                None,
                &RunOptions {
                    seed: 17,
                    ..Default::default()
                },
            )
            .unwrap();
            let sim = simulate_aggregation_star(
                &algo,
                &g,
                None,
                &h,
                &AggSimOptions {
                    seed: 17,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(sim.outputs, direct.outputs, "eps = {eps}");
        }
    }

    #[test]
    fn star_sim_on_structured_graphs() {
        for (i, g) in [
            generators::grid(5, 5),
            generators::caveman(4, 6),
            generators::star(20),
        ]
        .iter()
        .enumerate()
        {
            let h = pruned(g, 0.5, 90 + i as u64);
            let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(2);
            let direct = run_bcongest(
                &algo,
                g,
                None,
                &RunOptions {
                    seed: 23,
                    ..Default::default()
                },
            )
            .unwrap();
            let sim = simulate_aggregation_star(
                &algo,
                g,
                None,
                &h,
                &AggSimOptions {
                    seed: 23,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(sim.outputs, direct.outputs, "family {i}");
        }
    }

    #[test]
    #[should_panic(expected = "star simulation needs")]
    fn rejects_small_epsilon() {
        let g = generators::path(6);
        let h = pruned(&g, 0.25, 1);
        let algo = BfsCollection::new(vec![NodeId::new(0)]);
        let _ = simulate_aggregation_star(&algo, &g, None, &h, &AggSimOptions::default());
    }
}
