//! **Theorem 3.9** — the general message-time trade-off simulation of
//! aggregation-based BCONGEST algorithms over a pruned Baswana–Sen cluster
//! hierarchy (paper §3.2.1).
//!
//! Nodes keep their own states (unlike Theorem 2.1). Each phase simulates one round
//! of the payload with three steps:
//!
//! * **indirect send** — every broadcaster sends `(v, m_v)` over its `F*` edges;
//! * **direct (aggregate) send** — broadcasters upcast `m_v` in every cluster tree
//!   containing them; each cluster center computes, for every outside node `u` with
//!   an inter-communication edge into the cluster, the aggregate of the messages of
//!   broadcasting members adjacent to `u`, downcasts the packet to the edge's
//!   endpoint, which forwards it to `u` (level-0 singleton clusters degenerate to
//!   the node itself sending its message over the edge);
//! * **receive** — indirect arrivals and member broadcasts are upcast; centers
//!   downcast one per-member aggregate packet.
//!
//! The compute step takes the union of all packets (Definition 3.1's
//! partition-invariance makes this equal to receiving every raw message), so with
//! one seed the simulated outputs equal a direct run's (Lemma 3.14; asserted by the
//! integration tests).

use crate::simulate::common::{dedupe_msgs, input_words, Pad, SimulationRun, Stepper};
use congest_algos::leader::setup_network_with;
use congest_decomp::{Hierarchy, Level};
use congest_engine::{
    downcast_with, upcast_with, AggregationAlgorithm, EngineError, Forest, Metrics, Wire,
};
use congest_graph::{ClusterId, EdgeId, Graph, NodeId};

/// Options for the Theorem 3.9 / 3.10 simulations.
#[derive(Clone, Debug)]
pub struct AggSimOptions {
    /// Master seed (same role as in the direct runner).
    pub seed: u64,
    /// Include the hierarchy's accounted construction cost in the preprocessing
    /// metrics (on by default; turn off when the hierarchy is shared across runs,
    /// e.g. in the Lemma 3.23 batches, and accounted once by the caller).
    pub charge_hierarchy: bool,
    /// Phase guard; defaults to `4 × round_bound + 64`.
    pub max_phases: Option<usize>,
    /// How per-node phases execute (stepper and preprocessing runs). Outputs
    /// and metrics are identical at every thread count.
    pub exec: congest_engine::ExecutorConfig,
}

impl Default for AggSimOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            charge_hierarchy: true,
            max_phases: None,
            exec: congest_engine::ExecutorConfig::default(),
        }
    }
}

/// An inter-communication edge pointing into a cluster: `(outside owner, inside
/// endpoint, edge)`.
#[derive(Clone, Copy, Debug)]
struct InEdge {
    owner: NodeId,
    endpoint: NodeId,
    edge: EdgeId,
}

/// Preprocessed hierarchy structures reused across phases.
struct Runtime {
    /// Per level ≥ 1: the forest of its cluster trees.
    forests: Vec<Option<Forest>>,
    /// Per level `j`, per cluster: the `F*_{j+1}` edges pointing into it.
    r_in: Vec<Vec<Vec<InEdge>>>,
    /// Per node: its `F*` edges (at its drop-out level).
    f_of: Vec<Vec<(EdgeId, NodeId, usize, ClusterId)>>, // (edge, other, target level, target)
}

impl Runtime {
    fn build(g: &Graph, h: &Hierarchy) -> Result<Self, EngineError> {
        let mut forests = vec![None];
        for lvl in &h.levels[1..] {
            forests.push(Some(Forest::from_parents(g, lvl.parent.clone())?));
        }
        let mut r_in: Vec<Vec<Vec<InEdge>>> = h
            .levels
            .iter()
            .map(|lvl| vec![Vec::new(); lvl.clusters.len().max(g.n())])
            .collect();
        let mut f_of: Vec<Vec<(EdgeId, NodeId, usize, ClusterId)>> = vec![Vec::new(); g.n()];
        for (li, f) in h.all_f_edges() {
            // F*_li points into clusters of level li-1.
            r_in[li - 1][f.target.index()].push(InEdge {
                owner: f.owner,
                endpoint: f.other,
                edge: f.edge,
            });
            f_of[f.owner.index()].push((f.edge, f.other, li - 1, f.target));
        }
        Ok(Self {
            forests,
            r_in,
            f_of,
        })
    }
}

/// Simulates the aggregation-based `algo` over `g` using pruned hierarchy `h`
/// (Theorem 3.9).
///
/// # Errors
///
/// Returns [`EngineError::RoundLimitExceeded`] on a diverging payload; propagates
/// preprocessing errors.
pub fn simulate_aggregation_general<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    h: &Hierarchy,
    opts: &AggSimOptions,
) -> Result<SimulationRun<A::Output>, EngineError>
where
    A: AggregationAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let n = g.n();
    let mut metrics = Metrics::new(g.m());

    // ---- Preprocessing ----
    let setup = setup_network_with(g, opts.seed, &opts.exec)?;
    metrics.merge_sequential(&setup.metrics);
    if opts.charge_hierarchy {
        metrics.merge_sequential(&h.metrics);
    }
    let rt = Runtime::build(g, h)?;
    // Per-level upcast of member neighborhoods to cluster centers (§3.2.1 step 2).
    for (li, lvl) in h.levels.iter().enumerate().skip(1) {
        let forest = rt.forests[li].as_ref().expect("built for levels >= 1");
        let items: Vec<(NodeId, Pad)> = g
            .nodes()
            .filter(|v| lvl.cluster_of[v.index()].is_some())
            .map(|v| (v, Pad(g.degree(v) + 1)))
            .collect();
        if !items.is_empty() {
            let up = upcast_with(g, forest, items, &opts.exec)?;
            metrics.merge_sequential(&up.metrics);
        }
    }
    let preprocessing = metrics.clone();

    let mut stepper = Stepper::new(algo, g, weights, opts.seed).with_exec(opts.exec.clone());
    let limit = opts
        .max_phases
        .unwrap_or_else(|| 4 * algo.round_bound(n, g.m()) + 64);

    let mut phase = 0usize;
    let mut simulated_rounds = 0usize;
    loop {
        if phase > limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: algo.name(),
                limit,
            });
        }
        let broadcasters = stepper.collect_broadcasts(phase);
        let mut phase_cost = Metrics::new(g.m());
        let mut direct_packets: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        let mut receive_packets: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];

        if !broadcasters.is_empty() {
            let mut bp: Vec<Option<A::Msg>> = vec![None; n];
            for (v, m) in &broadcasters {
                bp[v.index()] = Some(m.clone());
            }

            // ---- Indirect send over F* edges ----
            let mut indirect_at: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
            {
                let mut step = Metrics::new(g.m());
                step.rounds = 1;
                for (v, m) in &broadcasters {
                    for &(edge, other, _, _) in &rt.f_of[v.index()] {
                        step.add_messages(edge, 1);
                        indirect_at[other.index()].push((*v, m.clone()));
                    }
                }
                phase_cost.merge_sequential(&step);
            }

            // ---- Direct (aggregate) send ----
            // (a) broadcasters upcast their message in every containing cluster tree.
            for (li, lvl) in h.levels.iter().enumerate().skip(1) {
                let items: Vec<(NodeId, Pad)> = broadcasters
                    .iter()
                    .filter(|(v, _)| lvl.cluster_of[v.index()].is_some())
                    .map(|(v, _)| (*v, Pad(1)))
                    .collect();
                if !items.is_empty() {
                    let forest = rt.forests[li].as_ref().expect("level forest");
                    let up = upcast_with(g, forest, items, &opts.exec)?;
                    phase_cost.merge_sequential(&up.metrics);
                }
            }
            // (b) per level, centers aggregate for R(C) and route packets.
            for (lj, lvl) in h.levels.iter().enumerate() {
                if lj >= rt.r_in.len() {
                    break;
                }
                let mut down_items: Vec<(NodeId, Pad)> = Vec::new();
                let mut forwards: Vec<(EdgeId, usize)> = Vec::new();
                for (ci, ins) in rt.r_in[lj].iter().enumerate() {
                    if ins.is_empty() {
                        continue;
                    }
                    let cid = ClusterId::new(ci);
                    for ie in ins {
                        let msgs: Vec<(NodeId, A::Msg)> = g
                            .neighbors(ie.owner)
                            .iter()
                            .filter(|x| lvl.cluster_of[x.index()] == Some(cid))
                            .filter_map(|x| bp[x.index()].clone().map(|m| (*x, m)))
                            .collect();
                        if msgs.is_empty() {
                            continue;
                        }
                        let agg = algo.aggregate(ie.owner, phase, msgs);
                        if agg.is_empty() {
                            continue;
                        }
                        let words: usize = agg.iter().map(|(_, m)| m.words().max(1)).sum();
                        debug_assert!(
                            words <= algo.aggregate_budget(n),
                            "aggregate exceeded its budget"
                        );
                        if lj >= 1 {
                            down_items.push((ie.endpoint, Pad(words)));
                        }
                        forwards.push((ie.edge, words));
                        direct_packets[ie.owner.index()].extend(agg);
                    }
                }
                if !down_items.is_empty() {
                    let forest = rt.forests[lj].as_ref().expect("level forest");
                    let down = downcast_with(g, forest, down_items, &opts.exec)?;
                    phase_cost.merge_sequential(&down.metrics);
                }
                if !forwards.is_empty() {
                    let mut step = Metrics::new(g.m());
                    step.rounds = 1;
                    for (e, w) in forwards {
                        step.add_messages(e, w as u64);
                    }
                    phase_cost.merge_sequential(&step);
                }
            }

            // ---- Receive step ----
            // Members upcast indirect arrivals and their own broadcasts; centers
            // downcast one aggregate per member. Level 0 degenerates to local work.
            for (li, lvl) in h.levels.iter().enumerate() {
                if li == h.levels.len() - 1 && lvl.clusters.is_empty() {
                    break;
                }
                // Cluster-local available messages.
                let mut avail: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); lvl.clusters.len()];
                let mut up_items: Vec<(NodeId, Pad)> = Vec::new();
                for v in g.nodes() {
                    let Some(c) = lvl.cluster_of[v.index()] else {
                        continue;
                    };
                    let mut words = 0usize;
                    if let Some(m) = &bp[v.index()] {
                        avail[c.index()].push((v, m.clone()));
                        words += 1;
                    }
                    if !indirect_at[v.index()].is_empty() {
                        avail[c.index()].extend(indirect_at[v.index()].iter().cloned());
                        words += indirect_at[v.index()].len();
                    }
                    if words > 0 && li >= 1 {
                        up_items.push((v, Pad(words)));
                    }
                }
                if li >= 1 && !up_items.is_empty() {
                    let forest = rt.forests[li].as_ref().expect("level forest");
                    let up = upcast_with(g, forest, up_items, &opts.exec)?;
                    phase_cost.merge_sequential(&up.metrics);
                }
                let mut down_items: Vec<(NodeId, Pad)> = Vec::new();
                for (ci, msgs) in avail.iter().enumerate() {
                    if msgs.is_empty() {
                        continue;
                    }
                    let cid = ClusterId::new(ci);
                    for &u in &lvl.clusters[ci].1 {
                        let relevant: Vec<(NodeId, A::Msg)> = msgs
                            .iter()
                            .filter(|(v, _)| *v != u && g.has_edge(*v, u))
                            .cloned()
                            .collect();
                        if relevant.is_empty() {
                            continue;
                        }
                        let agg = algo.aggregate(u, phase, relevant);
                        if agg.is_empty() {
                            continue;
                        }
                        let words: usize = agg.iter().map(|(_, m)| m.words().max(1)).sum();
                        if li >= 1 {
                            down_items.push((u, Pad(words)));
                        }
                        receive_packets[u.index()].extend(agg);
                        let _ = cid;
                    }
                }
                if li >= 1 && !down_items.is_empty() {
                    let forest = rt.forests[li].as_ref().expect("level forest");
                    let down = downcast_with(g, forest, down_items, &opts.exec)?;
                    phase_cost.merge_sequential(&down.metrics);
                }
            }
        }
        metrics.merge_sequential(&phase_cost);

        // ---- Compute ----
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        for u in 0..n {
            let mut all = std::mem::take(&mut direct_packets[u]);
            all.extend(std::mem::take(&mut receive_packets[u]));
            if all.is_empty() {
                continue;
            }
            inboxes[u] = dedupe_msgs(all);
        }
        let any = stepper.deliver(phase, inboxes);
        if !broadcasters.is_empty() || any {
            simulated_rounds = phase + 1;
            phase += 1;
            continue;
        }
        match stepper.next_activity(phase + 1) {
            Some(next) => phase = next,
            None => break,
        }
    }

    let (outputs, output_words) = stepper.outputs();
    Ok(SimulationRun {
        outputs,
        metrics,
        preprocessing,
        simulated_rounds,
        simulated_broadcasts: stepper.broadcasts,
        input_words: input_words(g),
        output_words,
    })
}

/// Convenience view: which levels an ℓ-node belongs to (used by tests).
pub fn membership_levels(h: &Hierarchy, v: NodeId) -> Vec<usize> {
    h.levels
        .iter()
        .filter(|lvl: &&Level| lvl.cluster_of[v.index()].is_some())
        .map(|lvl| lvl.index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algos::bfs_collection::BfsCollection;
    use congest_decomp::pruning::prune;
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::generators;

    fn pruned(g: &Graph, eps: f64, seed: u64) -> Hierarchy {
        let h = Hierarchy::build(g, eps, seed);
        prune(g, &h)
    }

    #[test]
    fn bfs_collection_simulated_equals_direct() {
        for &eps in &[0.34, 0.5, 1.0] {
            let g = generators::gnp_connected(24, 0.15, 7);
            let h = pruned(&g, eps, 71);
            let algo = BfsCollection::new(g.nodes().collect()).with_random_delays(5);
            let direct = run_bcongest(
                &algo,
                &g,
                None,
                &RunOptions {
                    seed: 13,
                    ..Default::default()
                },
            )
            .unwrap();
            let sim = simulate_aggregation_general(
                &algo,
                &g,
                None,
                &h,
                &AggSimOptions {
                    seed: 13,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(sim.outputs, direct.outputs, "eps = {eps}");
            assert_eq!(sim.simulated_broadcasts, direct.metrics.broadcasts);
        }
    }

    #[test]
    fn depth_limited_collection_equals_direct() {
        let g = generators::grid(5, 5);
        let h = pruned(&g, 0.5, 3);
        let algo = BfsCollection::new(g.nodes().collect())
            .with_depth_limit(3)
            .with_random_delays(9);
        let direct = run_bcongest(
            &algo,
            &g,
            None,
            &RunOptions {
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let sim = simulate_aggregation_general(
            &algo,
            &g,
            None,
            &h,
            &AggSimOptions {
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sim.outputs, direct.outputs);
    }

    #[test]
    fn membership_levels_shrink_with_dropout() {
        let g = generators::gnp_connected(30, 0.2, 2);
        let h = pruned(&g, 0.34, 2);
        for v in g.nodes() {
            let lv = membership_levels(&h, v);
            assert_eq!(lv.len(), h.dropout[v.index()]);
        }
    }
}
