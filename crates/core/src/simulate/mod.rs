//! The paper's simulation theorems, executable:
//!
//! * [`ldc_sim`] — **Theorem 2.1**: any BCONGEST algorithm, message cost
//!   `Õ(In + Out + B)`;
//! * [`agg_general`] — **Theorem 3.9**: aggregation-based algorithms over a pruned
//!   Baswana–Sen hierarchy, any `ε ∈ [1/Θ(log n), 1]`;
//! * [`agg_star`] — **Theorem 3.10**: the faster `ε ≥ 1/2` star-cluster variant.
//!
//! All three produce outputs identical to a direct run with the same seed — the
//! executable counterpart of Lemmas 2.5 / 3.14 / 3.20.

pub mod agg_general;
pub mod agg_star;
pub mod common;
pub mod ldc_sim;

pub use agg_general::{simulate_aggregation_general, AggSimOptions};
pub use agg_star::simulate_aggregation_star;
pub use common::{SimulationRun, Stepper};
pub use ldc_sim::{simulate_bcongest_via_ldc, LdcSimOptions};
