//! Shared plumbing for the three simulation theorems: the simulated-algorithm
//! stepper (state array + broadcast collection + idle-skipping, mirroring the
//! direct runner's semantics exactly) and the padding payload used to account
//! multi-word transfers.

use congest_engine::{exec, BcongestAlgorithm, ExecutorConfig, LocalView, Metrics, Wire};
use congest_graph::{rng, Graph, NodeId};

/// An opaque payload of a known size in words — used when the *content* of a
/// transfer is tracked separately (e.g. cluster centers already hold the data) but
/// its transport must be paid for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pad(pub usize);

impl Wire for Pad {
    fn words(&self) -> usize {
        self.0.max(1)
    }
}

/// Outcome of a simulated execution (Theorems 2.1, 3.9, 3.10).
#[derive(Clone, Debug)]
pub struct SimulationRun<O> {
    /// Per-node outputs — identical to a direct run with the same seed.
    pub outputs: Vec<O>,
    /// Total realized cost (preprocessing + simulation).
    pub metrics: Metrics,
    /// Preprocessing cost alone.
    pub preprocessing: Metrics,
    /// Number of simulated rounds (phases executed, counting idle-skipped ones).
    pub simulated_rounds: usize,
    /// Broadcast complexity `B_A` of the simulated execution.
    pub simulated_broadcasts: u64,
    /// `In` (words): inputs over all nodes.
    pub input_words: usize,
    /// `Out` (words): outputs over all nodes.
    pub output_words: usize,
}

/// Steps the states of a simulated BCONGEST algorithm, phase by phase, with exactly
/// the direct runner's semantics (so simulated outputs are bit-identical).
///
/// The per-node phases honor an [`ExecutorConfig`] (see [`Stepper::with_exec`]):
/// the pure broadcast scan, the receive transitions, and the idle scan shard
/// nodes into contiguous chunks and merge in fixed node order, exactly like the
/// direct runner — so simulated outputs stay bit-identical at every thread count.
pub struct Stepper<'a, A: BcongestAlgorithm> {
    algo: &'a A,
    /// Simulated per-node states.
    pub states: Vec<A::State>,
    /// Broadcast count so far.
    pub broadcasts: u64,
    /// How the per-node phases execute (sequential by default).
    exec: ExecutorConfig,
}

impl<'a, A> Stepper<'a, A>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    /// Initializes states with the same per-node seeds the direct runner would use.
    pub fn new(algo: &'a A, g: &Graph, weights: Option<&[u64]>, seed: u64) -> Self {
        let states = (0..g.n())
            .map(|i| {
                let view = LocalView::new(g, weights, NodeId::new(i), rng::node_seed(seed, i));
                algo.init(&view)
            })
            .collect();
        Self {
            algo,
            states,
            broadcasts: 0,
            exec: ExecutorConfig::sequential(),
        }
    }

    /// Sets the executor used for the per-node phases.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecutorConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Collects this phase's broadcasts and applies the send transitions.
    pub fn collect_broadcasts(&mut self, round: usize) -> Vec<(NodeId, A::Msg)> {
        let algo = self.algo;
        let out: Vec<(NodeId, A::Msg)> = exec::map_chunks(&self.exec, &self.states, {
            |start, chunk| {
                let mut batch = Vec::new();
                for (off, st) in chunk.iter().enumerate() {
                    if let Some(m) = algo.broadcast(st, round) {
                        batch.push((NodeId::new(start + off), m));
                    }
                }
                batch
            }
        })
        .into_iter()
        .flatten()
        .collect();
        for (v, _) in &out {
            self.algo
                .on_broadcast_sent(&mut self.states[v.index()], round);
        }
        self.broadcasts += out.len() as u64;
        out
    }

    /// Delivers per-node inboxes (only non-empty ones, like the direct runner).
    /// Returns whether anything was delivered.
    pub fn deliver(&mut self, round: usize, mut inboxes: Vec<Vec<(NodeId, A::Msg)>>) -> bool {
        assert_eq!(inboxes.len(), self.states.len(), "one inbox per node");
        let algo = self.algo;
        exec::map_chunks_mut2(&self.exec, &mut self.states, &mut inboxes, {
            |_start, sts, inbs| {
                let mut any = false;
                for (st, inbox) in sts.iter_mut().zip(inbs.iter_mut()) {
                    if !inbox.is_empty() {
                        any = true;
                        algo.receive(st, round, inbox);
                    }
                }
                any
            }
        })
        .into_iter()
        .any(|b| b)
    }

    /// The next simulated round at which anything can happen, absent further input.
    pub fn next_activity(&self, after: usize) -> Option<usize> {
        let algo = self.algo;
        exec::min_chunks(&self.exec, &self.states, |st| algo.next_activity(st, after))
    }

    /// Finalizes outputs and the `Out` word count.
    pub fn outputs(&self) -> (Vec<A::Output>, usize) {
        let outputs: Vec<A::Output> = self.states.iter().map(|s| self.algo.output(s)).collect();
        let words = outputs.iter().map(|o| self.algo.output_words(o)).sum();
        (outputs, words)
    }
}

/// Deduplicates `(sender, message)` pairs — the union step of Definition 3.1 (a
/// message may legitimately arrive through several routes).
pub fn dedupe_msgs<M: Wire>(mut msgs: Vec<(NodeId, M)>) -> Vec<(NodeId, M)> {
    let mut out: Vec<(NodeId, M)> = Vec::with_capacity(msgs.len());
    for (from, m) in msgs.drain(..) {
        if !out.iter().any(|(f, x)| *f == from && *x == m) {
            out.push((from, m));
        }
    }
    out
}

/// Total input words over all nodes (the paper's `In`, in words).
pub fn input_words(g: &Graph) -> usize {
    g.nodes().map(|v| g.degree(v) + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_words() {
        assert_eq!(Pad(0).words(), 1);
        assert_eq!(Pad(5).words(), 5);
    }

    #[test]
    fn dedupe_removes_duplicates() {
        let msgs = vec![
            (NodeId::new(1), 7u64),
            (NodeId::new(1), 7u64),
            (NodeId::new(1), 8u64),
            (NodeId::new(2), 7u64),
        ];
        let out = dedupe_msgs(msgs);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn input_words_is_2m_plus_n() {
        let g = congest_graph::generators::cycle(5);
        assert_eq!(input_words(&g), 2 * 5 + 5);
    }
}
