//! **Theorem 2.1** — the message-efficient simulation of BCONGEST algorithms over an
//! LDC decomposition (paper §2.2).
//!
//! Preprocessing: leader election + node count (§2.2 step 1), an
//! `(O(log n), O(log n))`-LDC decomposition (step 2), and an upcast of every node's
//! input to its cluster center (step 3) — after which each center replicates its
//! members' state machines.
//!
//! Each phase `p` simulates round `p` of the payload: centers compute member
//! broadcasts locally, **downcast** one `(edge, message)` pair per outgoing F-edge of
//! each broadcaster, the pairs cross their inter-cluster edges (one round), and the
//! receiving sides **upcast** them to their centers, which apply the member `receive`
//! transitions. A final downcast delivers outputs. Message complexity is therefore
//! `Õ(In + Out + B_A)` — each simulated broadcast pays `O(log n)` F-edges ×
//! `O(log n)` tree depth rather than `deg(v)`.
//!
//! Correctness (Lemma 2.5) is checked in the strongest possible way: with the same
//! seed, outputs are asserted equal to a direct run's (see the integration tests).

use crate::simulate::common::{input_words, Pad, SimulationRun, Stepper};
use congest_algos::leader::setup_network_with;
use congest_decomp::ldc::{build_ldc, LdcDecomposition};
use congest_engine::{downcast_with, upcast_with, BcongestAlgorithm, EngineError, Forest, Metrics};
use congest_graph::{Graph, NodeId};

/// Options for the Theorem 2.1 simulation.
#[derive(Clone, Debug, Default)]
pub struct LdcSimOptions {
    /// Master seed (drives preprocessing randomness *and* the payload's per-node
    /// seeds — use the same seed as a direct run to compare outputs).
    pub seed: u64,
    /// Pad every phase to the worst-case `Θ(n log n)` budget of §2.2 instead of the
    /// realized schedule length.
    pub strict_phase_budget: bool,
    /// Phase guard; defaults to `4 × round_bound + 64`.
    pub max_phases: Option<usize>,
    /// How per-node phases execute (stepper and preprocessing runs). Outputs
    /// and metrics are identical at every thread count.
    pub exec: congest_engine::ExecutorConfig,
}

/// Simulates `algo` over `g` per Theorem 2.1.
///
/// # Errors
///
/// Returns [`EngineError::RoundLimitExceeded`] if the payload does not quiesce
/// within the phase guard; propagates preprocessing errors.
pub fn simulate_bcongest_via_ldc<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &LdcSimOptions,
) -> Result<SimulationRun<A::Output>, EngineError>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let n = g.n();
    let mut metrics = Metrics::new(g.m());

    // ---- Preprocessing ----
    let setup = setup_network_with(g, opts.seed, &opts.exec)?;
    metrics.merge_sequential(&setup.metrics);

    let ldc: LdcDecomposition = build_ldc(g, opts.seed)?;
    metrics.merge_sequential(&ldc.metrics);
    let forest: Forest = ldc.clustering.forest(g)?;

    // Step 3: upcast every node's input (its incident edge list) to its center.
    let up = upcast_with(
        g,
        &forest,
        g.nodes().map(|v| (v, Pad(g.degree(v) + 1))).collect(),
        &opts.exec,
    )?;
    metrics.merge_sequential(&up.metrics);
    let preprocessing = metrics.clone();

    // Centers now (conceptually) hold all member inputs; replicate member states.
    let mut stepper = Stepper::new(algo, g, weights, opts.seed).with_exec(opts.exec.clone());

    let limit = opts
        .max_phases
        .unwrap_or_else(|| 4 * algo.round_bound(n, g.m()) + 64);
    let phase_budget = phase_budget_rounds(n);

    let mut phase = 0usize;
    let mut simulated_rounds = 0usize;
    loop {
        if phase > limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: algo.name(),
                limit,
            });
        }
        let broadcasters = stepper.collect_broadcasts(phase);

        // Inboxes are exactly the direct run's: every broadcast reaches all
        // neighbors. The LDC decomposition guarantees every (broadcaster, receiving
        // cluster) pair is served by an F-edge (validated at construction), so the
        // transport below pays for precisely this information flow.
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
        for (v, m) in &broadcasters {
            for &u in g.neighbors(*v) {
                inboxes[u.index()].push((*v, m.clone()));
            }
        }

        // Transport accounting: downcast (edge,msg) pairs to F-edge owners,
        // one round of inter-cluster sends, upcast into receiving centers.
        let mut phase_cost = Metrics::new(g.m());
        if !broadcasters.is_empty() {
            let mut down_items = Vec::new();
            let mut up_items = Vec::new();
            for (v, _) in &broadcasters {
                for f in &ldc.f_edges[v.index()] {
                    down_items.push((*v, Pad(1)));
                    up_items.push((f.other, Pad(1)));
                }
            }
            let down = downcast_with(g, &forest, down_items, &opts.exec)?;
            phase_cost.merge_sequential(&down.metrics);
            let mut exchange = Metrics::new(g.m());
            exchange.rounds = 1;
            for (v, _) in &broadcasters {
                for f in &ldc.f_edges[v.index()] {
                    exchange.add_messages(f.edge, 1);
                }
            }
            phase_cost.merge_sequential(&exchange);
            let upc = upcast_with(g, &forest, up_items, &opts.exec)?;
            phase_cost.merge_sequential(&upc.metrics);
        }
        if opts.strict_phase_budget {
            phase_cost.pad_rounds(phase_budget.saturating_sub(phase_cost.rounds));
        }
        metrics.merge_sequential(&phase_cost);

        let any_received = stepper.deliver(phase, inboxes);
        if !broadcasters.is_empty() || any_received {
            simulated_rounds = phase + 1;
            phase += 1;
            continue;
        }
        match stepper.next_activity(phase + 1) {
            Some(next) => phase = next,
            None => break,
        }
    }

    // Final phase: downcast outputs to their nodes.
    let (outputs, output_words) = stepper.outputs();
    let out_items: Vec<(NodeId, Pad)> = g
        .nodes()
        .zip(outputs.iter())
        .map(|(v, o)| (v, Pad(algo.output_words(o))))
        .collect();
    let down = downcast_with(g, &forest, out_items, &opts.exec)?;
    metrics.merge_sequential(&down.metrics);

    Ok(SimulationRun {
        outputs,
        metrics,
        preprocessing,
        simulated_rounds,
        simulated_broadcasts: stepper.broadcasts,
        input_words: input_words(g),
        output_words,
    })
}

/// The §2.2 worst-case phase budget `Θ(n log n)`.
fn phase_budget_rounds(n: usize) -> u64 {
    let log = (usize::BITS - n.max(2).leading_zeros()) as u64;
    n as u64 * log
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algos::bfs::Bfs;
    use congest_algos::mis::{is_valid_mis, LubyMis};
    use congest_engine::{run_bcongest, RunOptions};
    use congest_graph::generators;

    fn direct_opts(seed: u64) -> RunOptions {
        RunOptions {
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn bfs_simulated_equals_direct() {
        let g = generators::gnp_connected(30, 0.12, 3);
        let algo = Bfs::new(NodeId::new(5));
        let direct = run_bcongest(&algo, &g, None, &direct_opts(9)).unwrap();
        let sim = simulate_bcongest_via_ldc(
            &algo,
            &g,
            None,
            &LdcSimOptions {
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sim.outputs, direct.outputs);
        assert_eq!(sim.simulated_broadcasts, direct.metrics.broadcasts);
    }

    #[test]
    fn mis_simulated_equals_direct() {
        let g = generators::gnp_connected(25, 0.15, 4);
        let direct = run_bcongest(&LubyMis, &g, None, &direct_opts(11)).unwrap();
        let sim = simulate_bcongest_via_ldc(
            &LubyMis,
            &g,
            None,
            &LdcSimOptions {
                seed: 11,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sim.outputs, direct.outputs);
        assert!(is_valid_mis(&g, &sim.outputs));
    }

    #[test]
    fn message_complexity_tracks_broadcasts_not_degree() {
        // On a dense graph, direct BFS costs Θ(m) messages; simulated costs
        // Õ(B) = Õ(n) for the phase part (preprocessing is Õ(m) once).
        let g = generators::complete(40);
        let algo = Bfs::new(NodeId::new(0));
        let direct = run_bcongest(&algo, &g, None, &direct_opts(2)).unwrap();
        let sim = simulate_bcongest_via_ldc(
            &algo,
            &g,
            None,
            &LdcSimOptions {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sim.outputs, direct.outputs);
        // Phase-only messages (total - preprocessing) are far below direct's 2m.
        let phase_msgs = sim.metrics.messages - sim.preprocessing.messages;
        assert!(
            phase_msgs < direct.metrics.messages / 2,
            "phase messages {} vs direct {}",
            phase_msgs,
            direct.metrics.messages
        );
    }

    #[test]
    fn strict_budget_pads_rounds() {
        let g = generators::gnp_connected(20, 0.2, 5);
        let algo = Bfs::new(NodeId::new(1));
        let lax = simulate_bcongest_via_ldc(
            &algo,
            &g,
            None,
            &LdcSimOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let strict = simulate_bcongest_via_ldc(
            &algo,
            &g,
            None,
            &LdcSimOptions {
                seed: 5,
                strict_phase_budget: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(lax.outputs, strict.outputs);
        assert!(strict.metrics.rounds > lax.metrics.rounds);
        assert_eq!(strict.metrics.messages, lax.metrics.messages);
    }

    #[test]
    fn round_guard_fires() {
        struct Chatter;
        #[derive(Clone, Debug)]
        struct S;
        impl BcongestAlgorithm for Chatter {
            type State = S;
            type Msg = u32;
            type Output = ();
            fn name(&self) -> &'static str {
                "chatter"
            }
            fn init(&self, _: &congest_engine::LocalView<'_>) -> S {
                S
            }
            fn broadcast(&self, _: &S, _: usize) -> Option<u32> {
                Some(1)
            }
            fn on_broadcast_sent(&self, _: &mut S, _: usize) {}
            fn receive(&self, _: &mut S, _: usize, _: &[(NodeId, u32)]) {}
            fn is_done(&self, _: &S) -> bool {
                false
            }
            fn output(&self, _: &S) {}
            fn round_bound(&self, _: usize, _: usize) -> usize {
                2
            }
            fn output_words(&self, _: &()) -> usize {
                0
            }
        }
        let g = generators::path(4);
        let err =
            simulate_bcongest_via_ldc(&Chatter, &g, None, &LdcSimOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::RoundLimitExceeded { .. }));
    }
}
