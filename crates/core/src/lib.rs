//! # apsp-core
//!
//! The paper's contribution, executable — *"Message Optimality and Message-Time
//! Trade-offs for APSP and Beyond"* (Dufoulon, Pai, Pandurangan, Pemmaraju,
//! Robinson; PODC 2025):
//!
//! * [`simulate`] — the three simulation theorems (2.1, 3.9, 3.10). All produce
//!   outputs bit-identical to direct runs with the same seed;
//! * [`weighted_apsp`] — **Theorem 1.1**: exact weighted APSP in `Õ(n²)` messages;
//! * [`weighted_tradeoff`] — the concluding open question, prototyped: weighted
//!   APSP through the trade-off simulations via a receiver-aware aggregate;
//! * [`bfs_trees`] — **Lemmas 3.22/3.23**: many BFS trees message-efficiently;
//! * [`landmarks`] — the far-pairs landmark step of §3.3;
//! * [`tradeoff`] — **Theorem 1.2**: unweighted APSP in `Õ(n^{2-ε})` rounds and
//!   `Õ(n^{2+ε})` messages for any `ε ∈ [0, 1]`;
//! * [`mst_tradeoff`] — the "Beyond": a `k`-parameterized time–message trade-off for
//!   minimum spanning trees over the controlled-GHS subsystem in `congest_algos`;
//! * [`matching`] — **Corollary 2.8**: maximum bipartite matching in `Õ(n²)` msgs;
//! * [`cover`] — **Corollary 2.9**: `(k,W)`-sparse neighborhood covers;
//! * [`distance`] — the [`distance::DistanceSource`] trait unifying every
//!   distance structure (APSP matrices, landmark sketches, BFS forests)
//!   behind one exact-vs-estimate query signature — what `congest-serve`
//!   serves;
//! * [`verify`] — sequential oracles for all of the above.
//!
//! ## Example: the trade-off in one call
//!
//! ```
//! use congest_graph::generators;
//! use apsp_core::tradeoff::tradeoff_apsp;
//! use apsp_core::verify::check_unweighted_apsp;
//!
//! let g = generators::gnp_connected(20, 0.2, 1);
//! let res = tradeoff_apsp(&g, 0.75, 7).unwrap();
//! check_unweighted_apsp(&g, &res.dist).unwrap();
//! println!("rounds = {}, messages = {}", res.metrics.rounds, res.metrics.messages);
//! ```

pub mod bfs_trees;
pub mod cover;
pub mod distance;
pub mod landmarks;
pub mod matching;
pub mod mst_tradeoff;
pub mod simulate;
pub mod tradeoff;
pub mod verify;
pub mod weighted_apsp;
pub mod weighted_tradeoff;
