//! The landmark step of the `ε ∈ (0, 1/2]` trade-off (paper §3.3, "far pairs"):
//! sample `Θ̃(n^ε)` landmark nodes, run a plain full BFS from each (sequentially),
//! upcast each BFS tree's edge list to its root, and broadcast the tree description
//! to all nodes — after which every node can locally compute its distance to every
//! node *through* any landmark. Any shortest path longer than the sampling scale
//! contains a landmark w.h.p., so far pairs come out exact.

use congest_algos::bfs::{Bfs, BfsOutput};
use congest_engine::{
    run_bcongest, upcast, EngineError, ExecutorConfig, Forest, Metrics, RunOptions,
};
use congest_graph::{rng, Graph, NodeId};
use rand::Rng;

use crate::simulate::common::Pad;

/// Result of the landmark phase.
#[derive(Clone, Debug)]
pub struct LandmarkResult {
    /// The sampled landmarks.
    pub landmarks: Vec<NodeId>,
    /// `through[v][u]` = min over landmarks `l` of `d(v,l) + d(l,u)`.
    pub through: Vec<Vec<Option<u32>>>,
    /// Realized cost: BFS runs + tree upcasts + tree broadcasts.
    pub metrics: Metrics,
}

/// Samples each node as a landmark independently with probability `p` (clamped so at
/// least one landmark exists on non-empty graphs) and computes all
/// landmark-mediated distances.
///
/// # Errors
///
/// Propagates engine errors from the BFS runs.
pub fn landmark_distances(g: &Graph, p: f64, seed: u64) -> Result<LandmarkResult, EngineError> {
    landmark_distances_with(g, p, seed, &ExecutorConfig::default())
}

/// [`landmark_distances`] with the BFS runs' per-node phases executed under
/// `exec` — distances and metrics are identical at every thread count, backend
/// and message plane (the engine's conformance contract), so the executor is a
/// wall-clock knob only.
///
/// # Errors
///
/// Propagates engine errors from the BFS runs.
pub fn landmark_distances_with(
    g: &Graph,
    p: f64,
    seed: u64,
    exec: &ExecutorConfig,
) -> Result<LandmarkResult, EngineError> {
    let n = g.n();
    let mut metrics = Metrics::new(g.m());
    let mut r = rng::seeded(rng::derive(seed, 0x1a9d_0001));
    let mut landmarks: Vec<NodeId> = g.nodes().filter(|_| r.random::<f64>() < p).collect();
    if landmarks.is_empty() && n > 0 {
        landmarks.push(NodeId::new(r.random_range(0..n)));
    }

    let mut per_landmark_dist: Vec<Vec<Option<u32>>> = Vec::with_capacity(landmarks.len());
    for (i, &l) in landmarks.iter().enumerate() {
        // Plain BFS, run on the network (sequentially, as in the paper).
        let run = run_bcongest(
            &Bfs::new(l),
            g,
            None,
            &RunOptions {
                seed: rng::derive(seed, 0x1a9d_1000 + i as u64),
                exec: exec.clone(),
                ..Default::default()
            },
        )?;
        metrics.merge_sequential(&run.metrics);

        // Upcast the BFS tree's edge list to the landmark.
        let parents: Vec<Option<NodeId>> = run.outputs.iter().map(|o| o.parent).collect();
        let forest = Forest::from_parents(g, parents)?;
        let items: Vec<(NodeId, Pad)> = g
            .nodes()
            .filter(|v| forest.parent(*v).is_some())
            .map(|v| (v, Pad(1)))
            .collect();
        let tree_words = items.len();
        if !items.is_empty() {
            let up = upcast(g, &forest, items)?;
            metrics.merge_sequential(&up.metrics);
        }

        // Broadcast the tree description (tree_words words) to every node, pipelined
        // over the BFS tree: `words + depth` rounds, `words` messages per tree edge.
        let mut bcast = Metrics::new(g.m());
        bcast.rounds = tree_words as u64 + u64::from(forest.depth());
        for &e in forest.tree_edges() {
            bcast.add_messages(e, tree_words as u64);
        }
        metrics.merge_sequential(&bcast);

        per_landmark_dist.push(run.outputs.iter().map(|o: &BfsOutput| o.dist).collect());
    }

    // Local combination (free local computation in CONGEST).
    let mut through = vec![vec![None; n]; n];
    for (li, dl) in per_landmark_dist.iter().enumerate() {
        let _ = li;
        for v in 0..n {
            let Some(dv) = dl[v] else { continue };
            for u in 0..n {
                let Some(du) = dl[u] else { continue };
                let cand = dv + du;
                if through[v][u].is_none_or(|cur| cand < cur) {
                    through[v][u] = Some(cand);
                }
            }
        }
    }

    Ok(LandmarkResult {
        landmarks,
        through,
        metrics,
    })
}

/// The paper's sampling probability for depth scale `d`: `min(1, 3·ln(n)/d)` — any
/// path of `≥ d` hops then contains a landmark w.h.p.
pub fn sampling_probability(n: usize, depth: u32) -> f64 {
    (3.0 * (n.max(2) as f64).ln() / depth.max(1) as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    #[test]
    fn through_distances_are_admissible_and_tight_via_landmarks() {
        let g = generators::gnp_connected(25, 0.12, 3);
        let res = landmark_distances(&g, 0.3, 3).unwrap();
        let want = reference::all_pairs_bfs(&g);
        for (v, row) in res.through.iter().enumerate() {
            for (u, &through) in row.iter().enumerate() {
                if let Some(t) = through {
                    // Never below the true distance…
                    assert!(t >= want[u][v].unwrap());
                }
            }
        }
        // …and exact when a landmark lies on a shortest path: check pairs (l, u).
        for &l in &res.landmarks {
            for (u, row) in want.iter().enumerate() {
                assert_eq!(res.through[l.index()][u], row[l.index()]);
            }
        }
    }

    #[test]
    fn probability_one_gives_exact_apsp() {
        let g = generators::grid(4, 4);
        let res = landmark_distances(&g, 1.0, 5).unwrap();
        assert_eq!(res.landmarks.len(), g.n());
        let want = reference::all_pairs_bfs(&g);
        for (v, row) in res.through.iter().enumerate() {
            for (u, &through) in row.iter().enumerate() {
                assert_eq!(through, want[u][v]);
            }
        }
    }

    #[test]
    fn at_least_one_landmark() {
        let g = generators::path(6);
        let res = landmark_distances(&g, 0.0, 7).unwrap();
        assert_eq!(res.landmarks.len(), 1);
    }

    #[test]
    fn sampling_probability_shape() {
        assert!(sampling_probability(100, 1) >= 1.0 - 1e-12);
        assert!(sampling_probability(100, 1000) < 0.02);
    }
}
