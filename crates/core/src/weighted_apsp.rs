//! **Theorem 1.1** — message-optimal weighted APSP: the weight-delayed Dijkstra
//! payload (DESIGN.md §2's Bernstein–Nanongkai substitute) pushed through the
//! Theorem 2.1 simulation, for `Õ(n²)` messages and `Õ(n²)` rounds.
//!
//! [`weighted_apsp_direct`] runs the same payload directly in BCONGEST — the
//! `Θ(Σ_broadcasts deg) = Θ(mn)`-message baseline the paper contrasts against.

use crate::simulate::{simulate_bcongest_via_ldc, LdcSimOptions, SimulationRun};
use congest_algos::apsp_weighted::{WApspOutput, WeightedApsp};
use congest_engine::{run_bcongest, EngineError, Metrics, RunOptions};
use congest_graph::WeightedGraph;

/// Configuration for [`weighted_apsp`].
#[derive(Clone, Debug, Default)]
pub struct WeightedApspConfig {
    /// Master seed.
    pub seed: u64,
    /// Pad phases to the worst-case budget (see Theorem 2.1 options).
    pub strict_phase_budget: bool,
    /// How per-node phases execute (forwarded to the Theorem 2.1 simulation).
    /// Distances and metrics are identical at every thread count.
    pub exec: congest_engine::ExecutorConfig,
}

/// Result of a weighted APSP computation.
#[derive(Clone, Debug)]
pub struct WeightedApspResult {
    /// `distances[v][s]` = exact weighted distance from `s` to `v`.
    pub distances: Vec<Vec<Option<u64>>>,
    /// Realized cost.
    pub metrics: Metrics,
    /// Broadcast complexity of the simulated payload (≈ n²).
    pub simulated_broadcasts: u64,
    /// Simulated rounds of the payload (`T_A`).
    pub simulated_rounds: usize,
}

/// Message-optimal exact weighted APSP (Theorem 1.1).
///
/// # Errors
///
/// Propagates engine errors (round guard, preprocessing).
pub fn weighted_apsp(
    wg: &WeightedGraph,
    cfg: &WeightedApspConfig,
) -> Result<WeightedApspResult, EngineError> {
    let algo = WeightedApsp::new(wg.max_weight());
    let sim: SimulationRun<WApspOutput> = simulate_bcongest_via_ldc(
        &algo,
        wg.graph(),
        Some(wg.weights()),
        &LdcSimOptions {
            seed: cfg.seed,
            strict_phase_budget: cfg.strict_phase_budget,
            max_phases: None,
            exec: cfg.exec.clone(),
        },
    )?;
    Ok(WeightedApspResult {
        distances: sim.outputs.iter().map(|o| o.dist.clone()).collect(),
        metrics: sim.metrics,
        simulated_broadcasts: sim.simulated_broadcasts,
        simulated_rounds: sim.simulated_rounds,
    })
}

/// The direct (unsimulated) execution of the same payload: round-frugal but
/// message-hungry (`Θ(Σ deg)` per broadcasting round ⇒ `Θ(mn)` total).
///
/// # Errors
///
/// Propagates engine errors.
pub fn weighted_apsp_direct(
    wg: &WeightedGraph,
    seed: u64,
) -> Result<WeightedApspResult, EngineError> {
    let algo = WeightedApsp::new(wg.max_weight());
    let run = run_bcongest(
        &algo,
        wg.graph(),
        Some(wg.weights()),
        &RunOptions {
            seed,
            ..Default::default()
        },
    )?;
    let rounds = run.metrics.rounds as usize;
    Ok(WeightedApspResult {
        distances: run.outputs.iter().map(|o| o.dist.clone()).collect(),
        simulated_broadcasts: run.metrics.broadcasts,
        simulated_rounds: rounds,
        metrics: run.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    #[test]
    fn matches_dijkstra_and_direct() {
        let g = generators::gnp_connected(18, 0.2, 3);
        let wg = WeightedGraph::random_weights(&g, 1..=7, 3);
        let cfg = WeightedApspConfig {
            seed: 5,
            ..Default::default()
        };
        let sim = weighted_apsp(&wg, &cfg).unwrap();
        let direct = weighted_apsp_direct(&wg, 5).unwrap();
        assert_eq!(sim.distances, direct.distances);
        let want = reference::all_pairs_dijkstra(&wg);
        for (v, row) in sim.distances.iter().enumerate() {
            for (s, &d) in row.iter().enumerate() {
                assert_eq!(d, want[s][v]);
            }
        }
    }

    #[test]
    fn message_gap_on_dense_graphs() {
        // The headline: on dense graphs the simulation spends ~Õ(n²) messages while
        // the direct run spends ~Θ(mn) = Θ(n³).
        let g = generators::complete(24);
        let wg = WeightedGraph::random_weights(&g, 1..=5, 7);
        let cfg = WeightedApspConfig {
            seed: 2,
            ..Default::default()
        };
        let sim = weighted_apsp(&wg, &cfg).unwrap();
        let direct = weighted_apsp_direct(&wg, 2).unwrap();
        assert_eq!(sim.distances, direct.distances);
        assert!(
            sim.metrics.messages < direct.metrics.messages,
            "sim {} vs direct {}",
            sim.metrics.messages,
            direct.metrics.messages
        );
        // And the simulation pays rounds for it.
        assert!(sim.metrics.rounds > direct.metrics.rounds);
    }

    #[test]
    fn broadcast_complexity_near_n_squared() {
        let g = generators::gnp_connected(20, 0.2, 9);
        let wg = WeightedGraph::random_weights(&g, 1..=4, 9);
        let sim = weighted_apsp(&wg, &WeightedApspConfig::default()).unwrap();
        let n = g.n() as u64;
        assert!(sim.simulated_broadcasts >= n * n * 9 / 10);
        assert!(sim.simulated_broadcasts <= n * n * 3 / 2);
    }
}
