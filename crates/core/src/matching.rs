//! **Corollary 2.8** — exact bipartite maximum matching with `Õ(n²)` messages: the
//! Ahmadi–Kuhn–Oshman payload (Appendix A.1) through the Theorem 2.1 simulation.

use crate::simulate::{simulate_bcongest_via_ldc, LdcSimOptions};
use congest_algos::matching_bipartite::BipartiteMatching;
use congest_algos::matching_maximal::matching_pairs;
use congest_engine::{run_bcongest, EngineError, Metrics, RunOptions};
use congest_graph::{Graph, NodeId};

/// Result of the message-optimal maximum matching.
#[derive(Clone, Debug)]
pub struct MatchingResult {
    /// The matched pairs (each with the smaller endpoint first).
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Per-node partner outputs.
    pub partner: Vec<Option<NodeId>>,
    /// Realized cost.
    pub metrics: Metrics,
    /// Broadcast complexity of the simulated payload.
    pub simulated_broadcasts: u64,
}

/// Message-optimal exact maximum matching on a bipartite graph (Corollary 2.8).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the per-node outputs are mutually inconsistent (would indicate a bug in
/// the payload, not bad input).
pub fn bipartite_maximum_matching(g: &Graph, seed: u64) -> Result<MatchingResult, EngineError> {
    let sim = simulate_bcongest_via_ldc(
        &BipartiteMatching,
        g,
        None,
        &LdcSimOptions {
            seed,
            ..Default::default()
        },
    )?;
    Ok(MatchingResult {
        pairs: matching_pairs(&sim.outputs),
        partner: sim.outputs,
        metrics: sim.metrics,
        simulated_broadcasts: sim.simulated_broadcasts,
    })
}

/// The direct BCONGEST execution of the same payload (the message-hungry baseline).
///
/// # Errors
///
/// Propagates engine errors.
pub fn bipartite_maximum_matching_direct(
    g: &Graph,
    seed: u64,
) -> Result<MatchingResult, EngineError> {
    let run = run_bcongest(
        &BipartiteMatching,
        g,
        None,
        &RunOptions {
            seed,
            ..Default::default()
        },
    )?;
    Ok(MatchingResult {
        pairs: matching_pairs(&run.outputs),
        partner: run.outputs,
        simulated_broadcasts: run.metrics.broadcasts,
        metrics: run.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, reference};

    #[test]
    fn simulated_matching_is_maximum_and_equals_direct() {
        for seed in 0..3 {
            let g = generators::random_bipartite_connected(5, 6, 0.3, seed);
            let sim = bipartite_maximum_matching(&g, 40 + seed).unwrap();
            let direct = bipartite_maximum_matching_direct(&g, 40 + seed).unwrap();
            assert_eq!(sim.partner, direct.partner);
            assert!(reference::is_matching(&g, &sim.pairs));
            assert_eq!(
                sim.pairs.len(),
                reference::hopcroft_karp(&g).expect("bipartite"),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn works_on_even_cycles_and_trees() {
        for g in [generators::cycle(8), generators::binary_tree(9)] {
            let sim = bipartite_maximum_matching(&g, 7).unwrap();
            assert_eq!(
                sim.pairs.len(),
                reference::hopcroft_karp(&g).expect("bipartite")
            );
        }
    }
}
