//! Property-based tests for the fault-injection engine and the trace codec:
//! seeded plan constructors always produce valid schedules (recovery never
//! precedes a crash, churned entities stay inside the graph), invalid
//! schedules are always rejected, and the JSONL trace codec round-trips
//! arbitrary logs — every fault-event kind, every message width (0..=4 `u32`
//! lanes), escaped strings, and full recorded runs — byte for byte.

use congest_engine::faults::FaultState;
use congest_engine::trace::{
    self, record_bcongest, TraceDelivery, TraceLog, TraceMetrics, TraceRound,
};
use congest_engine::{
    BcongestAlgorithm, FaultEvent, FaultPlan, FaultResponse, LocalView, RunOptions,
};
use congest_graph::{generators, EdgeId, NodeId};
use proptest::prelude::*;

/// Minimal broadcast workload for recorded-run properties: flood the minimum
/// ID, re-broadcasting only on improvement.
struct MinFlood;

#[derive(Clone, Debug)]
struct FloodState {
    best: u32,
    dirty: bool,
}

impl BcongestAlgorithm for MinFlood {
    type State = FloodState;
    type Msg = u32;
    type Output = u32;

    fn name(&self) -> &'static str {
        "prop-min-flood"
    }
    fn init(&self, view: &LocalView<'_>) -> FloodState {
        FloodState {
            best: view.node().raw(),
            dirty: true,
        }
    }
    fn broadcast(&self, s: &FloodState, _round: usize) -> Option<u32> {
        s.dirty.then_some(s.best)
    }
    fn on_broadcast_sent(&self, s: &mut FloodState, _round: usize) {
        s.dirty = false;
    }
    fn receive(&self, s: &mut FloodState, _round: usize, msgs: &[(NodeId, u32)]) {
        for &(_, m) in msgs {
            if m < s.best {
                s.best = m;
                s.dirty = true;
            }
        }
    }
    fn is_done(&self, s: &FloodState) -> bool {
        !s.dirty
    }
    fn on_fault(&self, s: &mut FloodState, _round: usize) {
        s.dirty = true;
    }
    fn output(&self, s: &FloodState) -> u32 {
        s.best
    }
    fn round_bound(&self, n: usize, _m: usize) -> usize {
        2 * n + 2
    }
    fn output_words(&self, _out: &u32) -> usize {
        1
    }
}

/// A deterministic synthetic trace exercising every fault-event kind, the
/// given message width, and string escaping in the header.
fn synthetic_log(seed: u64, lanes: usize, nrounds: usize) -> TraceLog {
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    let rounds: Vec<TraceRound> = (0..nrounds)
        .map(|r| {
            let faults = vec![
                FaultEvent::EdgeDown(EdgeId::new((next() % 50) as usize)),
                FaultEvent::EdgeUp(EdgeId::new((next() % 50) as usize)),
                FaultEvent::Crash(NodeId::new((next() % 50) as usize)),
                FaultEvent::Recover(NodeId::new((next() % 50) as usize)),
            ];
            let deliveries = (0..(next() % 4) as usize)
                .map(|_| TraceDelivery {
                    to: (next() % 64) as u32,
                    from: (next() % 64) as u32,
                    lanes: (0..lanes).map(|_| next() as u32).collect(),
                })
                .collect();
            TraceRound {
                round: r,
                faults,
                deliveries,
            }
        })
        .collect();
    TraceLog {
        // Deliberately hostile name: quote, backslash, newline, tab — every
        // escape path of the hand-rolled codec.
        workload: format!("wl\"\\\n\t-{seed}"),
        kind: "bcongest".to_string(),
        n: (next() % 100) as usize,
        m: (next() % 300) as usize,
        seed,
        threads: (next() % 8) as usize,
        backend: "sharded:3".to_string(),
        plane: "flat".to_string(),
        lanes,
        response: "self-heal".to_string(),
        rounds,
        output: format!("[{}, {}]", next(), next()),
        metrics: TraceMetrics {
            rounds: next(),
            messages: next(),
            broadcasts: next(),
            payload_bytes: next(),
            dropped_messages: next(),
            congestion: (0..(next() % 6)).map(|_| next()).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn churn_plans_always_validate_and_heal(seed in 0u64..200, n in 8usize..40,
                                            k in 1usize..6, down in 0usize..5,
                                            up_delta in 1usize..6) {
        let g = generators::gnp_connected(n, 0.2, seed);
        let k = k.min(g.m());
        let plan =
            FaultPlan::edge_churn(&g, k, down, down + up_delta, seed, FaultResponse::Restart);
        prop_assert!(plan.validate(&g).is_ok(), "churn plan invalid: {plan}");
        // Every churned edge is a real edge, and the plan is pure churn.
        for &(_, ev) in &plan.schedule {
            match ev {
                FaultEvent::EdgeDown(e) | FaultEvent::EdgeUp(e) => {
                    prop_assert!(e.index() < g.m(), "edge {e:?} outside the graph")
                }
                other => prop_assert!(false, "churn plan contains node event {other:?}"),
            }
        }
        // Down/up pairs cancel: the final topology is fully healed.
        let mask = plan.final_mask(&g);
        prop_assert!(mask.edge_up.iter().all(|&b| b));
        prop_assert!(mask.node_up.iter().all(|&b| b));
    }

    #[test]
    fn crash_plans_always_validate_and_protect(seed in 0u64..200, n in 8usize..40,
                                               count in 1usize..5) {
        let g = generators::gnp_connected(n, 0.2, seed);
        let count = count.min(n - 1);
        let plan = FaultPlan::crashes(&g, count, 1, seed, &[NodeId::new(0)]);
        prop_assert!(plan.validate(&g).is_ok(), "crash plan invalid: {plan}");
        let mask = plan.final_mask(&g);
        prop_assert!(mask.node_up[0], "protected node crashed");
        prop_assert_eq!(mask.node_up.iter().filter(|&&up| !up).count(), count);
    }

    #[test]
    fn recovery_never_precedes_crash(round in 0usize..10, v in 0usize..8) {
        let g = generators::path(8);
        // A recover (or edge-up) with no preceding crash (down) is invalid...
        let orphan_recover =
            FaultPlan::new(FaultResponse::Restart).at(round, FaultEvent::Recover(NodeId::new(v)));
        prop_assert!(orphan_recover.validate(&g).is_err());
        let orphan_up =
            FaultPlan::new(FaultResponse::Restart).at(round, FaultEvent::EdgeUp(EdgeId::new(v.min(6))));
        prop_assert!(orphan_up.validate(&g).is_err());
        // ...while the properly ordered crash → recover pair is valid.
        let paired = FaultPlan::new(FaultResponse::SelfHeal)
            .at(round, FaultEvent::Crash(NodeId::new(v)))
            .at(round + 1, FaultEvent::Recover(NodeId::new(v)));
        prop_assert!(paired.validate(&g).is_ok());
    }

    #[test]
    fn fault_state_applies_events_in_schedule_order(seed in 0u64..100, n in 8usize..30) {
        let g = generators::gnp_connected(n, 0.25, seed);
        let plan = FaultPlan::edge_churn(&g, 2, 1, 3, seed, FaultResponse::Restart);
        let mut fs = FaultState::new(&plan, &g);
        let mut fired = 0usize;
        for round in 0..6 {
            fired += fs.apply_due(round).len();
        }
        prop_assert_eq!(fired, plan.schedule.len(), "every event fires exactly once");
        prop_assert_eq!(fs.next_fault_round(), None, "schedule exhausted");
        prop_assert!(fs.mask.edge_up.iter().all(|&b| b), "churn healed");
    }

    #[test]
    fn trace_codec_roundtrips_synthetic_logs(seed in 0u64..300, lanes in 0usize..5,
                                             nrounds in 0usize..6) {
        let log = synthetic_log(seed, lanes, nrounds);
        let back = TraceLog::from_jsonl(&log.to_jsonl());
        prop_assert_eq!(back.as_ref(), Ok(&log), "JSONL roundtrip");
        prop_assert!(log.conforms(&back.unwrap()).is_ok());
    }

    #[test]
    fn event_labels_roundtrip_any_index(idx in 0usize..1_000_000) {
        for ev in [
            FaultEvent::EdgeDown(EdgeId::new(idx)),
            FaultEvent::EdgeUp(EdgeId::new(idx)),
            FaultEvent::Crash(NodeId::new(idx)),
            FaultEvent::Recover(NodeId::new(idx)),
        ] {
            prop_assert_eq!(trace::parse_event(&trace::event_label(&ev)), Ok(ev));
        }
    }

    #[test]
    fn recorded_faulted_runs_roundtrip_and_self_conform(seed in 0u64..60, n in 6usize..20) {
        // A real recorded run whose plan exercises all four event kinds.
        let g = generators::gnp_connected(n, 0.3, seed);
        let e = EdgeId::new(seed as usize % g.m());
        let v = NodeId::new(1 + seed as usize % (n - 1));
        let response = if seed % 2 == 0 {
            FaultResponse::Restart
        } else {
            FaultResponse::SelfHeal
        };
        let plan = FaultPlan::new(response)
            .at(0, FaultEvent::Crash(v))
            .at(0, FaultEvent::EdgeDown(e))
            .at(2, FaultEvent::Recover(v))
            .at(3, FaultEvent::EdgeUp(e));
        prop_assert!(plan.validate(&g).is_ok());
        let opts = RunOptions {
            seed,
            faults: Some(plan),
            ..RunOptions::default()
        };
        let (run, trace) = record_bcongest(&MinFlood, &g, None, &opts, "prop/min-flood")
            .expect("faulted recorded run");
        prop_assert_eq!(TraceMetrics::from(&run.metrics), trace.metrics.clone());
        let back = TraceLog::from_jsonl(&trace.to_jsonl()).expect("parse");
        prop_assert_eq!(&back, &trace);
        prop_assert!(trace.conforms(&back).is_ok());
        // With everything recovered, the flood must still elect the global min.
        prop_assert!(run.outputs.iter().all(|&o| o == 0));
    }
}
