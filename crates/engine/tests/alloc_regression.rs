//! Allocation regression guard for the flat message plane: once warm, a
//! steady-state deliver/receive round performs **zero heap allocations** —
//! every arena, offset table, cursor table and decode scratch buffer is
//! reused via `clear()`. This is the property that makes `MessagePlane::Flat`
//! viable at n = 10⁵–10⁶, and it can rot silently (one stray `Vec::new()` in
//! the round path brings the allocator back); this harness pins it with a
//! counting `#[global_allocator]` wrapper.
//!
//! The assertion is scoped to the plane's deliver/receive cycle, not a whole
//! runner round: the algorithm-facing trait API returns per-round send `Vec`s
//! by design, so a full-run zero-allocation claim is unattainable without
//! changing the public contract. The plane is the hot path the tentpole
//! optimizes, and the plane is what this test isolates.
//!
//! This lives in its own integration-test binary because a global allocator
//! is process-wide: sharing a binary with other tests would make the counter
//! racy across the libtest harness's threads. Warm-up and measurement below
//! run on the test's thread, and the measured phase is sequential, so other
//! harness threads are quiescent (this binary has exactly one `#[test]`).

use congest_engine::{ExecutorConfig, FlatPlane, MessagePlane, Metrics};
use congest_graph::{generators, EdgeId, NodeId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation/reallocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_flat_rounds_allocate_nothing() {
    let g = generators::gnp_connected(200, 0.05, 11);
    let cfg = ExecutorConfig::sequential().with_plane(MessagePlane::Flat);
    let mut plane: FlatPlane<(u32, u32)> = FlatPlane::new(g.n());
    let mut metrics = Metrics::new(g.m());
    let mut states: Vec<u64> = vec![0; g.n()];

    // Identical traffic every round: every node floods a two-lane payload to
    // all neighbors, so round 2+ exercises exactly the buffers round 1 sized.
    let senders: Vec<(NodeId, u32)> = g.nodes().map(|v| (v, v.raw())).collect();
    let expand = |v: NodeId, payload: &u32, sink: &mut dyn FnMut(NodeId, EdgeId, (u32, u32))| {
        for (e, u) in g.incident(v) {
            sink(u, e, (*payload, e.raw()));
        }
    };
    let receive = |st: &mut u64, inbox: &[(NodeId, (u32, u32))]| {
        for (from, (a, b)) in inbox {
            *st = st
                .wrapping_add(u64::from(from.raw()))
                .wrapping_add(u64::from(*a))
                .wrapping_add(u64::from(*b));
        }
    };

    // Warm-up: grows every arena to its steady-state capacity.
    for _ in 0..3 {
        plane.deliver(&cfg, &senders, &expand, &mut metrics);
        assert!(plane.receive(&cfg, &mut states, receive));
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..5 {
        plane.deliver(&cfg, &senders, &expand, &mut metrics);
        assert!(plane.receive(&cfg, &mut states, receive));
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state flat rounds must not touch the heap"
    );

    // Sanity: the rounds really moved messages (2 directed per edge per round).
    assert_eq!(metrics.messages, 8 * 2 * g.m() as u64);
}
