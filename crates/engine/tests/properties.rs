//! Property-based tests for the execution engine: routing always delivers, tree
//! operations deliver everything exactly once, capacity is respected, the
//! accounting invariants hold for arbitrary inputs, the sharded delivery
//! backend is indistinguishable from the sequential one — outputs, [`Metrics`],
//! and even the round/amount at which a budget error fires — and the packed
//! wire codec of the flat message plane round-trips every primitive payload.

use congest_engine::{
    convergecast_with, downcast, router, run_bcongest, treeops::Forest, upcast, BcongestAlgorithm,
    DeliveryBackend, ExecutorConfig, LocalView, MessagePlane, RunOptions, ShardPlan, WireDecode,
};
use congest_graph::{generators, reference, EdgeId, NodeId};
use proptest::prelude::*;

/// Encode → decode round-trip, plus the flat/boxed accounting agreement: the
/// packed width is the constant `LANES` while the model-level cost `words()`
/// is whatever the boxed plane charges — both planes must see the same value.
fn codec_roundtrip<T: WireDecode>(v: T) -> Result<(), TestCaseError> {
    let mut lanes = vec![0u32; T::LANES];
    v.encode(&mut lanes);
    let back = T::decode(&lanes);
    prop_assert_eq!(&back, &v, "decode ∘ encode = id");
    prop_assert_eq!(back.words(), v.words(), "flat and boxed words() agree");
    Ok(())
}

fn bfs_forest(g: &congest_graph::Graph, root: usize) -> Forest {
    let parents = reference::bfs_tree(g, NodeId::new(root));
    Forest::from_parents(g, parents).expect("BFS tree is a forest")
}

fn opts(seed: u64, exec: ExecutorConfig) -> RunOptions {
    RunOptions {
        seed,
        exec,
        ..Default::default()
    }
}

/// Minimal BCONGEST workload for backend-equivalence properties: flood the
/// minimum ID, re-broadcasting only on improvement.
struct MinFlood;

#[derive(Clone, Debug)]
struct FloodState {
    best: u32,
    dirty: bool,
}

impl BcongestAlgorithm for MinFlood {
    type State = FloodState;
    type Msg = u32;
    type Output = u32;

    fn name(&self) -> &'static str {
        "prop-min-flood"
    }
    fn init(&self, view: &LocalView<'_>) -> FloodState {
        FloodState {
            best: view.node().raw(),
            dirty: true,
        }
    }
    fn broadcast(&self, s: &FloodState, _round: usize) -> Option<u32> {
        s.dirty.then_some(s.best)
    }
    fn on_broadcast_sent(&self, s: &mut FloodState, _round: usize) {
        s.dirty = false;
    }
    fn receive(&self, s: &mut FloodState, _round: usize, msgs: &[(NodeId, u32)]) {
        for &(_, m) in msgs {
            if m < s.best {
                s.best = m;
                s.dirty = true;
            }
        }
    }
    fn is_done(&self, s: &FloodState) -> bool {
        !s.dirty
    }
    fn output(&self, s: &FloodState) -> u32 {
        s.best
    }
    fn round_bound(&self, n: usize, _m: usize) -> usize {
        2 * n + 2
    }
    fn output_words(&self, _out: &u32) -> usize {
        1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn router_delivers_every_task(seed in 0u64..200, k in 1usize..12) {
        let g = generators::gnp_connected(16, 0.2, seed);
        let dist = reference::bfs_distances(&g, NodeId::new(0));
        // Tasks: route from node 0 to k random-ish targets along BFS paths.
        let parents = reference::bfs_tree(&g, NodeId::new(0));
        let mut tasks = Vec::new();
        for i in 0..k {
            let target = NodeId::new((i * 5 + 3) % g.n());
            let mut path = router::path_to_root(&parents, target);
            path.reverse();
            tasks.push(router::RouteTask { path, words: 1 + i % 3 });
        }
        let report = router::route(&g, &tasks).unwrap();
        // Everything arrives, messages = Σ words · pathlen.
        let want: usize = tasks
            .iter()
            .map(|t| t.words * t.path.len().saturating_sub(1))
            .sum();
        prop_assert_eq!(report.metrics.messages as usize, want);
        for (i, t) in tasks.iter().enumerate() {
            let hops = t.path.len().saturating_sub(1) as u64;
            prop_assert!(report.completion_round[i] >= hops.min(1) * u64::from(hops > 0));
        }
        let _ = dist;
    }

    #[test]
    fn router_respects_capacity_via_lower_bound(seed in 0u64..100, k in 2usize..10) {
        // k one-word packets over the same single edge must take >= k rounds.
        let g = generators::path(2);
        let t = router::RouteTask {
            path: vec![NodeId::new(0), NodeId::new(1)],
            words: 1,
        };
        let tasks = vec![t; k];
        let report = router::route(&g, &tasks).unwrap();
        prop_assert_eq!(report.metrics.rounds, k as u64);
        let _ = seed;
    }

    #[test]
    fn upcast_delivers_all_items_once(seed in 0u64..100) {
        let g = generators::gnp_connected(20, 0.2, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> = g.nodes().map(|v| (v, v.index() as u64)).collect();
        let out = upcast(&g, &f, items).unwrap();
        let mut got: Vec<u64> = out.at_root[0].iter().map(|d| d.payload).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..g.n() as u64).collect();
        prop_assert_eq!(got, want);
        // Messages = Σ depths.
        let depths: u64 = g.nodes().map(|v| u64::from(f.depth_of(v))).sum();
        prop_assert_eq!(out.metrics.messages, depths);
    }

    #[test]
    fn downcast_reaches_exact_destinations(seed in 0u64..100, k in 1usize..20) {
        let g = generators::gnp_connected(18, 0.25, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> =
            (0..k).map(|i| (NodeId::new((i * 7 + 1) % g.n()), i as u64)).collect();
        let out = downcast(&g, &f, items.clone()).unwrap();
        for (dest, payload) in items {
            prop_assert!(out.at_node[dest.index()].contains(&payload));
        }
        let total: usize = out.at_node.iter().map(Vec::len).sum();
        prop_assert_eq!(total, k);
    }

    #[test]
    fn shard_plan_partitions_every_node_exactly_once(n in 0usize..300, shards in 0usize..40) {
        let plan = ShardPlan::new(n, shards);
        // The ranges cover 0..n exactly once, in order — so merging per-shard
        // results in shard order is a total, stable order over nodes.
        let covered: Vec<usize> = plan.ranges().flatten().collect();
        prop_assert_eq!(covered, (0..n).collect::<Vec<_>>());
        // `shard_of` agrees with the ranges, and is monotone in the node ID.
        let mut last = 0usize;
        for v in 0..n {
            let s = plan.shard_of(NodeId::new(v));
            prop_assert!(plan.range(s).contains(&v));
            prop_assert!(s >= last, "shard_of is monotone over node IDs");
            last = s;
        }
        prop_assert!(plan.shards() >= 1);
        prop_assert!(plan.shards() <= n.max(1));
    }

    #[test]
    fn sharded_delivery_preserves_metrics_exactly(seed in 0u64..80, shards in 1usize..10) {
        // A random BCONGEST workload (min-flood over G(n,p)) under the sharded
        // backend must reproduce the sequential run bit for bit: outputs,
        // rounds, messages, broadcasts, and the per-edge congestion vector.
        let g = generators::gnp_connected(24 + (seed as usize % 17), 0.15, seed);
        let base = run_bcongest(&MinFlood, &g, None, &opts(seed, ExecutorConfig::sequential()))
            .expect("sequential run");
        let cfgs = [
            ExecutorConfig::sharded(shards),
            ExecutorConfig::sequential().with_backend(DeliveryBackend::Sharded { shards }),
        ];
        for cfg in cfgs {
            let run = run_bcongest(&MinFlood, &g, None, &opts(seed, cfg.clone()))
                .expect("sharded run");
            prop_assert_eq!(&base.outputs, &run.outputs, "outputs under {:?}", &cfg);
            prop_assert_eq!(&base.metrics, &run.metrics, "metrics under {:?}", &cfg);
        }
    }

    #[test]
    fn sharded_budget_errors_fire_identically(seed in 0u64..60, shards in 1usize..8, budget in 0u64..40) {
        // Budget enforcement must trip at the same spend under every backend:
        // either both runs succeed with identical metrics, or both fail with
        // the *same* BudgetExceeded (same op, same used, same budget).
        let g = generators::gnp_connected(18, 0.25, seed);
        let f = bfs_forest(&g, 0);
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let seq = convergecast_with(
            &g, &f, values.clone(), |a, b| a + b, Some(budget), &ExecutorConfig::sequential(),
        );
        let shd = convergecast_with(
            &g, &f, values, |a, b| a + b, Some(budget), &ExecutorConfig::sharded(shards),
        );
        match (seq, shd) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.at_root, b.at_root);
                prop_assert_eq!(a.metrics, b.metrics);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "identical BudgetExceeded"),
            (a, b) => prop_assert!(false, "one backend failed, the other did not: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn primitive_codecs_roundtrip(a in 0u32..=u32::MAX, b in 0u64..=u64::MAX,
                                  d in 0usize..=usize::MAX, p0 in 0u32..=u32::MAX,
                                  p1 in 0u32..=u32::MAX, q0 in 0u64..=u64::MAX,
                                  q1 in 0u64..=u64::MAX, id in 0u32..u32::MAX) {
        codec_roundtrip(a)?;
        codec_roundtrip(b)?;
        codec_roundtrip(b as i64)?; // full-range i64 via the u64 bit pattern
        codec_roundtrip(d)?;
        codec_roundtrip((p0, p1))?;
        codec_roundtrip((q0, q1))?;
        codec_roundtrip(())?;
        codec_roundtrip(NodeId::from(id))?;
        codec_roundtrip(EdgeId::from(id))?;
        codec_roundtrip(congest_graph::ClusterId::from(id))?;
    }

    #[test]
    fn flat_plane_reproduces_boxed_runs_exactly(seed in 0u64..60, shards in 1usize..8) {
        // The flat packed-arena plane must be indistinguishable from the boxed
        // mailboxes for a full run under every backend: outputs, rounds,
        // messages, broadcasts, payload bytes, per-edge congestion.
        let g = generators::gnp_connected(20 + (seed as usize % 13), 0.2, seed);
        let base = run_bcongest(&MinFlood, &g, None, &opts(seed, ExecutorConfig::sequential()))
            .expect("boxed sequential run");
        let cfgs = [
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(4),
            ExecutorConfig::sharded(shards),
        ];
        for cfg in cfgs {
            let flat = cfg.with_plane(MessagePlane::Flat);
            let run = run_bcongest(&MinFlood, &g, None, &opts(seed, flat.clone()))
                .expect("flat run");
            prop_assert_eq!(&base.outputs, &run.outputs, "outputs under {:?}", &flat);
            prop_assert_eq!(&base.metrics, &run.metrics, "metrics under {:?}", &flat);
        }
    }

    #[test]
    fn upcast_rounds_within_lemma_1_5(seed in 0u64..60) {
        // Lemma 1.5: O(In/log n) rounds = O(#words) with our unit-word accounting.
        let g = generators::gnp_connected(16, 0.3, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> = g.nodes().map(|v| (v, 1u64)).collect();
        let out = upcast(&g, &f, items).unwrap();
        let in_words = g.n() as u64;
        prop_assert!(out.metrics.rounds <= in_words + u64::from(f.depth()));
    }
}
