//! Property-based tests for the execution engine: routing always delivers, tree
//! operations deliver everything exactly once, capacity is respected, and the
//! accounting invariants hold for arbitrary inputs.

use congest_engine::{downcast, router, treeops::Forest, upcast};
use congest_graph::{generators, reference, NodeId};
use proptest::prelude::*;

fn bfs_forest(g: &congest_graph::Graph, root: usize) -> Forest {
    let parents = reference::bfs_tree(g, NodeId::new(root));
    Forest::from_parents(g, parents).expect("BFS tree is a forest")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn router_delivers_every_task(seed in 0u64..200, k in 1usize..12) {
        let g = generators::gnp_connected(16, 0.2, seed);
        let dist = reference::bfs_distances(&g, NodeId::new(0));
        // Tasks: route from node 0 to k random-ish targets along BFS paths.
        let parents = reference::bfs_tree(&g, NodeId::new(0));
        let mut tasks = Vec::new();
        for i in 0..k {
            let target = NodeId::new((i * 5 + 3) % g.n());
            let mut path = router::path_to_root(&parents, target);
            path.reverse();
            tasks.push(router::RouteTask { path, words: 1 + i % 3 });
        }
        let report = router::route(&g, &tasks).unwrap();
        // Everything arrives, messages = Σ words · pathlen.
        let want: usize = tasks
            .iter()
            .map(|t| t.words * t.path.len().saturating_sub(1))
            .sum();
        prop_assert_eq!(report.metrics.messages as usize, want);
        for (i, t) in tasks.iter().enumerate() {
            let hops = t.path.len().saturating_sub(1) as u64;
            prop_assert!(report.completion_round[i] >= hops.min(1) * u64::from(hops > 0));
        }
        let _ = dist;
    }

    #[test]
    fn router_respects_capacity_via_lower_bound(seed in 0u64..100, k in 2usize..10) {
        // k one-word packets over the same single edge must take >= k rounds.
        let g = generators::path(2);
        let t = router::RouteTask {
            path: vec![NodeId::new(0), NodeId::new(1)],
            words: 1,
        };
        let tasks = vec![t; k];
        let report = router::route(&g, &tasks).unwrap();
        prop_assert_eq!(report.metrics.rounds, k as u64);
        let _ = seed;
    }

    #[test]
    fn upcast_delivers_all_items_once(seed in 0u64..100) {
        let g = generators::gnp_connected(20, 0.2, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> = g.nodes().map(|v| (v, v.index() as u64)).collect();
        let out = upcast(&g, &f, items).unwrap();
        let mut got: Vec<u64> = out.at_root[0].iter().map(|d| d.payload).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..g.n() as u64).collect();
        prop_assert_eq!(got, want);
        // Messages = Σ depths.
        let depths: u64 = g.nodes().map(|v| u64::from(f.depth_of(v))).sum();
        prop_assert_eq!(out.metrics.messages, depths);
    }

    #[test]
    fn downcast_reaches_exact_destinations(seed in 0u64..100, k in 1usize..20) {
        let g = generators::gnp_connected(18, 0.25, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> =
            (0..k).map(|i| (NodeId::new((i * 7 + 1) % g.n()), i as u64)).collect();
        let out = downcast(&g, &f, items.clone()).unwrap();
        for (dest, payload) in items {
            prop_assert!(out.at_node[dest.index()].contains(&payload));
        }
        let total: usize = out.at_node.iter().map(Vec::len).sum();
        prop_assert_eq!(total, k);
    }

    #[test]
    fn upcast_rounds_within_lemma_1_5(seed in 0u64..60) {
        // Lemma 1.5: O(In/log n) rounds = O(#words) with our unit-word accounting.
        let g = generators::gnp_connected(16, 0.3, seed);
        let f = bfs_forest(&g, 0);
        let items: Vec<(NodeId, u64)> = g.nodes().map(|v| (v, 1u64)).collect();
        let out = upcast(&g, &f, items).unwrap();
        let in_words = g.n() as u64;
        prop_assert!(out.metrics.rounds <= in_words + u64::from(f.depth()));
    }
}
