//! Sharded batched message delivery, and the backend-driven round phases shared
//! by the CONGEST/BCONGEST runners.
//!
//! The sequential delivery loop pushes each message straight into its
//! receiver's inbox — a random-access scatter over all `n` mailboxes. The
//! sharded backend ([`crate::DeliveryBackend::Sharded`]) instead partitions the
//! nodes into `S` contiguous shards ([`ShardPlan`]); each shard owns its nodes'
//! mailboxes. During the send half of a round, every **source shard** expands
//! its senders' messages into `S` batch queues — one per **destination shard**,
//! intra-shard traffic simply landing in the queue addressed to itself. At the
//! round barrier the queues are exchanged: each destination shard drains, in
//! fixed source-shard order, the batches addressed to it into its own
//! mailboxes.
//!
//! Because shards are contiguous node ranges, "source-shard order, then sender
//! order within the shard, then the sender's own emission order" *is* the
//! global `(shard, node, edge)` order — exactly the order the sequential loop
//! produces. Every inbox therefore receives its messages in the identical
//! sequence, and message/congestion accounting commutes, so outputs and
//! [`Metrics`] are byte-identical to the sequential and chunk-parallel paths at
//! any shard count and any thread count. The root
//! `tests/backend_conformance.rs` suite enforces this differentially.
//!
//! With more than one worker thread the per-shard tasks of both halves run on
//! the executor's cached pool (source shards touch disjoint sender ranges,
//! destination shards touch disjoint mailbox ranges — no locks anywhere); with
//! one thread they run inline, so the backend is also a cache-locality layout
//! even single-threaded.

use crate::exec::{self, DeliveryBackend, ExecutorConfig};
use crate::metrics::Metrics;
use crate::wire::WireEncode;
use congest_graph::{EdgeId, NodeId};
use std::ops::Range;

/// One expanded delivery batch: `(receiver, sender, edge, message)` in emission
/// order. The chunk-parallel path produces one per sender chunk; the sharded
/// path one per (src-shard, dst-shard) pair.
pub(crate) type Deliveries<M> = Vec<(NodeId, NodeId, EdgeId, M)>;

/// A partition of `0..n` into `S` contiguous, equally-sized (up to rounding)
/// node shards. Shard `s` owns the node range [`ShardPlan::range`]`(s)`; every
/// node belongs to exactly one shard, and shard ranges are ordered by node ID,
/// so concatenating per-shard results in shard order reproduces node order —
/// the invariant the delivery merge relies on (pinned by the engine's property
/// tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    shards: usize,
    size: usize,
}

impl ShardPlan {
    /// Plans `shards` shards over `n` nodes. The count is clamped to `[1, n]`
    /// (an empty graph gets one empty shard), then reduced to the number of
    /// non-empty ranges the rounded shard size actually yields.
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        let size = n.div_ceil(shards).max(1);
        let shards = if n == 0 { 1 } else { n.div_ceil(size) };
        Self { n, shards, size }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Nodes covered by the plan.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        v.index() / self.size
    }

    /// The node range shard `s` owns.
    #[inline]
    pub fn range(&self, s: usize) -> Range<usize> {
        let start = s * self.size;
        start..((start + self.size).min(self.n))
    }

    /// All shard ranges, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards).map(|s| self.range(s))
    }
}

/// Collects per-node send decisions in node order: `f(node_index, state)`
/// returning `Some(payload)` marks the node a sender this round. Chunked over
/// nodes via [`exec::map_chunks`]; concatenating per-chunk batches in chunk
/// order reproduces the sequential node order exactly, so the result is
/// identical at every thread count.
pub(crate) fn collect_sends<St, X, F>(cfg: &ExecutorConfig, states: &[St], f: F) -> Vec<(NodeId, X)>
where
    St: Sync,
    X: Send,
    F: Fn(usize, &St) -> Option<X> + Sync,
{
    exec::map_chunks(cfg, states, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .filter_map(|(off, st)| f(start + off, st).map(|x| (NodeId::new(start + off), x)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Applies `f(state, inbox)` to every node with a non-empty inbox (taking the
/// inbox), sharding states and inboxes together. Returns whether any node
/// received. The shared receive phase of both runners.
pub(crate) fn receive_phase<St, M, F>(
    cfg: &ExecutorConfig,
    states: &mut [St],
    inboxes: &mut [Vec<(NodeId, M)>],
    f: F,
) -> bool
where
    St: Send,
    M: Send,
    F: Fn(&mut St, Vec<(NodeId, M)>) + Sync,
{
    exec::map_chunks_mut2(cfg, states, inboxes, |_start, sts, inbs| {
        let mut any = false;
        for (st, inbox) in sts.iter_mut().zip(inbs.iter_mut()) {
            if !inbox.is_empty() {
                any = true;
                f(st, std::mem::take(inbox));
            }
        }
        any
    })
    .into_iter()
    .any(|b| b)
}

/// Delivers one round of messages through the configured backend.
///
/// `senders` lists the round's senders **in node order** with their per-sender
/// payloads; `expand` turns one sender's payload into `(receiver, edge, msg)`
/// emissions (calling the sink once per message, in the sender's emission
/// order). The function charges `msg.words()` words and the packed wire width
/// (`4 × LANES` bytes — the same charge the flat plane makes) per emission to
/// `metrics`, and appends `(sender, msg)` to each receiver's inbox — in global
/// `(shard, node, edge)` order for every backend, so inbox contents are
/// byte-identical across backends and thread counts.
pub(crate) fn deliver_phase<S, M, F>(
    cfg: &ExecutorConfig,
    senders: &[(NodeId, S)],
    expand: &F,
    metrics: &mut Metrics,
    inboxes: &mut [Vec<(NodeId, M)>],
) where
    S: Sync,
    M: WireEncode + Send,
    F: Fn(NodeId, &S, &mut dyn FnMut(NodeId, EdgeId, M)) + Sync,
{
    let bytes = 4 * M::LANES as u64;
    match cfg.resolved_backend() {
        DeliveryBackend::Sequential => {
            for (v, payload) in senders {
                expand(*v, payload, &mut |u, e, m| {
                    metrics.add_messages_sized(e, m.words() as u64, bytes);
                    inboxes[u.index()].push((*v, m));
                });
            }
        }
        DeliveryBackend::Chunked => {
            let outboxes: Vec<Deliveries<M>> = exec::map_chunks(cfg, senders, |_start, chunk| {
                let mut out = Vec::new();
                for (v, payload) in chunk {
                    expand(*v, payload, &mut |u, e, m| out.push((u, *v, e, m)));
                }
                out
            });
            for outbox in &outboxes {
                for (_, _, e, m) in outbox {
                    metrics.add_messages_sized(*e, m.words() as u64, bytes);
                }
            }
            for outbox in outboxes {
                for (u, v, _e, msg) in outbox {
                    inboxes[u.index()].push((v, msg));
                }
            }
        }
        DeliveryBackend::Sharded { shards } => {
            let plan = ShardPlan::new(inboxes.len(), shards);
            deliver_sharded(cfg, &plan, senders, expand, metrics, inboxes);
        }
        // `resolved_backend` maps `Auto` to a concrete backend (the runners
        // resolve it per round through a `BackendChooser` before calling in).
        DeliveryBackend::Auto => unreachable!("Auto resolves to a concrete backend"),
    }
}

/// The sharded delivery path: per-src-shard expansion into per-dst-shard batch
/// queues, a transpose at the round barrier, then a per-dst-shard drain into
/// the shard's own mailboxes.
fn deliver_sharded<S, M, F>(
    cfg: &ExecutorConfig,
    plan: &ShardPlan,
    senders: &[(NodeId, S)],
    expand: &F,
    metrics: &mut Metrics,
    inboxes: &mut [Vec<(NodeId, M)>],
) where
    S: Sync,
    M: WireEncode + Send,
    F: Fn(NodeId, &S, &mut dyn FnMut(NodeId, EdgeId, M)) + Sync,
{
    let s_count = plan.shards();
    let threads = cfg.effective_threads();

    // Senders are in node order, so each shard's senders form a contiguous
    // subslice; find the boundaries once.
    let mut sender_slices: Vec<&[(NodeId, S)]> = Vec::with_capacity(s_count);
    {
        let mut rest = senders;
        for s in 0..s_count {
            let end = plan.range(s).end;
            let cut = rest.partition_point(|(v, _)| v.index() < end);
            let (mine, tail) = rest.split_at(cut);
            sender_slices.push(mine);
            rest = tail;
        }
        debug_assert!(rest.is_empty(), "every sender belongs to a shard");
    }

    // Send half: each source shard expands its senders into one batch queue
    // per destination shard. Intra-shard messages land in the queue addressed
    // to the source shard itself and are drained locally below.
    let expand_shard = |mine: &[(NodeId, S)]| -> Vec<Deliveries<M>> {
        let mut out: Vec<Deliveries<M>> = (0..s_count).map(|_| Vec::new()).collect();
        for (v, payload) in mine {
            expand(*v, payload, &mut |u, e, m| {
                out[plan.shard_of(u)].push((u, *v, e, m));
            });
        }
        out
    };
    let per_src: Vec<Vec<Deliveries<M>>> = if threads <= 1 || s_count <= 1 {
        sender_slices
            .iter()
            .map(|mine| expand_shard(mine))
            .collect()
    } else {
        let mut results: Vec<Option<Vec<Deliveries<M>>>> = (0..s_count).map(|_| None).collect();
        exec::pool_for(threads).scope(|sc| {
            let mut rest = results.as_mut_slice();
            for mine in &sender_slices {
                let (slot, tail) = rest.split_first_mut().expect("one slot per shard");
                rest = tail;
                let expand_shard = &expand_shard;
                sc.spawn(move |_| *slot = Some(expand_shard(mine)));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every shard task completes"))
            .collect()
    };

    // Accounting: `u64` addition commutes, so charging (src, dst)-ordered
    // batches reproduces the sequential totals and congestion vector exactly.
    let bytes = 4 * M::LANES as u64;
    for batches in &per_src {
        for batch in batches {
            for (_, _, e, m) in batch {
                metrics.add_messages_sized(*e, m.words() as u64, bytes);
            }
        }
    }

    // Round barrier: transpose the queue matrix from [src][dst] to [dst][src]
    // (moves Vec headers only — no message is copied).
    let mut per_dst: Vec<Vec<Deliveries<M>>> =
        (0..s_count).map(|_| Vec::with_capacity(s_count)).collect();
    for batches in per_src {
        for (d, batch) in batches.into_iter().enumerate() {
            per_dst[d].push(batch);
        }
    }

    // Receive half: each destination shard drains the batches addressed to it,
    // source shards in order, into its own mailbox range. Source-shard order ×
    // in-shard sender order × emission order = the global (shard, node, edge)
    // order of the sequential path.
    let drain = |start: usize, mailboxes: &mut [Vec<(NodeId, M)>], batches: Vec<Deliveries<M>>| {
        for batch in batches {
            for (u, v, _e, msg) in batch {
                mailboxes[u.index() - start].push((v, msg));
            }
        }
    };
    if threads <= 1 || s_count <= 1 {
        for (d, batches) in per_dst.into_iter().enumerate() {
            let range = plan.range(d);
            drain(range.start, &mut inboxes[range.clone()], batches);
        }
    } else {
        exec::pool_for(threads).scope(|sc| {
            let mut rest = inboxes;
            for (d, batches) in per_dst.into_iter().enumerate() {
                let range = plan.range(d);
                let (mine, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let drain = &drain;
                sc.spawn(move |_| drain(range.start, mine, batches));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, Graph};

    fn backends() -> Vec<ExecutorConfig> {
        vec![
            ExecutorConfig::sequential(),
            ExecutorConfig::with_threads(4),
            ExecutorConfig::sharded(1),
            ExecutorConfig::sharded(3),
            // `with_backend` swaps the backend of an existing config: a
            // 4-thread chunked executor re-pointed at 8-shard delivery.
            ExecutorConfig::with_threads(4).with_backend(DeliveryBackend::Sharded { shards: 8 }),
            // Sharded layout driven single-threaded: the inline shard loop.
            ExecutorConfig::sequential().with_backend(DeliveryBackend::Sharded { shards: 4 }),
        ]
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        for (n, shards) in [(0, 3), (1, 1), (7, 3), (16, 4), (5, 9), (40, 8)] {
            let plan = ShardPlan::new(n, shards);
            let covered: Vec<usize> = plan.ranges().flatten().collect();
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
            for v in 0..n {
                let s = plan.shard_of(NodeId::new(v));
                assert!(plan.range(s).contains(&v), "node {v} in its shard's range");
            }
        }
    }

    #[test]
    fn plan_clamps_shard_count() {
        assert_eq!(ShardPlan::new(4, 0).shards(), 1);
        assert_eq!(ShardPlan::new(4, 100).shards(), 4);
        assert_eq!(ShardPlan::new(0, 5).shards(), 1);
    }

    /// A broadcast-style expansion over a graph: every backend must fill the
    /// inboxes in the identical order and charge identical metrics.
    fn run_delivery(g: &Graph, cfg: &ExecutorConfig) -> (Metrics, Vec<Vec<(NodeId, u64)>>) {
        // Every third node sends its ID over each incident edge.
        let senders: Vec<(NodeId, u64)> = g
            .nodes()
            .filter(|v| v.index() % 3 == 0)
            .map(|v| (v, v.index() as u64))
            .collect();
        let expand = |v: NodeId, payload: &u64, sink: &mut dyn FnMut(NodeId, EdgeId, u64)| {
            for (e, u) in g.incident(v) {
                sink(u, e, *payload);
            }
        };
        let mut metrics = Metrics::new(g.m());
        let mut inboxes: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); g.n()];
        deliver_phase(cfg, &senders, &expand, &mut metrics, &mut inboxes);
        (metrics, inboxes)
    }

    #[test]
    fn all_backends_deliver_identically() {
        for g in [
            generators::gnp_connected(30, 0.2, 5),
            generators::star(17),
            generators::path(23),
        ] {
            let (base_metrics, base_inboxes) = run_delivery(&g, &ExecutorConfig::sequential());
            for cfg in backends() {
                let (m, i) = run_delivery(&g, &cfg);
                assert_eq!(base_metrics, m, "metrics under {cfg:?}");
                assert_eq!(base_inboxes, i, "inbox order under {cfg:?}");
            }
        }
    }

    #[test]
    fn empty_round_is_free() {
        let g = generators::path(5);
        for cfg in backends() {
            let expand = |_v: NodeId, _p: &u64, _s: &mut dyn FnMut(NodeId, EdgeId, u64)| {
                panic!("no senders, no expansion")
            };
            let mut metrics = Metrics::new(g.m());
            let mut inboxes: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); g.n()];
            deliver_phase(&cfg, &[], &expand, &mut metrics, &mut inboxes);
            assert_eq!(metrics.messages, 0);
            assert!(inboxes.iter().all(Vec::is_empty));
        }
    }
}
