//! The BCONGEST model: algorithm trait and direct (unsimulated) runner.
//!
//! [`BcongestAlgorithm`] is the central abstraction of this workspace. It describes a
//! BCONGEST algorithm (§1.1.2: every round a node sends the *same* message to all its
//! neighbors) as a **pure per-node state machine**. Purity is load-bearing:
//!
//! * the direct runner below executes it while counting rounds, messages, and the
//!   paper's *broadcast complexity* `B`;
//! * the Theorem 2.1 simulation lets cluster centers replicate member state machines;
//! * the Theorem 3.9/3.10 simulations step the same machines at their own nodes but
//!   deliver message *aggregates* instead of raw messages.
//!
//! All three executions of the same algorithm with the same seed produce identical
//! outputs — which is exactly the correctness statement of Lemmas 2.5/3.14/3.20, and is
//! asserted wholesale by the integration tests.

use crate::error::EngineError;
use crate::exec::{self, ExecutorConfig};
use crate::faults::{FaultEvent, FaultPlan, FaultResponse, FaultState};
use crate::metrics::Metrics;
use crate::plane::RoundPlane;
use crate::shard;
use crate::view::LocalView;
use crate::wire::{Wire, WireDecode};
use congest_graph::{rng, EdgeId, Graph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

/// A BCONGEST algorithm as a pure per-node state machine.
///
/// ## Contract
///
/// * [`broadcast`](Self::broadcast) must be a pure function of `(state, round)`;
/// * after the runner collects a broadcast it calls
///   [`on_broadcast_sent`](Self::on_broadcast_sent), the mutation point for "my message
///   went out" (e.g. popping a send queue);
/// * [`receive`](Self::receive) is invoked only on rounds where the node receives at
///   least one message — state machines must not rely on empty-inbox ticks (use the
///   `round` argument instead);
/// * [`next_activity`](Self::next_activity) lets the runner skip provably-idle rounds
///   (they are still counted); return the earliest future round at which the node might
///   broadcast *absent further input*.
pub trait BcongestAlgorithm {
    /// Per-node state.
    type State: Clone + std::fmt::Debug;
    /// The broadcast message type; must fit in one word (one `O(log n)`-bit
    /// message). The [`WireDecode`] bound gives every message a fixed-width
    /// packed codec so any algorithm can run on either message plane.
    type Msg: WireDecode;
    /// Per-node output.
    type Output: Clone + std::fmt::Debug + PartialEq;

    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> &'static str;

    /// Initial state of a node, from its local knowledge.
    fn init(&self, view: &LocalView<'_>) -> Self::State;

    /// The message this node broadcasts in `round`, if any. Pure.
    fn broadcast(&self, state: &Self::State, round: usize) -> Option<Self::Msg>;

    /// Called exactly once right after a non-`None` broadcast was collected in `round`.
    fn on_broadcast_sent(&self, state: &mut Self::State, round: usize);

    /// Delivers the messages this node receives in `round` (all broadcast by neighbors
    /// in the same round). Only called when `msgs` is non-empty.
    fn receive(&self, state: &mut Self::State, round: usize, msgs: &[(NodeId, Self::Msg)]);

    /// Whether this node's output is final and it will never broadcast again.
    fn is_done(&self, state: &Self::State) -> bool;

    /// This node's output.
    fn output(&self, state: &Self::State) -> Self::Output;

    /// Earliest round `>= after` at which this node might broadcast, assuming it
    /// receives nothing further. `None` if it will stay silent forever absent input.
    ///
    /// The default is conservative: active every round until done.
    fn next_activity(&self, state: &Self::State, after: usize) -> Option<usize> {
        if self.is_done(state) {
            None
        } else {
            Some(after)
        }
    }

    /// A safe upper bound on the number of rounds on an `n`-node, `m`-edge graph
    /// (the paper's known bound `T_A`). Used as the default round guard and as the
    /// denominator in the Theorem 2.1 overhead experiments.
    fn round_bound(&self, n: usize, m: usize) -> usize;

    /// Size of one node's output in words (`Out = Σ_v output_words`).
    fn output_words(&self, out: &Self::Output) -> usize;

    /// Fault-response hook for [`FaultResponse::SelfHeal`] plans: called on
    /// every live node at the start of a fault round, right after the round's
    /// events applied (freshly recovered nodes are re-initialized instead).
    /// Default: no-op — only algorithms that actually self-stabilize (e.g.
    /// leader election re-arming its flood) override this.
    fn on_fault(&self, _state: &mut Self::State, _round: usize) {}
}

/// An aggregation-based BCONGEST algorithm (Definition 3.1).
///
/// [`aggregate`](Self::aggregate) must return a *subset* of the input messages,
/// representable in `Õ(1)` words, such that delivering the union of aggregates of any
/// partition of a round's messages leaves [`BcongestAlgorithm::receive`] with the same
/// effect as delivering all messages. (min/max/sum-style algorithms qualify; so do
/// collections of BFS algorithms once only `O(log n)` of them are active per
/// neighborhood per round — Theorem 1.4.)
pub trait AggregationAlgorithm: BcongestAlgorithm {
    /// Reduces a batch of same-round messages addressed to `receiver` to an equivalent
    /// small subset.
    fn aggregate(
        &self,
        receiver: NodeId,
        round: usize,
        msgs: Vec<(NodeId, Self::Msg)>,
    ) -> Vec<(NodeId, Self::Msg)>;

    /// Upper bound (in words) on the size of any aggregate this algorithm produces; the
    /// simulations assert it. `Õ(1)` for a faithful Definition-3.1 algorithm.
    fn aggregate_budget(&self, n: usize) -> usize;
}

/// Options for [`run_bcongest`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Hard round limit; `None` uses 4×[`BcongestAlgorithm::round_bound`] + 64.
    pub max_rounds: Option<usize>,
    /// Master seed; per-node seeds are derived from it.
    pub seed: u64,
    /// How the per-node phases execute. Outputs and [`Metrics`] are
    /// byte-identical at every thread count; `threads = 1` (the default) is the
    /// sequential path.
    pub exec: ExecutorConfig,
    /// Optional fault-injection schedule (see [`crate::faults`]). `None`
    /// (the default) runs fault-free. Faulty runs stay byte-identical across
    /// every backend × plane configuration.
    pub faults: Option<FaultPlan>,
}

/// Result of a direct BCONGEST execution.
#[derive(Clone, Debug)]
pub struct BcongestRun<O> {
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<O>,
    /// Rounds, messages (Σ deg over broadcasts), broadcast complexity `B`, congestion.
    pub metrics: Metrics,
    /// Words of input over all nodes (`I_n / log n` in the paper's notation).
    pub input_words: usize,
    /// Words of output over all nodes (`Out`).
    pub output_words: usize,
}

/// Runs `algo` directly in the BCONGEST model on `g`.
///
/// # Errors
///
/// Returns [`EngineError::RoundLimitExceeded`] if the algorithm does not quiesce within
/// the round limit.
pub fn run_bcongest<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &RunOptions,
) -> Result<BcongestRun<A::Output>, EngineError>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    run_bcongest_inner(algo, g, weights, opts, None)
}

/// Like [`run_bcongest`], but invokes `observe(node, round, inbox)` for every non-empty
/// inbox — used by the Theorem 1.4 experiments to count distinct BFS sources per
/// node-round. Observers see inboxes in node order: the receive phase runs
/// sequentially when one is attached (the other phases still honor
/// [`RunOptions::exec`]).
pub fn run_bcongest_observed<A, F>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &RunOptions,
    mut observe: F,
) -> Result<BcongestRun<A::Output>, EngineError>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    F: FnMut(NodeId, usize, &[(NodeId, A::Msg)]),
{
    run_bcongest_inner(algo, g, weights, opts, Some(&mut observe))
}

/// The round loop behind both entry points. Every phase shards nodes into
/// contiguous chunks via [`exec`] and merges per-chunk results in fixed node
/// order, so outputs and metrics are byte-identical at every thread count.
#[allow(clippy::type_complexity)]
fn run_bcongest_inner<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &RunOptions,
    mut observer: Option<&mut dyn FnMut(NodeId, usize, &[(NodeId, A::Msg)])>,
) -> Result<BcongestRun<A::Output>, EngineError>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let n = g.n();
    let cfg = &opts.exec;
    let mut metrics = Metrics::new(g.m());
    let init_node = |i: usize| {
        let view = LocalView::new(g, weights, NodeId::new(i), rng::node_seed(opts.seed, i));
        algo.init(&view)
    };
    let mut states: Vec<A::State> =
        exec::map_ranges(cfg, n, |range| range.map(init_node).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();

    if let Some(plan) = &opts.faults {
        if let Err(e) = plan.validate(g) {
            panic!("invalid FaultPlan: {e}");
        }
    }
    let mut fault_rt: Option<FaultState<'_>> =
        opts.faults.as_ref().map(|plan| FaultState::new(plan, g));

    let base_limit = 4 * algo.round_bound(n, g.m()) + 64;
    let limit = opts.max_rounds.unwrap_or_else(|| match &opts.faults {
        // Every fault round can restart the algorithm from scratch, so the
        // guard scales with the number of fault rounds.
        Some(plan) => {
            (plan.fault_rounds().len() + 1) * base_limit + plan.last_fault_round().unwrap_or(0)
        }
        None => base_limit,
    });

    let mut plane: RoundPlane<A::Msg> = RoundPlane::new(cfg, n);
    // One chooser per Auto run: resolves the delivery backend per round from
    // the round's measured message volume (never the thread count, so the
    // decision log stays byte-identical across thread counts).
    let mut chooser = (cfg.backend == exec::DeliveryBackend::Auto)
        .then(|| exec::BackendChooser::new(exec::AutoCostModel::calibrated(), n));
    let mut round: usize = 0;
    let mut rounds_used: u64 = 0;

    loop {
        if round > limit {
            return Err(EngineError::RoundLimitExceeded {
                algorithm: algo.name(),
                limit,
            });
        }

        // 0. Apply fault events due this round, then the response policy.
        //    This runs sequentially before any phase fans out, so faulty runs
        //    stay byte-identical across the whole backend × plane matrix.
        if let Some(fs) = fault_rt.as_mut() {
            let fired = fs.apply_due(round);
            if !fired.is_empty() {
                match fs.response() {
                    FaultResponse::Restart => {
                        for (i, st) in states.iter_mut().enumerate() {
                            if fs.mask.node_up[i] {
                                *st = init_node(i);
                            }
                        }
                    }
                    FaultResponse::SelfHeal => {
                        for ev in &fired {
                            if let FaultEvent::Recover(v) = ev {
                                states[v.index()] = init_node(v.index());
                            }
                        }
                        for (i, st) in states.iter_mut().enumerate() {
                            if fs.mask.node_up[i] {
                                algo.on_fault(st, round);
                            }
                        }
                    }
                }
            }
        }

        // 1. Collect broadcasts (pure reads, chunked over nodes; concatenating
        //    per-chunk batches in chunk order reproduces the sequential node
        //    order exactly), then apply send transitions. Crashed nodes send
        //    nothing.
        let broadcasters: Vec<(NodeId, A::Msg)> = shard::collect_sends(cfg, &states, |i, st| {
            if let Some(fs) = &fault_rt {
                if !fs.mask.node_up[i] {
                    return None;
                }
            }
            let msg = algo.broadcast(st, round);
            if let Some(m) = &msg {
                debug_assert_eq!(
                    m.words(),
                    1,
                    "BCONGEST broadcasts must be single O(log n)-bit messages"
                );
            }
            msg
        });
        for (v, _) in &broadcasters {
            algo.on_broadcast_sent(&mut states[v.index()], round);
        }

        // 2. Deliver: each broadcast crosses every incident edge, through the
        //    configured backend — inline pushes, chunk-order-merged outboxes,
        //    or sharded mailboxes with batched cross-shard queues. Each inbox
        //    receives messages in broadcaster order under every backend, so
        //    the paths are indistinguishable. Messages over down edges or to
        //    crashed receivers are dropped at the single expansion point both
        //    planes share — never delivered, never charged, only counted
        //    (`u64` addition commutes, so the count is thread-order-free).
        metrics.broadcasts += broadcasters.len() as u64;
        // Auto backend: resolve this round's delivery backend from its
        // pre-fault message volume (Σ deg over broadcasters — what delivery
        // is about to move) and log the decision. The volume is a pure
        // function of the states, so the log is deterministic.
        let round_cfg = chooser.as_mut().map(|ch| {
            let volume: u64 = broadcasters.iter().map(|(v, _)| g.degree(*v) as u64).sum();
            let chosen = ch.choose(volume);
            metrics.record_backend_decision(exec::BackendDecision {
                round: round as u64,
                volume,
                backend: chosen,
            });
            cfg.clone().with_backend(chosen)
        });
        let deliver_cfg = round_cfg.as_ref().unwrap_or(cfg);
        let dropped = AtomicU64::new(0);
        let fault_mask = fault_rt.as_ref().map(|fs| &fs.mask);
        let expand = |v: NodeId, msg: &A::Msg, sink: &mut dyn FnMut(NodeId, EdgeId, A::Msg)| {
            for (e, u) in g.incident(v) {
                if let Some(mask) = fault_mask {
                    if !mask.edge_up[e.index()] || !mask.node_up[u.index()] {
                        dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                sink(u, e, msg.clone());
            }
        };
        plane.deliver(deliver_cfg, &broadcasters, &expand, &mut metrics);
        metrics.dropped_messages += dropped.load(Ordering::Relaxed);

        // 3. Receive: per-node state transitions, sharded with their inboxes.
        //    With an observer attached the phase stays sequential so the
        //    callback sees inboxes in node order.
        let any_received = if let Some(obs) = observer.as_mut() {
            plane.receive_each_seq(&mut states, |i, st, inbox| {
                obs(NodeId::new(i), round, inbox);
                algo.receive(st, round, inbox);
            })
        } else {
            plane.receive(cfg, &mut states, |st, inbox| {
                algo.receive(st, round, inbox);
            })
        };

        // 4. Termination / idle-round skipping. Only rounds up to the last activity
        // count: a real execution halts after its final message.
        if !broadcasters.is_empty() || any_received {
            rounds_used = round as u64 + 1;
            round += 1;
            continue;
        }
        // Crashed nodes claim no activity (their frozen state may still be
        // "dirty"), so with faults active the min runs sequentially with node
        // indices — a pure min, identical at every thread count. The idle
        // skip also never jumps past a scheduled fault round.
        let next_alg = if let Some(fs) = &fault_rt {
            states
                .iter()
                .enumerate()
                .filter(|&(i, _)| fs.mask.node_up[i])
                .filter_map(|(_, st)| algo.next_activity(st, round + 1))
                .min()
        } else {
            exec::min_chunks(cfg, &states, |st| algo.next_activity(st, round + 1))
        };
        let next_fault = fault_rt
            .as_ref()
            .and_then(|fs| fs.next_fault_round())
            .map(|r| r.max(round + 1));
        let next = match (next_alg, next_fault) {
            (Some(a), Some(f)) => Some(a.min(f)),
            (a, None) => a,
            (None, f) => f,
        };
        match next {
            Some(r) => {
                debug_assert!(r > round, "next_activity must move forward");
                round = r;
            }
            None => break,
        }
    }

    metrics.rounds = rounds_used;

    let outputs: Vec<A::Output> = states.iter().map(|s| algo.output(s)).collect();
    let output_words = outputs.iter().map(|o| algo.output_words(o)).sum();
    let input_words = (0..n)
        .map(|i| LocalView::new(g, weights, NodeId::new(i), 0).input_words())
        .sum();

    Ok(BcongestRun {
        outputs,
        metrics,
        input_words,
        output_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Toy algorithm: flood the minimum ID; output it. Broadcast-on-improvement.
    struct MinFlood;

    #[derive(Clone, Debug)]
    struct FloodState {
        best: u32,
        dirty: bool,
    }

    impl BcongestAlgorithm for MinFlood {
        type State = FloodState;
        type Msg = u32;
        type Output = u32;

        fn name(&self) -> &'static str {
            "min-flood"
        }
        fn init(&self, view: &LocalView<'_>) -> FloodState {
            FloodState {
                best: view.node().raw(),
                dirty: true,
            }
        }
        fn broadcast(&self, s: &FloodState, _round: usize) -> Option<u32> {
            s.dirty.then_some(s.best)
        }
        fn on_broadcast_sent(&self, s: &mut FloodState, _round: usize) {
            s.dirty = false;
        }
        fn receive(&self, s: &mut FloodState, _round: usize, msgs: &[(NodeId, u32)]) {
            for &(_, m) in msgs {
                if m < s.best {
                    s.best = m;
                    s.dirty = true;
                }
            }
        }
        fn is_done(&self, s: &FloodState) -> bool {
            !s.dirty
        }
        fn output(&self, s: &FloodState) -> u32 {
            s.best
        }
        fn round_bound(&self, n: usize, _m: usize) -> usize {
            2 * n + 2
        }
        fn output_words(&self, _out: &u32) -> usize {
            1
        }
    }

    #[test]
    fn min_flood_converges_to_zero() {
        let g = generators::gnp_connected(30, 0.1, 3);
        let run = run_bcongest(&MinFlood, &g, None, &RunOptions::default()).expect("min-flood run");
        assert!(run.outputs.iter().all(|&o| o == 0));
        // Rounds at least the eccentricity of node 0.
        let ecc = congest_graph::reference::eccentricity(&g, NodeId::new(0))
            .expect("connected graph") as u64;
        assert!(run.metrics.rounds >= ecc);
        assert!(run.metrics.broadcasts >= g.n() as u64);
        // Messages = Σ over broadcasts of deg.
        assert!(run.metrics.messages >= run.metrics.broadcasts);
    }

    #[test]
    fn message_count_on_star() {
        // Round 0: all 5 nodes broadcast their own ID (hub deg 4, leaves deg 1 each
        // → 8 messages). Leaves learn 0 and re-broadcast it in round 1 (4 more
        // broadcasts, 4 messages); the hub learns nothing new. Quiescent after that.
        let g = generators::star(5);
        let run = run_bcongest(&MinFlood, &g, None, &RunOptions::default()).expect("min-flood run");
        assert_eq!(run.metrics.broadcasts, 9);
        assert_eq!(run.metrics.messages, 12);
        assert_eq!(run.metrics.rounds, 2);
    }

    #[test]
    fn round_limit_error() {
        struct Chatter;
        impl BcongestAlgorithm for Chatter {
            type State = ();
            type Msg = u32;
            type Output = ();
            fn name(&self) -> &'static str {
                "chatter"
            }
            fn init(&self, _: &LocalView<'_>) {}
            fn broadcast(&self, _: &(), _: usize) -> Option<u32> {
                Some(1)
            }
            fn on_broadcast_sent(&self, _: &mut (), _: usize) {}
            fn receive(&self, _: &mut (), _: usize, _: &[(NodeId, u32)]) {}
            fn is_done(&self, _: &()) -> bool {
                false
            }
            fn output(&self, _: &()) {}
            fn round_bound(&self, _: usize, _: usize) -> usize {
                4
            }
            fn output_words(&self, _: &()) -> usize {
                0
            }
        }
        let g = generators::path(3);
        let err = run_bcongest(&Chatter, &g, None, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn faults_freeze_crashed_nodes_and_restart_the_rest() {
        use crate::exec::MessagePlane;
        use crate::faults::{FaultEvent, FaultPlan, FaultResponse};

        // Path 0-1-2-3-4: node 2 crashes at round 1, cutting the path in two.
        let g = generators::path(5);
        let plan = FaultPlan::new(FaultResponse::Restart).at(1, FaultEvent::Crash(NodeId::new(2)));
        let opts = RunOptions {
            faults: Some(plan.clone()),
            ..Default::default()
        };
        let run = run_bcongest(&MinFlood, &g, None, &opts).expect("faulty run");
        // Live components converge to their own minimum id.
        assert_eq!(run.outputs[0], 0);
        assert_eq!(run.outputs[1], 0);
        assert_eq!(run.outputs[3], 3);
        assert_eq!(run.outputs[4], 3);
        // Node 2 is frozen at its end-of-round-0 state (it had heard 1).
        assert_eq!(run.outputs[2], 1);
        // Neighbors of the corpse keep talking into the void at the restart.
        assert!(run.metrics.dropped_messages > 0);

        // The faulty run is conformant across backends and planes.
        for exec in [
            ExecutorConfig::with_threads(4),
            ExecutorConfig::sharded(2),
            ExecutorConfig::sequential().with_plane(MessagePlane::Flat),
            ExecutorConfig::sharded(3).with_plane(MessagePlane::Flat),
        ] {
            let alt = run_bcongest(
                &MinFlood,
                &g,
                None,
                &RunOptions {
                    faults: Some(plan.clone()),
                    exec,
                    ..Default::default()
                },
            )
            .expect("faulty run (alt config)");
            assert_eq!(alt.outputs, run.outputs);
            assert_eq!(alt.metrics, run.metrics);
        }
    }

    #[test]
    fn churned_edges_recover_and_heal() {
        use crate::faults::{FaultPlan, FaultResponse};

        // Down half the cycle's edges for rounds 0..3, then bring them back
        // with a Restart response: the final restart reruns MinFlood on the
        // full cycle, so everyone still converges to 0.
        let g = generators::cycle(8);
        let plan = FaultPlan::edge_churn(&g, 4, 0, 3, 9, FaultResponse::Restart);
        let run = run_bcongest(
            &MinFlood,
            &g,
            None,
            &RunOptions {
                faults: Some(plan),
                ..Default::default()
            },
        )
        .expect("churned run");
        assert!(run.outputs.iter().all(|&o| o == 0));
        assert!(run.metrics.dropped_messages > 0);
    }

    #[test]
    fn observer_sees_inboxes() {
        let g = generators::path(3);
        let mut seen = 0usize;
        let _ = run_bcongest_observed(
            &MinFlood,
            &g,
            None,
            &RunOptions::default(),
            |_v, _r, inbox| {
                seen += inbox.len();
            },
        )
        .expect("observed min-flood run");
        assert!(seen > 0);
    }
}
