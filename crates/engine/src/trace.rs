//! Replayable execution traces: per-round recording of fault events and
//! message deliveries, with a JSONL codec, DOT rendering, and a structural
//! conformance check.
//!
//! [`record_bcongest`] / [`record_congest`] wrap the observed runners and
//! capture every delivered message (packed into its [`WireEncode`] `u32`
//! lanes — the same wire format the flat plane uses), every fault event that
//! fired, the final outputs (as their canonical `Debug` rendering) and the
//! full [`Metrics`] including the congestion vector. The resulting
//! [`TraceLog`] is a value: two runs conform iff their logs are `==`.
//!
//! The JSONL codec ([`TraceLog::to_jsonl`] / [`TraceLog::from_jsonl`]) is
//! hand-rolled like every other serialization in this workspace and
//! round-trips exactly (property-tested in `crates/engine/tests`). Replay —
//! re-executing the workload named in the header under the recorded executor
//! configuration and asserting the fresh log equals the recorded one — lives
//! in `congest-workloads`, which owns the name → workload registry.

use crate::faults::{FaultEvent, FaultPlan, SurvivorMask};
use crate::metrics::Metrics;
use crate::{
    BcongestAlgorithm, BcongestRun, CongestAlgorithm, CongestRun, DeliveryBackend, EngineError,
    ExecutorConfig, MessagePlane, RunOptions, WireEncode,
};
use congest_graph::dot::{self, DotOptions, EdgeStyle};
use congest_graph::{EdgeId, Graph, NodeId};

/// One delivered message: receiver, sender, and the packed `u32` lanes of the
/// payload (exactly `Msg::LANES` of them — the flat plane's wire format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDelivery {
    /// Receiving node id.
    pub to: u32,
    /// Sending node id.
    pub from: u32,
    /// Packed payload lanes.
    pub lanes: Vec<u32>,
}

/// Everything that happened in one recorded round that had any activity:
/// fault events applied at its start, then the messages delivered at its end
/// (in the deterministic (receiver, sender) delivery order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRound {
    /// Round number (0-based).
    pub round: usize,
    /// Fault events applied at the start of this round.
    pub faults: Vec<FaultEvent>,
    /// Messages delivered at the end of this round.
    pub deliveries: Vec<TraceDelivery>,
}

/// A plain-data mirror of [`Metrics`] (the congestion vector made public) so
/// traces can be compared and serialized field by field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMetrics {
    /// Synchronous rounds.
    pub rounds: u64,
    /// CONGEST messages (words).
    pub messages: u64,
    /// BCONGEST broadcast operations.
    pub broadcasts: u64,
    /// Implementation payload bytes.
    pub payload_bytes: u64,
    /// Messages dropped by fault injection.
    pub dropped_messages: u64,
    /// Per-edge congestion, indexed by [`EdgeId`].
    pub congestion: Vec<u64>,
}

impl From<&Metrics> for TraceMetrics {
    fn from(m: &Metrics) -> Self {
        Self {
            rounds: m.rounds,
            messages: m.messages,
            broadcasts: m.broadcasts,
            payload_bytes: m.payload_bytes,
            dropped_messages: m.dropped_messages,
            congestion: m.congestion().to_vec(),
        }
    }
}

/// A complete recorded execution: header (what ran, where, under which
/// executor configuration), the per-round event/delivery log, and the final
/// outputs + metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLog {
    /// Workload/scenario name (a `congest-workloads` registry name for
    /// replayable traces).
    pub workload: String,
    /// `"bcongest"`, `"congest"`, or `"composite"` (outcome-level trace of a
    /// multi-phase workload with no single runner loop).
    pub kind: String,
    /// Node count of the graph the run executed on.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Executor threads.
    pub threads: usize,
    /// Delivery backend label — see [`backend_label`].
    pub backend: String,
    /// Message plane label — see [`plane_label`].
    pub plane: String,
    /// `u32` lanes per message of the run's message type.
    pub lanes: usize,
    /// Fault-response label: `"none"`, `"restart"` or `"self-heal"`.
    pub response: String,
    /// Rounds with any recorded activity, ascending.
    pub rounds: Vec<TraceRound>,
    /// Canonical `Debug` rendering of the per-node output vector.
    pub output: String,
    /// Final metrics (congestion vector included).
    pub metrics: TraceMetrics,
}

impl TraceLog {
    /// An outcome-level trace for a workload that is not a single runner loop
    /// (multi-phase compositions): header + outputs + metrics, empty rounds.
    pub fn composite(
        workload: &str,
        g: &Graph,
        seed: u64,
        cfg: &ExecutorConfig,
        output: String,
        metrics: &Metrics,
    ) -> Self {
        Self {
            workload: workload.to_string(),
            kind: "composite".to_string(),
            n: g.n(),
            m: g.m(),
            seed,
            threads: cfg.threads,
            backend: backend_label(&cfg.backend),
            plane: plane_label(&cfg.message_plane).to_string(),
            lanes: 0,
            response: "none".to_string(),
            rounds: Vec::new(),
            output,
            metrics: TraceMetrics::from(metrics),
        }
    }

    /// Reconstructs the executor configuration the trace was recorded under.
    pub fn exec_config(&self) -> Result<ExecutorConfig, String> {
        Ok(ExecutorConfig {
            threads: self.threads,
            backend: parse_backend(&self.backend)?,
            message_plane: parse_plane(&self.plane)?,
        })
    }

    /// Serializes to JSONL: a header line, one line per recorded round, and a
    /// footer line with outputs + metrics. [`TraceLog::from_jsonl`] is the
    /// exact inverse.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"workload\":{},\"kind\":{},\"n\":{},\"m\":{},\"seed\":{},\"threads\":{},\
             \"backend\":{},\"plane\":{},\"lanes\":{},\"response\":{}}}\n",
            json_str(&self.workload),
            json_str(&self.kind),
            self.n,
            self.m,
            self.seed,
            self.threads,
            json_str(&self.backend),
            json_str(&self.plane),
            self.lanes,
            json_str(&self.response),
        ));
        for r in &self.rounds {
            let faults: Vec<String> = r.faults.iter().map(|e| json_str(&event_label(e))).collect();
            let deliveries: Vec<String> = r
                .deliveries
                .iter()
                .map(|d| {
                    let mut nums = vec![d.to.to_string(), d.from.to_string()];
                    nums.extend(d.lanes.iter().map(u32::to_string));
                    format!("[{}]", nums.join(","))
                })
                .collect();
            out.push_str(&format!(
                "{{\"round\":{},\"faults\":[{}],\"deliveries\":[{}]}}\n",
                r.round,
                faults.join(","),
                deliveries.join(","),
            ));
        }
        let congestion: Vec<String> = self.metrics.congestion.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "{{\"output\":{},\"rounds\":{},\"messages\":{},\"broadcasts\":{},\
             \"payload_bytes\":{},\"dropped\":{},\"congestion\":[{}]}}\n",
            json_str(&self.output),
            self.metrics.rounds,
            self.metrics.messages,
            self.metrics.broadcasts,
            self.metrics.payload_bytes,
            self.metrics.dropped_messages,
            congestion.join(","),
        ));
        out
    }

    /// Parses a trace serialized by [`TraceLog::to_jsonl`].
    pub fn from_jsonl(s: &str) -> Result<Self, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = parse_object(lines.next().ok_or("empty trace")?)?;
        let lanes = get_u64(&header, "lanes")? as usize;
        let mut rounds = Vec::new();
        let mut footer = None;
        for line in lines {
            let obj = parse_object(line)?;
            if lookup(&obj, "round").is_some() {
                let faults = get_arr(&obj, "faults")?
                    .iter()
                    .map(|j| parse_event(j.as_str()?))
                    .collect::<Result<Vec<_>, _>>()?;
                let deliveries = get_arr(&obj, "deliveries")?
                    .iter()
                    .map(|j| {
                        let nums = j.as_arr()?;
                        if nums.len() != 2 + lanes {
                            return Err(format!(
                                "delivery has {} fields, expected {}",
                                nums.len(),
                                2 + lanes
                            ));
                        }
                        let mut it = nums.iter().map(Json::as_u64);
                        Ok(TraceDelivery {
                            to: it.next().unwrap()? as u32,
                            from: it.next().unwrap()? as u32,
                            lanes: it
                                .map(|v| v.map(|x| x as u32))
                                .collect::<Result<Vec<_>, _>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                rounds.push(TraceRound {
                    round: get_u64(&obj, "round")? as usize,
                    faults,
                    deliveries,
                });
            } else {
                footer = Some(obj);
            }
        }
        let footer = footer.ok_or("missing footer line")?;
        Ok(Self {
            workload: get_str(&header, "workload")?,
            kind: get_str(&header, "kind")?,
            n: get_u64(&header, "n")? as usize,
            m: get_u64(&header, "m")? as usize,
            seed: get_u64(&header, "seed")?,
            threads: get_u64(&header, "threads")? as usize,
            backend: get_str(&header, "backend")?,
            plane: get_str(&header, "plane")?,
            lanes,
            response: get_str(&header, "response")?,
            rounds,
            output: get_str(&footer, "output")?,
            metrics: TraceMetrics {
                rounds: get_u64(&footer, "rounds")?,
                messages: get_u64(&footer, "messages")?,
                broadcasts: get_u64(&footer, "broadcasts")?,
                payload_bytes: get_u64(&footer, "payload_bytes")?,
                dropped_messages: get_u64(&footer, "dropped")?,
                congestion: get_arr(&footer, "congestion")?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Result<Vec<_>, _>>()?,
            },
        })
    }

    /// Renders the post-fault topology as GraphViz DOT: crashed nodes grouped
    /// (and colored) separately, unusable edges dashed.
    pub fn to_dot(&self, g: &Graph) -> String {
        assert_eq!((g.n(), g.m()), (self.n, self.m), "graph mismatch");
        let mut mask = SurvivorMask::all_up(g);
        for round in &self.rounds {
            for &ev in &round.faults {
                mask.apply(ev);
            }
        }
        let edge_style: Vec<EdgeStyle> = (0..g.m())
            .map(|i| {
                if mask.allows(g, EdgeId::new(i)) {
                    EdgeStyle::Plain
                } else {
                    EdgeStyle::Dashed
                }
            })
            .collect();
        let cluster_of: Vec<usize> = mask
            .node_up
            .iter()
            .map(|&up| if up { 0 } else { 1 })
            .collect();
        dot::to_dot(
            g,
            &DotOptions {
                cluster_of: Some(cluster_of),
                edge_style: Some(edge_style),
                label: Some(format!(
                    "{} — {} rounds, {} messages, {} dropped",
                    self.workload,
                    self.metrics.rounds,
                    self.metrics.messages,
                    self.metrics.dropped_messages
                )),
            },
        )
    }

    /// Structural conformance: `Ok(())` iff the logs are identical, otherwise
    /// a description of the first divergence (for test failure messages).
    pub fn conforms(&self, other: &TraceLog) -> Result<(), String> {
        if self == other {
            return Ok(());
        }
        let header = |t: &TraceLog| {
            (
                t.workload.clone(),
                t.kind.clone(),
                t.n,
                t.m,
                t.seed,
                t.threads,
                t.backend.clone(),
                t.plane.clone(),
                t.lanes,
                t.response.clone(),
            )
        };
        if header(self) != header(other) {
            return Err(format!(
                "header mismatch: {:?} vs {:?}",
                header(self),
                header(other)
            ));
        }
        if self.rounds.len() != other.rounds.len() {
            return Err(format!(
                "round count mismatch: {} vs {}",
                self.rounds.len(),
                other.rounds.len()
            ));
        }
        for (a, b) in self.rounds.iter().zip(&other.rounds) {
            if a != b {
                return Err(format!("round {} diverges: {a:?} vs {b:?}", a.round));
            }
        }
        if self.output != other.output {
            return Err(format!(
                "output mismatch: {} vs {}",
                self.output, other.output
            ));
        }
        Err(format!(
            "metrics mismatch: {:?} vs {:?}",
            self.metrics, other.metrics
        ))
    }
}

/// Stable string form of a delivery backend (`"sequential"`, `"chunked"`,
/// `"sharded:N"`, `"auto"`); [`parse_backend`] is the inverse.
pub fn backend_label(b: &DeliveryBackend) -> String {
    match b {
        DeliveryBackend::Sequential => "sequential".to_string(),
        DeliveryBackend::Chunked => "chunked".to_string(),
        DeliveryBackend::Sharded { shards } => format!("sharded:{shards}"),
        DeliveryBackend::Auto => "auto".to_string(),
    }
}

/// Parses a [`backend_label`] string.
pub fn parse_backend(s: &str) -> Result<DeliveryBackend, String> {
    match s {
        "sequential" => Ok(DeliveryBackend::Sequential),
        "chunked" => Ok(DeliveryBackend::Chunked),
        "auto" => Ok(DeliveryBackend::Auto),
        _ => match s.strip_prefix("sharded:") {
            Some(n) => n
                .parse::<usize>()
                .map(|shards| DeliveryBackend::Sharded { shards })
                .map_err(|e| format!("bad shard count in {s:?}: {e}")),
            None => Err(format!("unknown backend label {s:?}")),
        },
    }
}

/// Stable string form of a message plane; [`parse_plane`] is the inverse.
pub fn plane_label(p: &MessagePlane) -> &'static str {
    match p {
        MessagePlane::Boxed => "boxed",
        MessagePlane::Flat => "flat",
    }
}

/// Parses a [`plane_label`] string.
pub fn parse_plane(s: &str) -> Result<MessagePlane, String> {
    match s {
        "boxed" => Ok(MessagePlane::Boxed),
        "flat" => Ok(MessagePlane::Flat),
        _ => Err(format!("unknown plane label {s:?}")),
    }
}

/// Stable string form of a fault event (`"crash:V"`, `"recover:V"`,
/// `"edge-down:E"`, `"edge-up:E"`); [`parse_event`] is the inverse.
pub fn event_label(ev: &FaultEvent) -> String {
    match ev {
        FaultEvent::EdgeDown(e) => format!("edge-down:{}", e.index()),
        FaultEvent::EdgeUp(e) => format!("edge-up:{}", e.index()),
        FaultEvent::Crash(v) => format!("crash:{}", v.index()),
        FaultEvent::Recover(v) => format!("recover:{}", v.index()),
    }
}

/// Parses an [`event_label`] string.
pub fn parse_event(s: &str) -> Result<FaultEvent, String> {
    let (tag, idx) = s
        .split_once(':')
        .ok_or_else(|| format!("malformed fault event {s:?}"))?;
    let idx: usize = idx
        .parse()
        .map_err(|e| format!("bad index in fault event {s:?}: {e}"))?;
    match tag {
        "edge-down" => Ok(FaultEvent::EdgeDown(EdgeId::new(idx))),
        "edge-up" => Ok(FaultEvent::EdgeUp(EdgeId::new(idx))),
        "crash" => Ok(FaultEvent::Crash(NodeId::new(idx))),
        "recover" => Ok(FaultEvent::Recover(NodeId::new(idx))),
        _ => Err(format!("unknown fault event tag {tag:?}")),
    }
}

fn response_label(plan: Option<&FaultPlan>) -> String {
    match plan {
        None => "none".to_string(),
        Some(p) => match p.response {
            crate::FaultResponse::Restart => "restart".to_string(),
            crate::FaultResponse::SelfHeal => "self-heal".to_string(),
        },
    }
}

/// Merges the captured `(round, delivery)` stream with the plan's fault
/// schedule (events fire iff their round actually executed) into the sorted
/// per-round log.
fn assemble_rounds(
    deliveries: Vec<(usize, TraceDelivery)>,
    plan: Option<&FaultPlan>,
    total_rounds: u64,
) -> Vec<TraceRound> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<usize, TraceRound> = BTreeMap::new();
    let entry = |map: &mut BTreeMap<usize, TraceRound>, r: usize| {
        map.entry(r).or_insert_with(|| TraceRound {
            round: r,
            faults: Vec::new(),
            deliveries: Vec::new(),
        });
    };
    if let Some(plan) = plan {
        for &(r, ev) in &plan.schedule {
            if (r as u64) < total_rounds {
                entry(&mut map, r);
                map.get_mut(&r).unwrap().faults.push(ev);
            }
        }
    }
    for (r, d) in deliveries {
        entry(&mut map, r);
        map.get_mut(&r).unwrap().deliveries.push(d);
    }
    map.into_values().collect()
}

fn encode_inbox<M: WireEncode>(
    sink: &mut Vec<(usize, TraceDelivery)>,
    to: NodeId,
    round: usize,
    inbox: &[(NodeId, M)],
) {
    for (from, msg) in inbox {
        let mut lanes = vec![0u32; M::LANES];
        msg.encode(&mut lanes);
        sink.push((
            round,
            TraceDelivery {
                to: to.raw(),
                from: from.raw(),
                lanes,
            },
        ));
    }
}

/// Runs `algo` via [`crate::run_bcongest_observed`] and records the full
/// trace alongside the run result.
pub fn record_bcongest<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &RunOptions,
    workload: &str,
) -> Result<(BcongestRun<A::Output>, TraceLog), EngineError>
where
    A: BcongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync + WireEncode,
{
    let mut captured: Vec<(usize, TraceDelivery)> = Vec::new();
    let run = crate::run_bcongest_observed(algo, g, weights, opts, |to, round, inbox| {
        encode_inbox(&mut captured, to, round, inbox);
    })?;
    let trace = TraceLog {
        workload: workload.to_string(),
        kind: "bcongest".to_string(),
        n: g.n(),
        m: g.m(),
        seed: opts.seed,
        threads: opts.exec.threads,
        backend: backend_label(&opts.exec.backend),
        plane: plane_label(&opts.exec.message_plane).to_string(),
        lanes: A::Msg::LANES,
        response: response_label(opts.faults.as_ref()),
        rounds: assemble_rounds(captured, opts.faults.as_ref(), run.metrics.rounds),
        output: format!("{:?}", run.outputs),
        metrics: TraceMetrics::from(&run.metrics),
    };
    Ok((run, trace))
}

/// Runs `algo` via [`crate::run_congest_observed`] and records the full trace
/// alongside the run result.
pub fn record_congest<A>(
    algo: &A,
    g: &Graph,
    weights: Option<&[u64]>,
    opts: &RunOptions,
    workload: &str,
) -> Result<(CongestRun<A::Output>, TraceLog), EngineError>
where
    A: CongestAlgorithm + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync + WireEncode,
{
    let mut captured: Vec<(usize, TraceDelivery)> = Vec::new();
    let run = crate::run_congest_observed(algo, g, weights, opts, |to, round, inbox| {
        encode_inbox(&mut captured, to, round, inbox);
    })?;
    let trace = TraceLog {
        workload: workload.to_string(),
        kind: "congest".to_string(),
        n: g.n(),
        m: g.m(),
        seed: opts.seed,
        threads: opts.exec.threads,
        backend: backend_label(&opts.exec.backend),
        plane: plane_label(&opts.exec.message_plane).to_string(),
        lanes: A::Msg::LANES,
        response: response_label(opts.faults.as_ref()),
        rounds: assemble_rounds(captured, opts.faults.as_ref(), run.metrics.rounds),
        output: format!("{:?}", run.outputs),
        metrics: TraceMetrics::from(&run.metrics),
    };
    Ok((run, trace))
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the trace codec (objects, arrays, strings, unsigned
// integers — exactly what the writer emits; integers stay in u64 so 64-bit
// seeds round-trip losslessly).

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
    fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
    fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(c), self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected token {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(entries));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let s = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
        let mut chars = s.char_indices();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.i += off + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                                code = code * 16 + h.to_digit(16).ok_or("bad hex in \\u escape")?;
                            }
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number: {e}"))
    }
}

fn parse_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    let v = p.object()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes after object at {}", p.i));
    }
    match v {
        Json::Obj(entries) => Ok(entries),
        _ => unreachable!("object() returns Json::Obj"),
    }
}

fn lookup<'j>(obj: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    lookup(obj, key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_u64()
}

fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    Ok(lookup(obj, key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_str()?
        .to_string())
}

fn get_arr<'j>(obj: &'j [(String, Json)], key: &str) -> Result<&'j [Json], String> {
    lookup(obj, key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_arr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultResponse;
    use crate::LocalView;
    use congest_graph::generators;

    /// Every node broadcasts its id once; outputs the min neighbor id seen.
    struct MinNeighbor;
    #[derive(Clone, Debug)]
    struct St {
        me: u32,
        best: u32,
        sent: bool,
    }
    impl BcongestAlgorithm for MinNeighbor {
        type State = St;
        type Msg = u32;
        type Output = u32;
        fn name(&self) -> &'static str {
            "min-neighbor"
        }
        fn init(&self, v: &LocalView<'_>) -> St {
            St {
                me: v.node().raw(),
                best: u32::MAX,
                sent: false,
            }
        }
        fn broadcast(&self, s: &St, _r: usize) -> Option<u32> {
            (!s.sent).then_some(s.me)
        }
        fn on_broadcast_sent(&self, s: &mut St, _r: usize) {
            s.sent = true;
        }
        fn receive(&self, s: &mut St, _r: usize, msgs: &[(NodeId, u32)]) {
            for &(_, m) in msgs {
                s.best = s.best.min(m);
            }
        }
        fn is_done(&self, s: &St) -> bool {
            s.sent
        }
        fn output(&self, s: &St) -> u32 {
            s.best
        }
        fn round_bound(&self, _n: usize, _m: usize) -> usize {
            1
        }
        fn output_words(&self, _o: &u32) -> usize {
            1
        }
    }

    fn faulty_opts() -> RunOptions {
        RunOptions {
            faults: Some(
                FaultPlan::new(FaultResponse::Restart).at(0, FaultEvent::EdgeDown(EdgeId::new(0))),
            ),
            ..RunOptions::default()
        }
    }

    #[test]
    fn recorded_trace_roundtrips_through_jsonl() {
        let g = generators::path(4);
        let (run, trace) =
            record_bcongest(&MinNeighbor, &g, None, &faulty_opts(), "test/min-neighbor").unwrap();
        assert_eq!(trace.kind, "bcongest");
        assert_eq!(trace.response, "restart");
        assert_eq!(
            trace.metrics.dropped_messages, 2,
            "both directions of edge 0"
        );
        assert_eq!(trace.metrics, TraceMetrics::from(&run.metrics));
        assert!(trace.rounds[0].faults.len() == 1, "edge-down recorded");
        let back = TraceLog::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(trace, back);
        back.conforms(&trace).unwrap();
    }

    #[test]
    fn conforms_reports_the_first_divergence() {
        let g = generators::path(4);
        let (_, trace) =
            record_bcongest(&MinNeighbor, &g, None, &faulty_opts(), "test/min-neighbor").unwrap();
        let mut mutated = trace.clone();
        mutated.metrics.messages += 1;
        let err = trace.conforms(&mutated).unwrap_err();
        assert!(err.contains("metrics mismatch"), "got {err}");
        let mut relabeled = trace.clone();
        relabeled.backend = "sharded:9".to_string();
        assert!(trace.conforms(&relabeled).unwrap_err().contains("header"));
    }

    #[test]
    fn event_and_config_labels_roundtrip() {
        for ev in [
            FaultEvent::EdgeDown(EdgeId::new(3)),
            FaultEvent::EdgeUp(EdgeId::new(0)),
            FaultEvent::Crash(NodeId::new(17)),
            FaultEvent::Recover(NodeId::new(17)),
        ] {
            assert_eq!(parse_event(&event_label(&ev)).unwrap(), ev);
        }
        for b in [
            DeliveryBackend::Sequential,
            DeliveryBackend::Chunked,
            DeliveryBackend::Sharded { shards: 4 },
            DeliveryBackend::Auto,
        ] {
            assert_eq!(parse_backend(&backend_label(&b)).unwrap(), b);
        }
        for p in [MessagePlane::Boxed, MessagePlane::Flat] {
            assert_eq!(parse_plane(plane_label(&p)).unwrap(), p);
        }
        assert!(parse_event("frobnicate:1").is_err());
        assert!(parse_backend("postal").is_err());
    }

    #[test]
    fn exec_config_reconstructs_the_recorded_matrix_cell() {
        let g = generators::cycle(5);
        let opts = RunOptions {
            exec: ExecutorConfig::sharded(2).with_plane(MessagePlane::Flat),
            ..RunOptions::default()
        };
        let (_, trace) = record_bcongest(&MinNeighbor, &g, None, &opts, "test/cell").unwrap();
        assert_eq!(trace.backend, "sharded:2");
        assert_eq!(trace.plane, "flat");
        assert_eq!(trace.exec_config().unwrap(), opts.exec);
    }

    #[test]
    fn dot_render_dashes_faulted_topology() {
        let g = generators::path(4);
        let plan = FaultPlan::new(FaultResponse::Restart)
            .at(0, FaultEvent::Crash(NodeId::new(3)))
            .at(0, FaultEvent::EdgeDown(EdgeId::new(0)));
        let opts = RunOptions {
            faults: Some(plan),
            ..RunOptions::default()
        };
        let (_, trace) = record_bcongest(&MinNeighbor, &g, None, &opts, "test/dot").unwrap();
        let dot = trace.to_dot(&g);
        assert!(dot.contains("style=dashed"), "downed edge dashed:\n{dot}");
        assert!(dot.contains("subgraph cluster_1"), "crashed node grouped");
        assert!(dot.contains("test/dot"));
    }
}
