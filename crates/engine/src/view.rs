//! A node's initial local knowledge: the [`LocalView`].
//!
//! CONGEST nodes initially know only their own ID, their incident edges (with weights),
//! the number of nodes `n` (which the paper's preprocessing always establishes first),
//! and a private random seed. `LocalView` exposes exactly that — algorithms written
//! against it cannot accidentally peek at remote state.

use congest_graph::{EdgeId, Graph, NodeId};

/// What one node knows at initialization time.
#[derive(Clone, Copy)]
pub struct LocalView<'a> {
    graph: &'a Graph,
    weights: Option<&'a [u64]>,
    node: NodeId,
    seed: u64,
}

impl<'a> LocalView<'a> {
    /// Creates the view of `node`. `seed` is this node's private random stream.
    pub fn new(graph: &'a Graph, weights: Option<&'a [u64]>, node: NodeId, seed: u64) -> Self {
        if let Some(w) = weights {
            debug_assert_eq!(w.len(), graph.m(), "weights must cover all edges");
        }
        Self {
            graph,
            weights,
            node,
            seed,
        }
    }

    /// This node's ID.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The number of nodes in the network (global knowledge established by
    /// preprocessing, as in §2.2 step 1).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// This node's degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// This node's neighbors, sorted by ID.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.graph.neighbors(self.node)
    }

    /// Incident `(edge, neighbor, weight)` triples; weight is 1 on unweighted graphs.
    pub fn incident(&self) -> impl Iterator<Item = (EdgeId, NodeId, u64)> + 'a {
        let weights = self.weights;
        self.graph
            .incident(self.node)
            .map(move |(e, u)| (e, u, weights.map_or(1, |w| w[e.index()])))
    }

    /// This node's private random seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Size of this node's input in words (its incident edge list plus O(1)): the
    /// quantity the paper calls `in(v)` when bounding `I_n`.
    pub fn input_words(&self) -> usize {
        self.degree() + 1
    }
}

impl std::fmt::Debug for LocalView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalView(node={:?}, deg={})", self.node, self.degree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn exposes_local_info_only() {
        let g = generators::star(5);
        let view = LocalView::new(&g, None, NodeId::new(0), 7);
        assert_eq!(view.degree(), 4);
        assert_eq!(view.n(), 5);
        assert_eq!(view.seed(), 7);
        assert_eq!(view.input_words(), 5);
        let leaf = LocalView::new(&g, None, NodeId::new(3), 8);
        assert_eq!(leaf.neighbors(), &[NodeId::new(0)]);
    }

    #[test]
    fn weights_default_to_one() {
        let g = generators::path(3);
        let v = LocalView::new(&g, None, NodeId::new(1), 0);
        let ws: Vec<u64> = v.incident().map(|(_, _, w)| w).collect();
        assert_eq!(ws, vec![1, 1]);
        let weights = vec![5, 9];
        let v = LocalView::new(&g, Some(&weights), NodeId::new(1), 0);
        let mut ws: Vec<u64> = v.incident().map(|(_, _, w)| w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![5, 9]);
    }
}
